//! Fused online multiply-accumulate: the inner product as one redundant
//! accumulation, never collapsing to non-redundant form between terms.
//!
//! The unrolled online multiplier (see
//! [`bittrue_mult`](crate::online::bittrue_mult)) spends most of
//! its critical path *digitizing*: every stage runs a selection CPA and a
//! top-digit recode just to emit one signed digit, and an inner product
//! built as a tree of such multipliers digitizes every partial product
//! only to immediately re-redundantize it in the adder tree. The fused
//! operator skips all of that. It uses the prefix telescoping identity
//!
//! ```text
//! X[j] = Σ_{i≤j} x_i 2^-i     ⇒     x·y = Σ_{j=1..n} H_j · 2^-j,
//! H_j  = x_j · Y[j]  +  y_j · X[j−1]
//! ```
//!
//! so each digit pair `(x_j, y_j)` contributes one borrow-save *row*
//! `H_j` — two SDVM muxes and one digit-parallel online adder (two FA
//! levels, [`bs_add`]) — and every row of every term feeds one balanced
//! [`bs_add`] reduction tree. The accumulator stays borrow-save
//! throughout: there is no selection function, no residual recode, and no
//! per-product truncation, which makes the fused inner product **exact**
//! (the settled value equals `Σ x_k·y_k` as rationals) while the unfused
//! form pays the online truncation `|ε| ≤ 3·2^-(n+2)` per product.
//!
//! Three artifacts here mirror the crate's usual layering:
//! [`fused_mac_bits`] is the bit-true reference (signal-for-signal
//! against the gate netlist in `crate::synth::fused_mac_gates`),
//! [`fused_mac_value`] the golden rational semantics, and
//! [`fused_mac_window`] the pure window algebra — the
//! δ-composition-under-accumulation rule `ola-synth` replays for its IR
//! bookkeeping.

use crate::online::{bs_add, sdvm_bits};
use ola_redundant::{BsVector, Q};

/// A digit window `(msd position, digit count)` — the currency of the
/// window algebra in [`fused_mac_window`].
pub type DigitWindow = (i32, usize);

/// The golden semantics: the exact inner product `Σ x_k · y_k`.
#[must_use]
pub fn fused_mac_value(terms: &[(BsVector, BsVector)]) -> Q {
    terms.iter().fold(Q::ZERO, |acc, (x, y)| acc + x.value() * y.value())
}

/// The operand prefix `positions 1..=k` (appending logic: wires only).
fn prefix(v: &BsVector, k: i32) -> BsVector {
    let len = k.max(0) as usize;
    let mut out = BsVector::zero(1, len);
    for pos in 1..=k {
        let (p, n) = v.bits(pos);
        out.set_bits(pos, p, n);
    }
    out
}

/// Appends the borrow-save rows of one term to `rows`: operands are
/// normalized to msd position 1 (shifts `sx`, `sy` — pure wiring), padded
/// to a common digit count `n`, and row `j` is `H_j` placed at its final
/// weight via `shifted(-(j + sx + sy))`.
fn term_rows(rows: &mut Vec<BsVector>, x: &BsVector, y: &BsVector) {
    let sx = x.msd_pos() - 1;
    let sy = y.msd_pos() - 1;
    let n = x.len().max(y.len()).max(1);
    let xv = x.shifted(sx).rewindowed(1, n);
    let yv = y.shifted(sy).rewindowed(1, n);
    for j in 1..=n as i32 {
        let (xp, xn) = xv.bits(j);
        let (yp, yn) = yv.bits(j);
        let a = sdvm_bits(xp, xn, &prefix(&yv, j));
        let b = sdvm_bits(yp, yn, &prefix(&xv, j - 1));
        rows.push(bs_add(&a, &b).shifted(-(j + sx + sy)));
    }
}

/// Folds rows with a balanced `chunks(2)` tree of online adders, exactly
/// like the elaborated netlist. Depth is `⌈log2(#rows)⌉` two-FA levels.
fn fold_rows(mut rows: Vec<BsVector>) -> BsVector {
    assert!(!rows.is_empty(), "fused MAC needs at least one row");
    while rows.len() > 1 {
        rows = rows
            .chunks(2)
            .map(|c| if c.len() == 2 { bs_add(&c[0], &c[1]) } else { c[0].clone() })
            .collect();
    }
    rows.swap_remove(0)
}

/// Runs the fused online MAC bit-true over borrow-save operand pairs (any
/// windows, any encodings — including non-canonical `(1, 1)` digit
/// pairs). Bit-exact against the settled outputs of the gate-level
/// `fused_mac_gates` netlist, and *value-exact* against
/// [`fused_mac_value`]: the result window carries `Σ x_k · y_k` with zero
/// truncation.
///
/// # Panics
///
/// Panics if `terms` is empty.
#[must_use]
pub fn fused_mac_bits(terms: &[(BsVector, BsVector)]) -> BsVector {
    assert!(!terms.is_empty(), "fused MAC needs at least one term");
    let mut rows = Vec::new();
    for (x, y) in terms {
        term_rows(&mut rows, x, y);
    }
    fold_rows(rows)
}

/// The δ-composition-under-accumulation rule: the output window of a
/// fused MAC over terms with operand windows `((msd, len), (msd, len))`,
/// computed by replaying the exact same algebra [`fused_mac_bits`] (and
/// the gate lowering) performs — row `j` of a term with shifts `sx`, `sy`
/// occupies `(j + sx + sy, j + 1)`, and each [`bs_add`] combine takes
/// `msd = min − 1`, `end = max`. No closed form is assumed: mixed-window
/// terms make the fold windows ragged, so the tree is walked
/// structurally.
///
/// # Panics
///
/// Panics if `terms` is empty.
#[must_use]
pub fn fused_mac_window(terms: &[(DigitWindow, DigitWindow)]) -> DigitWindow {
    assert!(!terms.is_empty(), "fused MAC needs at least one term");
    let mut rows: Vec<(i32, usize)> = Vec::new();
    for &((mx, lx), (my, ly)) in terms {
        let sx = mx - 1;
        let sy = my - 1;
        let n = lx.max(ly).max(1);
        for j in 1..=n as i32 {
            rows.push((j + sx + sy, (j + 1) as usize));
        }
    }
    while rows.len() > 1 {
        rows = rows
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    let msd = c[0].0.min(c[1].0) - 1;
                    let end = (c[0].0 + c[0].1 as i32).max(c[1].0 + c[1].1 as i32);
                    (msd, (end - msd) as usize)
                } else {
                    c[0]
                }
            })
            .collect();
    }
    rows[0]
}

/// Number of two-FA online-adder levels on the fused accumulation path:
/// one for the row adder plus `⌈log2(#rows)⌉` for the reduction tree.
/// The unfused form pays `n + δ` *selection* stages per product before
/// the tree even starts — this is the settled-latency gap the DSP
/// experiments measure.
#[must_use]
pub fn fused_fold_depth(rows: usize) -> usize {
    1 + rows.next_power_of_two().trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ola_redundant::{random, SdNumber};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn canonical(q: Q, n: usize) -> BsVector {
        BsVector::from_sd(&SdNumber::from_value(q, n).unwrap())
    }

    #[test]
    fn exhaustive_small_inner_products_are_exact() {
        for n in 1..=3usize {
            let limit = (1i128 << n) - 1;
            for xv in -limit..=limit {
                for yv in -limit..=limit {
                    for wv in [-limit, 0, 1, limit] {
                        let x = canonical(Q::new(xv, n as u32), n);
                        let y = canonical(Q::new(yv, n as u32), n);
                        let w = canonical(Q::new(wv, n as u32), n);
                        let terms = vec![(x, y.clone()), (y, w)];
                        let got = fused_mac_bits(&terms);
                        assert_eq!(got.value(), fused_mac_value(&terms));
                    }
                }
            }
        }
    }

    #[test]
    fn random_terms_random_windows_are_exact_and_windowed() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for _ in 0..300 {
            let k = rng.gen_range(1..=6usize);
            let terms: Vec<(BsVector, BsVector)> = (0..k)
                .map(|_| {
                    let mut operand = || {
                        let n = rng.gen_range(1..=9usize);
                        let msd = rng.gen_range(-3..=4i32);
                        BsVector::from_sd(&random::uniform_digits(&mut rng, n)).shifted(1 - msd)
                    };
                    (operand(), operand())
                })
                .collect();
            let got = fused_mac_bits(&terms);
            assert_eq!(got.value(), fused_mac_value(&terms), "terms={terms:?}");
            let windows: Vec<_> = terms
                .iter()
                .map(|(x, y)| ((x.msd_pos(), x.len()), (y.msd_pos(), y.len())))
                .collect();
            assert_eq!((got.msd_pos(), got.len()), fused_mac_window(&windows));
        }
    }

    #[test]
    fn noncanonical_encodings_stay_exact() {
        // (1, 1) bit pairs are zeros in value; the fused datapath is pure
        // SDVM + online adders, so exactness must survive any encoding.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            let k = rng.gen_range(1..=4usize);
            let terms: Vec<(BsVector, BsVector)> = (0..k)
                .map(|_| {
                    let mut operand = || {
                        let n = rng.gen_range(1..=7usize);
                        let mut v = BsVector::zero(1, n);
                        for pos in 1..=n as i32 {
                            v.set_bits(pos, rng.gen(), rng.gen());
                        }
                        v
                    };
                    (operand(), operand())
                })
                .collect();
            let got = fused_mac_bits(&terms);
            assert_eq!(got.value(), fused_mac_value(&terms));
        }
    }

    #[test]
    fn single_term_matches_plain_product() {
        // K = 1 degenerates to an exact multiplier — unlike the unfused
        // online multiplier, whose settled value truncates the residual.
        let x = canonical(Q::new(5, 3), 3);
        let y = canonical(Q::new(-3, 3), 3);
        let z = fused_mac_bits(&[(x.clone(), y.clone())]);
        assert_eq!(z.value(), x.value() * y.value());
    }

    #[test]
    fn first_row_handles_the_empty_prefix() {
        // j = 1 uses X[0], a zero-length window; the row must still carry
        // x_1·y_1·2^-2 exactly.
        let x = canonical(Q::new(1, 1), 1);
        let y = canonical(Q::new(-1, 1), 1);
        let z = fused_mac_bits(&[(x, y)]);
        assert_eq!(z.value(), Q::new(-1, 2));
        assert_eq!((z.msd_pos(), z.len()), fused_mac_window(&[((1, 1), (1, 1))]));
    }

    #[test]
    fn window_rule_closed_form_for_equal_canonical_terms() {
        // K equal-window msd-1 terms of width n: K·n rows, row j spanning
        // positions j..2j (the product LSD sits at weight 2^-2j), so the
        // fold ends at position 2n and lifts the msd by ⌈log2(K·n)⌉.
        for (k, n) in [(1usize, 4usize), (3, 4), (8, 6), (16, 8)] {
            let w = fused_mac_window(&vec![((1, n), (1, n)); k]);
            let rows = k * n;
            let levels = rows.next_power_of_two().trailing_zeros() as i32;
            assert_eq!(w.0, 1 - levels, "k={k} n={n}");
            assert_eq!(w.0 + w.1 as i32, 2 * n as i32 + 1, "k={k} n={n}");
            assert_eq!(fused_fold_depth(rows), (levels + 1) as usize);
        }
    }

    #[test]
    fn accumulation_is_order_sensitive_in_window_only() {
        // Reordering terms never changes the value (the sum is exact) but
        // may change the structural window of the fold tree.
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for _ in 0..50 {
            let mut terms: Vec<(BsVector, BsVector)> = (0..4)
                .map(|_| {
                    let mut operand = || {
                        let n = rng.gen_range(1..=6usize);
                        BsVector::from_sd(&random::uniform_digits(&mut rng, n))
                    };
                    (operand(), operand())
                })
                .collect();
            let forward = fused_mac_bits(&terms);
            terms.reverse();
            let reverse = fused_mac_bits(&terms);
            assert_eq!(forward.value(), reverse.value());
        }
    }
}
