//! The digit-parallel radix-2 online (signed-digit) adder — behavioral model.
//!
//! This is Figure 2 of the paper: a redundant adder built from two levels of
//! full-adder cells per digit, so its delay is **two FA delays regardless of
//! word length** — carries never propagate more than one position. That is
//! why "it is unlikely that timing violations happen on the online adder".
//!
//! The construction uses the PPM/MMP full-adder identities
//! (`a + b − m = 2c − s̄` and `p − a − b = s̄ − 2c`, see
//! [`ola_netlist::cells`]): with the right input/output complementations the
//! `−1` correction constants cancel per position, leaving a pure two-level
//! carry-free array. The behavioral code below mirrors that gate structure
//! bit for bit; [`crate::synth::online_adder`] emits the same structure as a
//! netlist.

use ola_redundant::{BsVector, Digit};

/// One PPM cell on bits: returns `(carry_pos, sum_neg)` with
/// `a + b − m == 2·carry_pos − sum_neg`.
#[inline]
#[must_use]
pub fn ppm(a: bool, b: bool, m: bool) -> (bool, bool) {
    let (s, c) = full_add(a, b, !m);
    (c, !s)
}

/// One MMP cell on bits: returns `(carry_neg, sum_pos)` with
/// `p − a − b == sum_pos − 2·carry_neg`.
#[inline]
#[must_use]
pub fn mmp(p: bool, a: bool, b: bool) -> (bool, bool) {
    let (s, c) = full_add(a, b, !p);
    (c, !s)
}

#[inline]
fn full_add(a: bool, b: bool, c: bool) -> (bool, bool) {
    let axb = a ^ b;
    (axb ^ c, (a & b) | (c & axb))
}

/// Adds two borrow-save numbers with the two-level carry-free array.
///
/// The result window spans one position above the widest operand MSD (the
/// sum may need an extra integer digit) down to the least significant
/// operand position. The addition is exact:
/// `bs_add(x, y).value() == x.value() + y.value()`.
///
/// # Examples
///
/// ```
/// use ola_arith::online::bs_add;
/// use ola_redundant::{BsVector, Q, SdNumber};
///
/// let a = BsVector::from_sd(&SdNumber::from_value(Q::new(3, 3), 3)?);
/// let b = BsVector::from_sd(&SdNumber::from_value(Q::new(-5, 3), 3)?);
/// assert_eq!(bs_add(&a, &b).value(), Q::new(-2, 3));
/// # Ok::<(), ola_redundant::RangeError>(())
/// ```
#[must_use]
pub fn bs_add(x: &BsVector, y: &BsVector) -> BsVector {
    let msd = x.msd_pos().min(y.msd_pos()) - 1;
    let end = x.end_pos().max(y.end_pos());
    let len = (end - msd) as usize;
    let mut out = BsVector::zero(msd, len);

    // Level 1: PPM(xp, yp, xn) at every position → c1 (weight ×2), s1 (neg).
    // Level 2: MMP(c1 from one position below, s1, yn) → zp and zn (weight ×2).
    // `c1[pos]` is indexed by the position it was *generated* at.
    let mut c1 = vec![false; len + 1];
    let mut s1 = vec![false; len + 1];
    for (slot, pos) in (msd..end + 1).enumerate() {
        let (xp, xn) = x.bits(pos);
        let (yp, _) = y.bits(pos);
        let (c, s) = ppm(xp, yp, xn);
        c1[slot] = c;
        s1[slot] = s;
    }
    let mut zn_up = vec![false; len + 1];
    for (slot, pos) in (msd..end).enumerate() {
        // Inputs at weight 2^-pos: carry generated one position below (slot+1),
        // the local negative interim sum, and y's negative bit.
        let (_, yn) = y.bits(pos);
        let (carry_neg, sum_pos) = mmp(c1[slot + 1], s1[slot], yn);
        let (p_cur, _) = out.bits(pos);
        debug_assert!(!p_cur);
        out.set_bits(pos, sum_pos, false);
        zn_up[slot] = carry_neg;
    }
    // carry_neg generated at position pos lands at pos-1; slot s of zn_up
    // corresponds to position msd+s, so its carry lands at msd+s-1 → the
    // carry consumed *at* position pos is zn_up from slot (pos - msd) + 1.
    for (slot, pos) in (msd..end).enumerate() {
        let (p, _) = out.bits(pos);
        let n = zn_up.get(slot + 1).copied().unwrap_or(false);
        out.set_bits(pos, p, n);
    }
    out
}

/// A digit-serial online adder: push one digit pair per cycle MSD-first,
/// receive one sum digit per cycle after an online delay of 2.
///
/// This is the streaming view of the same two-FA-level structure as
/// [`bs_add`]: a sum digit at position `p` combines the level-2 sum of
/// position `p` (needing the level-1 carry from `p+1`) with the level-2
/// borrow from position `p+1` — available two digit-times after `p`'s
/// inputs, independent of word length.
///
/// # Examples
///
/// ```
/// use ola_arith::online::SerialAdder;
/// use ola_redundant::{BsVector, Q, SdNumber};
///
/// let x = SdNumber::from_value(Q::new(5, 4), 4)?;
/// let y = SdNumber::from_value(Q::new(-3, 4), 4)?;
/// let mut adder = SerialAdder::new();
/// let mut digits = Vec::new();
/// for i in 1..=4 {
///     digits.extend(adder.push(x.digit(i), y.digit(i)));
/// }
/// digits.extend(adder.finish());
/// // Digits cover positions 0..=4 (one integer guard digit).
/// let mut sum = BsVector::zero(0, 5);
/// for (k, d) in digits.iter().enumerate() {
///     sum.set_digit(k as i32, *d);
/// }
/// assert_eq!(sum.value(), x.value() + y.value());
/// # Ok::<(), ola_redundant::RangeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SerialAdder {
    /// Level-1 interim sum and the negative input digit bit of the previous
    /// position, awaiting the next position's level-1 carry.
    pending_l1: Option<(bool, bool)>,
    /// Level-2 positive sum bit awaiting its negative (borrow) partner from
    /// one position below.
    pending_sp: Option<bool>,
}

impl Default for SerialAdder {
    fn default() -> Self {
        SerialAdder::new()
    }
}

impl SerialAdder {
    /// A fresh adder (no digits consumed).
    #[must_use]
    pub fn new() -> Self {
        // The integer guard position 0 has zero operand digits; seeding its
        // neutral level-1 result lets the first real push run position 0's
        // level-2 step, so the guard digit is emitted like any other.
        SerialAdder { pending_l1: Some((false, false)), pending_sp: None }
    }

    /// Consumes the next (MSD-first) digit pair; returns the sum digit that
    /// becomes available, if any (none on the first two pushes).
    pub fn push(&mut self, x: Digit, y: Digit) -> Option<Digit> {
        let (xp, xn) = x.to_bits();
        let (yp, yn) = y.to_bits();
        let (c1, s1) = ppm(xp, yp, xn);
        // Level 2 of the previous position consumes this position's c1; its
        // borrow completes the digit of the position before that.
        let out = self.pending_l1.take().map(|(prev_s1, prev_yn)| {
            let (cn, sp) = mmp(c1, prev_s1, prev_yn);
            let emitted = self.pending_sp.take().map(|p| Digit::from_bits(p, cn));
            self.pending_sp = Some(sp);
            emitted
        });
        self.pending_l1 = Some((s1, yn));
        out.flatten()
    }

    /// Flushes the pipeline (two zero-feed cycles) and returns the
    /// remaining sum digits.
    #[must_use]
    pub fn finish(mut self) -> Vec<Digit> {
        let mut out = Vec::new();
        for _ in 0..2 {
            if let Some(d) = self.push(Digit::Zero, Digit::Zero) {
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::{SdNumber, Q};

    fn all_sd(n: usize) -> impl Iterator<Item = SdNumber> {
        (0..3usize.pow(n as u32)).map(move |mut k| {
            (0..n)
                .map(|_| {
                    let d = ola_redundant::Digit::try_from((k % 3) as i8 - 1).unwrap();
                    k /= 3;
                    d
                })
                .collect()
        })
    }

    #[test]
    fn ppm_and_mmp_bit_identities() {
        for bits in 0..8u8 {
            let (a, b, m) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let (c, s) = ppm(a, b, m);
            assert_eq!(i8::from(a) + i8::from(b) - i8::from(m), 2 * i8::from(c) - i8::from(s));
            let (c, s) = mmp(a, b, m);
            assert_eq!(i8::from(a) - i8::from(b) - i8::from(m), i8::from(s) - 2 * i8::from(c));
        }
    }

    #[test]
    fn addition_is_exact_exhaustively() {
        // Every pair of 4-digit signed-digit numbers (81 × 81 encodings).
        for x in all_sd(4) {
            let bx = BsVector::from_sd(&x);
            for y in all_sd(4) {
                let by = BsVector::from_sd(&y);
                let z = bs_add(&bx, &by);
                assert_eq!(z.value(), x.value() + y.value(), "x={x:?} y={y:?} z={z:?}");
            }
        }
    }

    #[test]
    fn addition_handles_mixed_windows() {
        // Operands over different weight windows (as inside the multiplier).
        let x = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        let y = x.shifted(-2); // value / 4, positions 3..=5
        let z = bs_add(&x, &y);
        assert_eq!(z.value(), x.value() + y.value());
        assert_eq!(z.msd_pos(), 0);
    }

    #[test]
    fn adding_zero_is_identity_in_value() {
        let zero = BsVector::zero(1, 4);
        for x in all_sd(4) {
            let bx = BsVector::from_sd(&x);
            assert_eq!(bs_add(&bx, &zero).value(), x.value());
            assert_eq!(bs_add(&zero, &bx).value(), x.value());
        }
    }

    #[test]
    fn result_window_is_one_wider() {
        let x = BsVector::zero(1, 4);
        let z = bs_add(&x, &x);
        assert_eq!(z.msd_pos(), 0);
        assert_eq!(z.end_pos(), 5);
    }

    #[test]
    fn serial_adder_matches_parallel_exhaustively() {
        // Every 4-digit pair: the streamed digits must reproduce bs_add's
        // positions 0..n (the extra window position is always zero-valued).
        for x in all_sd(4) {
            for y in all_sd(4) {
                let mut adder = SerialAdder::new();
                let mut digits = Vec::new();
                for i in 1..=4 {
                    digits.extend(adder.push(x.digit(i), y.digit(i)));
                }
                digits.extend(adder.finish());
                assert_eq!(digits.len(), 5, "positions 0..=4");
                let mut sum = BsVector::zero(0, 5);
                for (k, d) in digits.iter().enumerate() {
                    sum.set_digit(k as i32, *d);
                }
                assert_eq!(sum.value(), x.value() + y.value(), "x={x:?} y={y:?} digits={digits:?}");
            }
        }
    }

    #[test]
    fn serial_adder_emits_with_online_delay_two() {
        // Digit for position p completes two pushes after its inputs: the
        // guard digit (position 0) appears on push 2.
        let mut adder = SerialAdder::new();
        assert!(adder.push(Digit::One, Digit::One).is_none());
        assert!(adder.push(Digit::Zero, Digit::Zero).is_some());
    }

    #[test]
    fn integer_position_operands() {
        // Residual-style operands with an integer digit.
        let mut a = BsVector::zero(0, 4);
        a.set_digit(0, ola_redundant::Digit::One);
        a.set_digit(2, ola_redundant::Digit::NegOne);
        let mut b = BsVector::zero(0, 4);
        b.set_digit(1, ola_redundant::Digit::NegOne);
        b.set_digit(3, ola_redundant::Digit::One);
        let z = bs_add(&a, &b);
        assert_eq!(z.value(), a.value() + b.value());
    }
}
