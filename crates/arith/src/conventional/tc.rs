//! Two's-complement fixed-point formats for the conventional datapath.

use ola_redundant::Q;
use std::fmt;

/// A fixed-point two's-complement format: `frac_bits` fractional bits plus
/// one sign bit, representing multiples of `2^-frac_bits` in `[−1, 1)`.
///
/// # Examples
///
/// ```
/// use ola_arith::conventional::TcFormat;
/// use ola_redundant::Q;
///
/// let fmt = TcFormat::new(7); // Q1.7: 8 bits total
/// let bits = fmt.encode(Q::new(-3, 2))?; // -0.75
/// assert_eq!(fmt.decode(&bits), Q::new(-3, 2));
/// # Ok::<(), ola_arith::conventional::EncodeTcError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TcFormat {
    frac_bits: u32,
}

/// Error returned when a value is not representable in a [`TcFormat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncodeTcError {
    /// The offending value.
    pub value: Q,
    /// The target format.
    pub format: TcFormat,
}

impl fmt::Display for EncodeTcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} is not representable in two's complement with {} fractional bits",
            self.value,
            self.format.frac_bits()
        )
    }
}

impl std::error::Error for EncodeTcError {}

impl TcFormat {
    /// A format with `frac_bits` fractional bits (width `frac_bits + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits` is 0 or exceeds 62.
    #[must_use]
    pub fn new(frac_bits: u32) -> Self {
        assert!((1..=62).contains(&frac_bits), "unsupported fraction width");
        TcFormat { frac_bits }
    }

    /// Number of fractional bits.
    #[must_use]
    pub fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total bit width including the sign bit.
    #[must_use]
    pub fn width(self) -> usize {
        self.frac_bits as usize + 1
    }

    /// Smallest representable increment.
    #[must_use]
    pub fn ulp(self) -> Q {
        Q::pow2_neg(self.frac_bits)
    }

    /// Encodes an exact value as LSB-first bits.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeTcError`] if `value` is not a multiple of the ulp or
    /// lies outside `[−1, 1)`.
    pub fn encode(self, value: Q) -> Result<Vec<bool>, EncodeTcError> {
        let raw = self.raw_of(value).ok_or(EncodeTcError { value, format: self })?;
        Ok(self.encode_raw(raw))
    }

    /// Encodes a raw integer (`value = raw · ulp`) as LSB-first bits.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is outside `[−2^frac_bits, 2^frac_bits)`.
    #[must_use]
    pub fn encode_raw(self, raw: i64) -> Vec<bool> {
        let lim = 1i64 << self.frac_bits;
        assert!(raw >= -lim && raw < lim, "raw value {raw} out of range");
        (0..self.width()).map(|i| raw >> i & 1 == 1).collect()
    }

    /// Decodes LSB-first bits into the exact value.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from [`TcFormat::width`].
    #[must_use]
    pub fn decode(self, bits: &[bool]) -> Q {
        Q::new(i128::from(self.decode_raw(bits)), self.frac_bits)
    }

    /// Decodes LSB-first bits into the raw signed integer.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from [`TcFormat::width`].
    #[must_use]
    pub fn decode_raw(self, bits: &[bool]) -> i64 {
        assert_eq!(bits.len(), self.width(), "bit-width mismatch");
        let mut v: i64 = 0;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v |= 1 << i;
            }
        }
        if bits[self.width() - 1] {
            v -= 1 << self.width();
        }
        v
    }

    /// The nearest representable value (round half away from zero, clamped
    /// to the representable range) — used to quantize filter coefficients.
    #[must_use]
    pub fn quantize(self, value: Q) -> Q {
        let scaled = value << self.frac_bits; // value · 2^f
        let num = scaled.numerator();
        let sc = scaled.scale();
        let raw = if sc == 0 {
            num
        } else {
            let half = 1i128 << (sc - 1);
            if num >= 0 {
                (num + half) >> sc
            } else {
                -((-num + half) >> sc)
            }
        };
        let lim = 1i128 << self.frac_bits;
        let raw = raw.clamp(-lim, lim - 1);
        Q::new(raw, self.frac_bits)
    }

    fn raw_of(self, value: Q) -> Option<i64> {
        let raw = value.scaled_to(self.frac_bits)?;
        let lim = 1i128 << self.frac_bits;
        if raw >= -lim && raw < lim {
            Some(raw as i64)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_q1_4_value() {
        let fmt = TcFormat::new(4);
        for raw in -16i64..16 {
            let bits = fmt.encode_raw(raw);
            assert_eq!(fmt.decode_raw(&bits), raw);
            assert_eq!(fmt.decode(&bits), Q::new(i128::from(raw), 4));
        }
    }

    #[test]
    fn encode_checks_range_and_granularity() {
        let fmt = TcFormat::new(4);
        assert!(fmt.encode(Q::ONE).is_err());
        assert!(fmt.encode(Q::new(-1, 0) - Q::new(1, 4)).is_err());
        assert!(fmt.encode(Q::new(1, 5)).is_err()); // finer than ulp
        assert!(fmt.encode(Q::new(-1, 0)).is_ok()); // exactly −1
        let e = fmt.encode(Q::ONE).unwrap_err();
        assert!(e.to_string().contains("4 fractional bits"));
    }

    #[test]
    fn quantize_rounds_to_nearest() {
        let fmt = TcFormat::new(3);
        // 3/16 scaled to eighths is 1.5; half-away-from-zero gives 2/8 = 1/4.
        assert_eq!(fmt.quantize(Q::new(3, 4)), Q::new(1, 2));
        assert_eq!(fmt.quantize(Q::new(-3, 4)), Q::new(-1, 2));
        assert_eq!(fmt.quantize(Q::new(1, 3)), Q::new(1, 3));
        assert_eq!(fmt.quantize(Q::ONE), Q::new(7, 3)); // clamp to max
    }

    #[test]
    fn ulp_and_width() {
        let fmt = TcFormat::new(7);
        assert_eq!(fmt.width(), 8);
        assert_eq!(fmt.ulp(), Q::pow2_neg(7));
        assert_eq!(fmt.frac_bits(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_raw_checks_range() {
        let _ = TcFormat::new(4).encode_raw(16);
    }
}
