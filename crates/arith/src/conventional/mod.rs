//! Conventional (two's-complement, LSB-first) arithmetic — the baseline the
//! paper compares online arithmetic against.
//!
//! * [`TcFormat`] — fixed-point two's-complement encoding/decoding;
//! * [`StagedRippleAdder`] — the carry-chain wave timing model (the
//!   conventional analogue of the online stage-wave model);
//! * netlists live in [`crate::synth`]: [`crate::synth::ripple_carry_adder`]
//!   and [`crate::synth::array_multiplier`].

mod behavioral;
mod tc;

pub use behavioral::StagedRippleAdder;
pub use tc::{EncodeTcError, TcFormat};
