//! Behavioral carry-chain timing model of conventional (LSB-first)
//! arithmetic.
//!
//! The conventional counterpart of
//! [`StagedMultiplier`](crate::online::StagedMultiplier): a ripple-carry
//! adder is a cascade of full adders, each one full-adder delay `μ_FA`; we
//! iterate the carry chain as a synchronous wave from the reset state and
//! sample after `b` waves. Where the online operator's stale samples are
//! wrong in the *least* significant digits, the ripple adder's stale samples
//! are wrong wherever a long carry chain had not yet arrived — including the
//! MSB.

/// A ripple-carry adder viewed as a wave of full-adder delays.
#[derive(Clone, Debug)]
pub struct StagedRippleAdder {
    a: u64,
    b: u64,
    width: u32,
}

impl StagedRippleAdder {
    /// An adder for two `width`-bit operands (raw bit patterns; two's
    /// complement semantics are the caller's interpretation).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 63.
    #[must_use]
    pub fn new(a: u64, b: u64, width: u32) -> Self {
        assert!((1..=63).contains(&width), "unsupported width");
        let mask = (1u64 << width) - 1;
        StagedRippleAdder { a: a & mask, b: b & mask, width }
    }

    /// The sampled sum after `ticks` full-adder delays from the all-zero
    /// carry reset: each tick lets every carry advance one position.
    #[must_use]
    pub fn sample(&self, ticks: u32) -> u64 {
        let mask = (1u64 << self.width) - 1;
        let mut carries: u64 = 0; // carry INTO each bit position
        for _ in 0..ticks {
            // carry out of position i = maj(a_i, b_i, c_i), arrives at i+1.
            let maj = (self.a & self.b) | (carries & (self.a ^ self.b));
            carries = (maj << 1) & mask;
        }
        (self.a ^ self.b ^ carries) & mask
    }

    /// The correct (settled) sum, modulo `2^width`.
    #[must_use]
    pub fn settled(&self) -> u64 {
        self.a.wrapping_add(self.b) & ((1u64 << self.width) - 1)
    }

    /// Number of full-adder delays until the output stops changing — the
    /// longest carry chain for these operands, plus the initial sum level.
    #[must_use]
    pub fn settling_ticks(&self) -> u32 {
        let correct = self.settled();
        let mut last_change = 0;
        for t in 0..=self.width {
            if self.sample(t) == correct {
                // Verify it stays settled (carry waves are monotone here).
                last_change = t;
                break;
            }
        }
        last_change
    }

    /// The length of the longest carry-propagation chain for these operands
    /// (the classic combinational measure).
    #[must_use]
    pub fn longest_carry_chain(&self) -> u32 {
        let gen = self.a & self.b; // positions that generate a carry
        let prop = self.a ^ self.b; // positions that propagate one
        let mut best = 0u32;
        for start in 0..self.width {
            if gen >> start & 1 == 1 {
                let mut len = 1;
                let mut i = start + 1;
                while i < self.width && prop >> i & 1 == 1 {
                    len += 1;
                    i += 1;
                }
                best = best.max(len);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settled_equals_modular_sum() {
        for a in 0..32u64 {
            for b in 0..32u64 {
                let add = StagedRippleAdder::new(a, b, 5);
                assert_eq!(add.settled(), (a + b) & 31);
                assert_eq!(add.sample(5), add.settled(), "width waves always settle");
            }
        }
    }

    #[test]
    fn worst_case_chain_needs_full_width() {
        // 0111…1 + 1 carries across the whole word.
        let add = StagedRippleAdder::new((1 << 7) - 1, 1, 8);
        assert_eq!(add.longest_carry_chain(), 7);
        assert_ne!(add.sample(3), add.settled(), "early sample wrong in MSBs");
        // The early error is in the HIGH bits: low bits settle first.
        let early = add.sample(3);
        let correct = add.settled();
        let diff = early ^ correct;
        assert!(diff >= 1 << 3, "error must be confined to high bits, diff={diff:b}");
    }

    #[test]
    fn no_chain_settles_immediately() {
        let add = StagedRippleAdder::new(0b0101, 0b1010, 4);
        assert_eq!(add.longest_carry_chain(), 0);
        assert_eq!(add.sample(1), add.settled());
    }

    #[test]
    fn settling_matches_chain_length() {
        for a in 0..64u64 {
            for b in 0..64u64 {
                let add = StagedRippleAdder::new(a, b, 6);
                // Settling (in FA waves) is bounded by chain length + 1.
                assert!(add.settling_ticks() <= add.longest_carry_chain() + 1, "a={a:b} b={b:b}");
            }
        }
    }

    #[test]
    fn overclocking_error_is_msb_heavy() {
        // Statistical signature of conventional arithmetic: when sampling
        // early, the expected error magnitude is large relative to the ulp
        // because errors sit in high bits.
        let mut total_err = 0i64;
        let mut count = 0;
        for a in 0..256u64 {
            let add = StagedRippleAdder::new(a, 255 - a + 1, 8);
            let early = add.sample(2);
            let diff = early as i64 - add.settled() as i64;
            total_err += diff.abs();
            count += 1;
        }
        // a + (256−a) = 256 ≡ 0 mod 256: maximal chains everywhere, so the
        // average early-sample error must be enormous (≫ 1 ulp).
        assert!(total_err / count > 16, "avg err {}", total_err / count);
    }
}
