//! Property-based tests for the arithmetic operators: exactness of the
//! online adder, accuracy invariants of every multiplier model, and the
//! conventional baselines.

use ola_arith::conventional::{StagedRippleAdder, TcFormat};
use ola_arith::online::{bittrue_mult, bs_add, online_mult, Selection, StagedMultiplier};
use ola_redundant::{BsVector, Digit, SdNumber, Q};
use proptest::prelude::*;

fn digit_strategy() -> impl Strategy<Value = Digit> {
    prop_oneof![Just(Digit::NegOne), Just(Digit::Zero), Just(Digit::One)]
}

fn sd_strategy(len: usize) -> impl Strategy<Value = SdNumber> {
    prop::collection::vec(digit_strategy(), len).prop_map(SdNumber::new)
}

fn sd_pair(max_len: usize) -> impl Strategy<Value = (SdNumber, SdNumber)> {
    (1..=max_len).prop_flat_map(|n| (sd_strategy(n), sd_strategy(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn online_adder_is_exact((x, y) in sd_pair(24)) {
        let z = bs_add(&BsVector::from_sd(&x), &BsVector::from_sd(&y));
        prop_assert_eq!(z.value(), x.value() + y.value());
    }

    #[test]
    fn online_adder_handles_shifted_windows((x, y) in sd_pair(16), k in -3i32..=3) {
        let a = BsVector::from_sd(&x);
        let b = BsVector::from_sd(&y).shifted(k);
        let z = bs_add(&a, &b);
        prop_assert_eq!(z.value(), a.value() + b.value());
    }

    #[test]
    fn golden_multiplier_meets_accuracy_bound((x, y) in sd_pair(20)) {
        let n = x.len() as u32;
        for (policy, c) in [(Selection::Exact, Q::ONE), (Selection::default(), Q::new(3, 1))] {
            let p = online_mult(&x, &y, policy);
            let err = (x.value() * y.value() - p.value()).abs();
            prop_assert!(err <= c >> (n + 1), "{policy:?}");
            // Exact invariant relating error and residual.
            prop_assert_eq!(x.value() * y.value() - p.value(), p.error());
        }
    }

    #[test]
    fn bittrue_equals_its_own_invariant((x, y) in sd_pair(16)) {
        let n = x.len() as u32;
        let p = bittrue_mult(&x, &y, Selection::default());
        prop_assert!(p.stages.iter().all(|s| !s.saturated));
        prop_assert_eq!(
            x.value() * y.value() - p.value(),
            p.residual.value() >> (n + 1)
        );
    }

    #[test]
    fn staged_settles_to_bittrue((x, y) in sd_pair(12)) {
        let bt = bittrue_mult(&x, &y, Selection::default());
        let sm = StagedMultiplier::new(x, y, Selection::default());
        let settled = sm.settled();
        prop_assert_eq!(settled.digits(), &bt.digits[..]);
        prop_assert!(sm.settling_ticks() <= sm.stage_count());
    }

    #[test]
    fn undersampled_error_is_bounded_by_remaining_digit_weight((x, y) in sd_pair(12), b in 4usize..16) {
        let sm = StagedMultiplier::new(x, y, Selection::default());
        let correct = sm.settled().value();
        let sampled = sm.sample(b).value();
        // Digits j ≤ b−1−δ are final after b waves; the rest carry at most
        // weight 4·2^-(b-δ) in total (each |Δz| ≤ 2).
        let envelope = Q::new(4, 0) >> (b as u32).saturating_sub(4);
        prop_assert!((sampled - correct).abs() <= envelope);
    }

    #[test]
    fn multiplication_is_commutative_in_value((x, y) in sd_pair(14)) {
        let xy = online_mult(&x, &y, Selection::Exact);
        let yx = online_mult(&y, &x, Selection::Exact);
        // Digit streams may differ, but both sit within the bound of the
        // same exact product; their difference is at most two residuals.
        let diff = (xy.value() - yx.value()).abs();
        prop_assert!(diff <= Q::new(1, x.len() as u32));
    }

    #[test]
    fn tc_round_trip(raw in -256i64..256) {
        let fmt = TcFormat::new(8);
        let bits = fmt.encode_raw(raw);
        prop_assert_eq!(fmt.decode_raw(&bits), raw);
    }

    #[test]
    fn tc_quantize_is_within_half_ulp(num in -1000i128..1000) {
        let fmt = TcFormat::new(6);
        let v = Q::new(num, 10);
        let q = fmt.quantize(v);
        // Clamped at the range edge; otherwise within half an ulp.
        if q > Q::new(-1, 0) && q < Q::new(63, 6) {
            prop_assert!((q - v).abs() <= Q::new(1, 7));
        }
    }

    #[test]
    fn ripple_adder_wave_settles_to_sum(a in 0u64..65536, b in 0u64..65536) {
        let adder = StagedRippleAdder::new(a, b, 16);
        prop_assert_eq!(adder.sample(16), (a + b) & 0xFFFF);
        prop_assert_eq!(adder.settled(), (a + b) & 0xFFFF);
        // Monotone settling: once correct, stays correct.
        let settle = adder.settling_ticks();
        for t in settle..=16 {
            prop_assert_eq!(adder.sample(t), adder.settled());
        }
    }

    #[test]
    fn carry_chain_bounds_settling(a in 0u64..65536, b in 0u64..65536) {
        let adder = StagedRippleAdder::new(a, b, 16);
        prop_assert!(adder.settling_ticks() <= adder.longest_carry_chain() + 1);
    }
}

/// Every generated netlist family must come out of its generator
/// lint-clean — the generators prune their own dead logic, and the lint
/// pass ([`ola_netlist::sta::lint::check`]) is the machine check.
mod generated_netlists_are_lint_clean {
    use ola_arith::synth::{array_multiplier, online_adder, online_multiplier};
    use ola_netlist::sta::lint::check;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn online_operators(n in 4usize..14) {
            let issues = check(&online_multiplier(n, 3).netlist);
            prop_assert!(issues.is_empty(), "online mult N={n}: {issues:?}");
            let issues = check(&online_adder(n).netlist);
            prop_assert!(issues.is_empty(), "online adder N={n}: {issues:?}");
        }

        #[test]
        fn conventional_multipliers(w in 2usize..14) {
            let issues = check(&array_multiplier(w).netlist);
            prop_assert!(issues.is_empty(), "array mult W={w}: {issues:?}");
        }
    }
}
