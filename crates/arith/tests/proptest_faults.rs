//! Property-based tests for fault injection on synthesized netlists:
//! arbitrary [`FaultPlan`]s on real adder/multiplier circuits never panic
//! or hang (the event budget is always respected), and the empty plan is
//! bit-identical to the fault-free simulator.

use ola_arith::synth::{array_multiplier, online_adder};
use ola_netlist::{
    default_event_budget, simulate_budgeted, simulate_with_faults, FaultPlan, NetId, Netlist,
    SimError, UnitDelay,
};
use proptest::prelude::*;

/// One arbitrary fault, described net-index-free so the same description
/// can be applied to differently sized netlists.
#[derive(Clone, Debug)]
struct FaultSpec {
    /// Net selector, reduced modulo the netlist size.
    site: usize,
    /// 0/1 → stuck-at, 2 → transient, 3 → delay push.
    kind: u8,
    at: u64,
    duration: u64,
    push: u64,
}

fn fault_spec() -> impl Strategy<Value = FaultSpec> {
    (any::<usize>(), 0u8..4, 0u64..3000, 0u64..400, 0u64..300)
        .prop_map(|(site, kind, at, duration, push)| FaultSpec { site, kind, at, duration, push })
}

fn plan_for(netlist: &Netlist, specs: &[FaultSpec]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for s in specs {
        let net = NetId::from_index(s.site % netlist.len());
        plan = match s.kind {
            0 => plan.stuck_at(net, false),
            1 => plan.stuck_at(net, true),
            2 => plan.transient(net, s.at, s.duration),
            _ => plan.delay_push(net, s.push),
        };
    }
    plan
}

fn input_vector(netlist: &Netlist, bits: &[bool]) -> Vec<bool> {
    (0..netlist.inputs().len()).map(|i| bits[i % bits.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary plans on an online adder: the simulation returns `Ok`
    /// (acyclic netlists settle within the default budget) and never
    /// panics, whatever the fault mix.
    #[test]
    fn adder_with_arbitrary_faults_never_panics(
        n in 1usize..=5,
        specs in prop::collection::vec(fault_spec(), 0..6),
        bits in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let circuit = online_adder(n);
        let nl = &circuit.netlist;
        let plan = plan_for(nl, &specs);
        let inputs = input_vector(nl, &bits);
        let zeros = vec![false; inputs.len()];
        let res = simulate_with_faults(
            nl, &UnitDelay, &zeros, &inputs, &plan, default_event_budget(nl),
        );
        prop_assert!(res.is_ok(), "acyclic netlist must settle: {res:?}");
    }

    /// The same property on a conventional array multiplier, whose carry
    /// chains re-converge — historically the glitchiest structure here.
    #[test]
    fn multiplier_with_arbitrary_faults_never_panics(
        w in 2usize..=4,
        specs in prop::collection::vec(fault_spec(), 0..6),
        bits in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let circuit = array_multiplier(w);
        let nl = &circuit.netlist;
        let plan = plan_for(nl, &specs);
        let inputs = input_vector(nl, &bits);
        let zeros = vec![false; inputs.len()];
        let res = simulate_with_faults(
            nl, &UnitDelay, &zeros, &inputs, &plan, default_event_budget(nl),
        );
        prop_assert!(res.is_ok(), "acyclic netlist must settle: {res:?}");
    }

    /// A zero-fault plan is the identity: every waveform of every net is
    /// bit-identical to the fault-free simulator at every time step.
    #[test]
    fn empty_plan_is_bit_identical_to_fault_free(
        n in 1usize..=5,
        bits in prop::collection::vec(any::<bool>(), 1..8),
        prev_bits in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let circuit = online_adder(n);
        let nl = &circuit.netlist;
        let inputs = input_vector(nl, &bits);
        let prev = input_vector(nl, &prev_bits);
        let budget = default_event_budget(nl);
        let plain = simulate_budgeted(nl, &UnitDelay, &prev, &inputs, budget).unwrap();
        let faulted =
            simulate_with_faults(nl, &UnitDelay, &prev, &inputs, &FaultPlan::new(), budget)
                .unwrap();
        prop_assert_eq!(plain, faulted);
    }

    /// However small the budget, the simulator terminates with either a
    /// settled result or a typed `Unsettled` error whose event count
    /// honestly exceeds the budget — never a hang or a panic.
    #[test]
    fn tiny_budgets_yield_ok_or_typed_unsettled(
        n in 1usize..=4,
        specs in prop::collection::vec(fault_spec(), 0..4),
        bits in prop::collection::vec(any::<bool>(), 1..8),
        budget in 0usize..32,
    ) {
        let circuit = online_adder(n);
        let nl = &circuit.netlist;
        let plan = plan_for(nl, &specs);
        let inputs = input_vector(nl, &bits);
        let zeros = vec![false; inputs.len()];
        match simulate_with_faults(nl, &UnitDelay, &zeros, &inputs, &plan, budget) {
            Ok(_) => {}
            Err(SimError::Unsettled { events, budget: b }) => {
                prop_assert_eq!(b, budget);
                prop_assert!(events > budget);
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// Plans naming nets outside the netlist fail with a typed
    /// `InvalidFault` error instead of panicking.
    #[test]
    fn out_of_range_sites_are_typed_errors(extra in 1usize..1000) {
        let circuit = online_adder(2);
        let nl = &circuit.netlist;
        let bad = FaultPlan::new().stuck_at(NetId::from_index(nl.len() + extra), true);
        let inputs = vec![false; nl.inputs().len()];
        let res = simulate_with_faults(
            nl, &UnitDelay, &inputs, &inputs, &bad, default_event_budget(nl),
        );
        prop_assert!(matches!(res, Err(SimError::InvalidFault(_))), "got {res:?}");
    }
}
