//! Case-study throughput: the overclocked Gaussian filter's cost per image
//! and the procedural benchmark-image generators.

// `criterion_group!` expands to undocumented harness plumbing; the workspace
// `missing_docs` lint has nothing actionable to say about it.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_imaging::filter::{
    filter_exact, FilterConfig, OnlineFilter, OverclockedFilter, TraditionalFilter,
};
use ola_imaging::synthetic::Benchmark;
use ola_imaging::Kernel;
use std::hint::black_box;

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("filter_sweep_8x8");
    g.sample_size(10);
    let img = Benchmark::LenaLike.generate(8, 8, 1);
    let online = OnlineFilter::new(FilterConfig::paper_default());
    let trad = TraditionalFilter::new(FilterConfig::paper_default());
    let o_ts = [online.rated_period() * 7 / 10, online.rated_period()];
    let t_ts = [trad.rated_period() * 7 / 10, trad.rated_period()];
    g.bench_function("online", |b| b.iter(|| online.apply_sweep(black_box(&img), &o_ts)));
    g.bench_function("traditional", |b| b.iter(|| trad.apply_sweep(black_box(&img), &t_ts)));
    g.finish();
}

fn bench_exact_filter(c: &mut Criterion) {
    let img = Benchmark::SailboatLike.generate(64, 64, 2);
    let kernel = Kernel::gaussian(3, 1.0, 8);
    c.bench_function("filter_exact_64x64", |b| b.iter(|| filter_exact(black_box(&img), &kernel)));
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("image_generators");
    for bench in Benchmark::ALL {
        g.bench_with_input(
            BenchmarkId::new("generate_64x64", bench.name()),
            &bench,
            |b, &bench| b.iter(|| bench.generate(64, 64, black_box(3))),
        );
    }
    g.finish();
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_filters,bench_exact_filter,bench_generators
);
criterion_main!(benches);
