//! Substrate throughput: the event-driven simulator, the bit-parallel
//! batch engine, static timing analysis, and the LUT-area estimator on
//! realistic datapath netlists.
//!
//! The `mc_sweep_*` groups run the same Monte-Carlo multi-Ts sampling
//! workload (the core of fig4/faults) on both [`SimBackend`]s so the
//! event-vs-batch speedup is measured end to end, program compilation
//! included. `cargo run --release -p ola-bench --bin backend_speedup`
//! records the same comparison as a CSV in `results/`.

// `criterion_group!` expands to undocumented harness plumbing; the workspace
// `missing_docs` lint has nothing actionable to say about it.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_arith::synth::{array_multiplier, online_adder, online_multiplier};
use ola_core::empirical::{array_gate_level_curve_with, om_gate_level_curve_with};
use ola_core::{InputModel, SimBackend, StaGate};
use ola_netlist::{analyze, area, simulate, FpgaDelay, JitteredDelay, Netlist, UnitDelay};
use std::hint::black_box;

fn ripple_chain(n: usize) -> Netlist {
    let mut nl = Netlist::new();
    let mut cur = nl.input("a");
    for _ in 0..n {
        let b = nl.input("b");
        let x = nl.xor(cur, b);
        cur = nl.and(x, b);
    }
    nl.set_output("z", vec![cur]);
    nl
}

fn bench_event_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_simulator");
    for n in [64usize, 256, 1024] {
        let nl = ripple_chain(n);
        let prev = vec![false; n + 1];
        let mut next = prev.clone();
        next[0] = true;
        for (i, v) in next.iter_mut().enumerate().skip(1) {
            *v = i % 3 == 0;
        }
        g.bench_with_input(BenchmarkId::new("chain_flip", n), &n, |b, _| {
            b.iter(|| simulate(&nl, &UnitDelay, black_box(&prev), black_box(&next)));
        });
    }
    g.finish();
}

/// A short Ts grid from zero-ish up to the rated period, mirroring the
/// frequency sweeps of the experiments.
fn ts_grid(rated: u64, points: u64) -> Vec<u64> {
    (1..=points).map(|k| rated * k / points).collect()
}

/// Samples per measured sweep: large enough that the batch engine fills a
/// meaningful share of a 64-bit lane word, small enough that the
/// event-driven side of the 32-bit workloads stays benchable.
const SWEEP_SAMPLES: usize = 24;

fn bench_backend_online(c: &mut Criterion) {
    let delay = FpgaDelay::default();
    let mut g = c.benchmark_group("mc_sweep_online_mult");
    g.sample_size(10);
    for n in [8usize, 16, 32] {
        let circuit = online_multiplier(n, 3);
        let ts = ts_grid(analyze(&circuit.netlist, &delay).critical_path(), 5);
        for backend in [SimBackend::Event, SimBackend::Batch] {
            g.bench_with_input(BenchmarkId::new(backend.label(), n), &n, |b, _| {
                b.iter(|| {
                    om_gate_level_curve_with(
                        &circuit,
                        &delay,
                        InputModel::UniformDigits,
                        black_box(&ts),
                        SWEEP_SAMPLES,
                        7,
                        backend,
                        // Raw engine throughput: keep the STA fast path out
                        // of the timed workload.
                        StaGate::Off,
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_backend_array(c: &mut Criterion) {
    let delay = FpgaDelay::default();
    let mut g = c.benchmark_group("mc_sweep_array_mult");
    g.sample_size(10);
    // Width 31 stands in for the 32-bit class: the array multiplier's
    // product must stay exact in `i64`.
    for w in [8usize, 16, 31] {
        let circuit = array_multiplier(w);
        let ts = ts_grid(analyze(&circuit.netlist, &delay).critical_path(), 5);
        for backend in [SimBackend::Event, SimBackend::Batch] {
            g.bench_with_input(BenchmarkId::new(backend.label(), w), &w, |b, _| {
                b.iter(|| {
                    array_gate_level_curve_with(
                        &circuit,
                        &delay,
                        black_box(&ts),
                        SWEEP_SAMPLES,
                        7,
                        backend,
                        StaGate::Off,
                    )
                });
            });
        }
    }
    g.finish();
}

fn bench_sta_and_area(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    let om = online_multiplier(8, 3);
    let am = array_multiplier(9);
    let oa = online_adder(32);
    let jitter = JitteredDelay::new(UnitDelay, 20, 1);
    g.bench_function("sta_online_mult_8", |b| b.iter(|| analyze(black_box(&om.netlist), &jitter)));
    g.bench_function("sta_array_mult_9", |b| b.iter(|| analyze(black_box(&am.netlist), &jitter)));
    g.bench_function("area_online_mult_8", |b| {
        b.iter(|| area::estimate(black_box(&om.netlist), 4));
    });
    g.bench_function("area_online_adder_32", |b| {
        b.iter(|| area::estimate(black_box(&oa.netlist), 4));
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(20);
    for n in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("online_multiplier", n), &n, |b, &n| {
            b.iter(|| online_multiplier(black_box(n), 3));
        });
        g.bench_with_input(BenchmarkId::new("array_multiplier", n), &n, |b, &n| {
            b.iter(|| array_multiplier(black_box(n)));
        });
    }
    g.finish();
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_event_sim,bench_backend_online,bench_backend_array,bench_sta_and_area,bench_synthesis
);
criterion_main!(benches);
