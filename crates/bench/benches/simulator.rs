//! Substrate throughput: the event-driven simulator, static timing
//! analysis, and the LUT-area estimator on realistic datapath netlists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_arith::synth::{array_multiplier, online_adder, online_multiplier};
use ola_netlist::{analyze, area, simulate, JitteredDelay, Netlist, UnitDelay};
use std::hint::black_box;

fn ripple_chain(n: usize) -> Netlist {
    let mut nl = Netlist::new();
    let mut cur = nl.input("a");
    for _ in 0..n {
        let b = nl.input("b");
        let x = nl.xor(cur, b);
        cur = nl.and(x, b);
    }
    nl.set_output("z", vec![cur]);
    nl
}

fn bench_event_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_simulator");
    for n in [64usize, 256, 1024] {
        let nl = ripple_chain(n);
        let prev = vec![false; n + 1];
        let mut next = prev.clone();
        next[0] = true;
        for (i, v) in next.iter_mut().enumerate().skip(1) {
            *v = i % 3 == 0;
        }
        g.bench_with_input(BenchmarkId::new("chain_flip", n), &n, |b, _| {
            b.iter(|| simulate(&nl, &UnitDelay, black_box(&prev), black_box(&next)))
        });
    }
    g.finish();
}

fn bench_sta_and_area(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(20);
    let om = online_multiplier(8, 3);
    let am = array_multiplier(9);
    let oa = online_adder(32);
    let jitter = JitteredDelay::new(UnitDelay, 20, 1);
    g.bench_function("sta_online_mult_8", |b| b.iter(|| analyze(black_box(&om.netlist), &jitter)));
    g.bench_function("sta_array_mult_9", |b| b.iter(|| analyze(black_box(&am.netlist), &jitter)));
    g.bench_function("area_online_mult_8", |b| {
        b.iter(|| area::estimate(black_box(&om.netlist), 4))
    });
    g.bench_function("area_online_adder_32", |b| {
        b.iter(|| area::estimate(black_box(&oa.netlist), 4))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(20);
    for n in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("online_multiplier", n), &n, |b, &n| {
            b.iter(|| online_multiplier(black_box(n), 3))
        });
        g.bench_with_input(BenchmarkId::new("array_multiplier", n), &n, |b, &n| {
            b.iter(|| array_multiplier(black_box(n)))
        });
    }
    g.finish();
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_event_sim,bench_sta_and_area,bench_synthesis
);
criterion_main!(benches);
