//! Operator-level throughput: the golden, bit-true, stage-wave and
//! gate-level models of the online multiplier, and the conventional
//! baselines, across word lengths.

// `criterion_group!` expands to undocumented harness plumbing; the workspace
// `missing_docs` lint has nothing actionable to say about it.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_arith::conventional::StagedRippleAdder;
use ola_arith::online::{bittrue_mult, online_mult, Selection, StagedMultiplier};
use ola_arith::synth::{array_multiplier, online_multiplier};
use ola_netlist::{simulate_from_zero, UnitDelay};
use ola_redundant::{random, SdNumber};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn operands(n: usize) -> (SdNumber, SdNumber) {
    let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
    (random::uniform_digits(&mut rng, n), random::uniform_digits(&mut rng, n))
}

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("online_multiplier_models");
    for n in [8usize, 16, 32] {
        let (x, y) = operands(n);
        g.bench_with_input(BenchmarkId::new("golden", n), &n, |b, _| {
            b.iter(|| online_mult(black_box(&x), black_box(&y), Selection::default()));
        });
        g.bench_with_input(BenchmarkId::new("bittrue", n), &n, |b, _| {
            b.iter(|| bittrue_mult(black_box(&x), black_box(&y), Selection::default()));
        });
        g.bench_with_input(BenchmarkId::new("staged_settle", n), &n, |b, _| {
            b.iter(|| StagedMultiplier::new(x.clone(), y.clone(), Selection::default()).settled());
        });
    }
    g.finish();
}

fn bench_gate_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("gate_level_multipliers");
    g.sample_size(20);
    for n in [8usize, 12] {
        let om = online_multiplier(n, 3);
        let (x, y) = operands(n);
        let inputs = om.encode_inputs(&x, &y);
        g.bench_with_input(BenchmarkId::new("online_event_sim", n), &n, |b, _| {
            b.iter(|| simulate_from_zero(&om.netlist, &UnitDelay, black_box(&inputs)));
        });
        g.bench_with_input(BenchmarkId::new("online_functional", n), &n, |b, _| {
            b.iter(|| om.netlist.eval(black_box(&inputs)));
        });
        let am = array_multiplier(n + 1);
        let am_inputs = am.encode_inputs(77, -93);
        g.bench_with_input(BenchmarkId::new("array_event_sim", n), &n, |b, _| {
            b.iter(|| simulate_from_zero(&am.netlist, &UnitDelay, black_box(&am_inputs)));
        });
    }
    g.finish();
}

fn bench_conventional(c: &mut Criterion) {
    let mut g = c.benchmark_group("ripple_adder_wave");
    for w in [16u32, 32] {
        g.bench_with_input(BenchmarkId::new("sample_all_ticks", w), &w, |b, &w| {
            let adder = StagedRippleAdder::new(0x5A5A, 0xA5A6, w);
            b.iter(|| {
                let mut acc = 0u64;
                for t in 0..=w {
                    acc ^= adder.sample(black_box(t));
                }
                acc
            });
        });
    }
    g.finish();
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_models,bench_gate_level,bench_conventional
);
criterion_main!(benches);
