//! Ablations of the design choices called out in `DESIGN.md` §5:
//! selection-estimate width, delay-jitter amplitude, and the stage-wave vs
//! gate-level timing backend.

// `criterion_group!` expands to undocumented harness plumbing; the workspace
// `missing_docs` lint has nothing actionable to say about it.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_arith::online::{Selection, StagedMultiplier};
use ola_arith::synth::online_multiplier;
use ola_core::empirical::om_gate_level_curve;
use ola_core::{montecarlo, InputModel};
use ola_netlist::{analyze, area, simulate_from_zero, JitteredDelay, UnitDelay};
use ola_redundant::random;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Selection-estimate width: wider estimates cost a longer selection CPA
/// and more area but do not change the residual-path delay.
fn ablation_selection_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_selection_width");
    g.sample_size(15);
    for t in [3i32, 4, 6] {
        let circuit = online_multiplier(8, t);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ar = area::estimate(&circuit.netlist, 4);
        eprintln!(
            "[ablation] estimate t={t}: {} gates, {} LUTs, critical path {}",
            circuit.netlist.logic_gate_count(),
            ar.luts,
            rep.critical_path()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(t as u64);
        let x = random::uniform_digits(&mut rng, 8);
        let y = random::uniform_digits(&mut rng, 8);
        let inputs = circuit.encode_inputs(&x, &y);
        g.bench_with_input(BenchmarkId::new("event_sim", t), &t, |b, _| {
            b.iter(|| simulate_from_zero(&circuit.netlist, &UnitDelay, black_box(&inputs)));
        });
        g.bench_with_input(BenchmarkId::new("staged_mc_100", t), &t, |b, &t| {
            b.iter(|| {
                montecarlo::om_monte_carlo(
                    8,
                    Selection::Estimate { frac_digits: t },
                    InputModel::UniformDigits,
                    100,
                    5,
                )
            });
        });
    }
    g.finish();
}

/// Jitter amplitude: how much place-and-route-style variation costs in
/// observed settling (printed) and simulation time (measured).
fn ablation_jitter(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_jitter");
    g.sample_size(10);
    let circuit = online_multiplier(8, 3);
    for amp in [0u64, 15, 40] {
        let delay = JitteredDelay::new(UnitDelay, amp, 7);
        let rated = analyze(&circuit.netlist, &delay).critical_path();
        let curve = om_gate_level_curve(
            &circuit,
            &delay,
            InputModel::UniformDigits,
            &[rated * 7 / 10, rated],
            30,
            3,
        );
        eprintln!(
            "[ablation] jitter ±{amp}: rated {rated}, max settle {}, err@0.7 {:.2e}",
            curve.max_settle, curve.mean_abs_error[0]
        );
        g.bench_with_input(BenchmarkId::new("curve_30_samples", amp), &amp, |b, _| {
            b.iter(|| {
                om_gate_level_curve(
                    &circuit,
                    &delay,
                    InputModel::UniformDigits,
                    &[rated * 7 / 10],
                    30,
                    3,
                )
            });
        });
    }
    g.finish();
}

/// Timing backend: the stage-wave abstraction vs full gate-level event
/// simulation for the same overclocking question.
fn ablation_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_backend");
    g.sample_size(15);
    let n = 8;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let x = random::uniform_digits(&mut rng, n);
    let y = random::uniform_digits(&mut rng, n);
    g.bench_function("stage_wave_history", |b| {
        b.iter(|| {
            StagedMultiplier::new(x.clone(), y.clone(), Selection::default()).sampled_values()
        });
    });
    let circuit = online_multiplier(n, 3);
    let inputs = circuit.encode_inputs(&x, &y);
    g.bench_function("gate_level_full_waveform", |b| {
        b.iter(|| simulate_from_zero(&circuit.netlist, &UnitDelay, black_box(&inputs)));
    });
    g.finish();
}

/// Input statistics: digit-uniform (the model's assumption) vs
/// value-uniform (canonical encodings, the "real data" direction) — fewer
/// long chains means more error-free overclock headroom.
fn ablation_input_statistics(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_input_statistics");
    g.sample_size(10);
    for (name, model) in [
        ("digit_uniform", InputModel::UniformDigits),
        ("value_uniform", InputModel::UniformValue),
        ("nonneg_value", InputModel::NonNegValue),
    ] {
        let worst = montecarlo::max_observed_settling(12, Selection::default(), model, 2000, 9);
        let mc = montecarlo::om_monte_carlo(12, Selection::default(), model, 2000, 9);
        let free = mc.curve.mean_abs_error.iter().position(|&e| e == 0.0).unwrap_or(usize::MAX);
        eprintln!("[ablation] {name}: worst settle {worst} waves, error-free budget {free} of 15");
        g.bench_function(name, |b| {
            b.iter(|| {
                montecarlo::om_monte_carlo(12, Selection::default(), black_box(model), 200, 9)
            });
        });
    }
    g.finish();
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = ablation_selection_width,ablation_jitter,ablation_backend,ablation_input_statistics
);
criterion_main!(benches);
