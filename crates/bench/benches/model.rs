//! Analytic-model evaluation speed (Algorithm 2 and friends) and the
//! stage-wave Monte-Carlo engine's sample throughput.

// `criterion_group!` expands to undocumented harness plumbing; the workspace
// `missing_docs` lint has nothing actionable to say about it.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ola_arith::online::Selection;
use ola_core::{baseline, model, montecarlo, InputModel};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic_model");
    for n in [8usize, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::new("chain_scenarios", n), &n, |b, &n| {
            b.iter(|| model::chain_scenarios(black_box(n)));
        });
        g.bench_with_input(BenchmarkId::new("expected_error_sweep", n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for budget in 0..=(n + 3) {
                    acc += model::expected_error(black_box(n), budget, 1.0);
                }
                acc
            });
        });
        g.bench_with_input(BenchmarkId::new("delay_profile", n), &n, |b, &n| {
            b.iter(|| model::chain_delay_profile(black_box(n)));
        });
    }
    g.finish();
}

fn bench_montecarlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("montecarlo");
    g.sample_size(10);
    for n in [8usize, 16] {
        g.bench_with_input(BenchmarkId::new("om_200_samples", n), &n, |b, &n| {
            b.iter(|| {
                montecarlo::om_monte_carlo(
                    black_box(n),
                    Selection::default(),
                    InputModel::UniformDigits,
                    200,
                    9,
                )
            });
        });
    }
    g.bench_function("rca_2000_samples_w16", |b| b.iter(|| baseline::rca_monte_carlo(16, 2000, 9)));
    g.finish();
}

fn bench_carry_cdf(c: &mut Criterion) {
    c.bench_function("carry_chain_cdf_w64", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for l in 0..64 {
                acc += baseline::carry_chain_cdf(black_box(64), l);
            }
            acc
        });
    });
}

/// Single-core-friendly measurement settings: the datapath simulations are
/// macro-benchmarks, so short measurement windows already give stable
/// numbers.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}

criterion_group!(
    name = benches;
    config = config();
    targets = bench_model,bench_montecarlo,bench_carry_cdf
);
criterion_main!(benches);
