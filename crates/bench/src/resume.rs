//! Checkpoint/resume plumbing for the `repro` driver.
//!
//! A reproduction run appends every completed *work unit* (one or more
//! finished [`Table`]s plus any files the unit registered via
//! [`ola_core::obs::note_output`]) to a SHA-256-framed checkpoint file
//! (see [`ola_core::resilience::checkpoint`]). After a crash, `repro
//! --resume` replays the valid frames: experiments re-run with the same
//! [`ExperimentCtx`], and every unit that already has a frame returns its
//! recorded tables instantly instead of recomputing. Experiments whose
//! *done* frame landed are short-circuited entirely — the driver rebuilds
//! their tables straight from the checkpoint. Because unit seeds are
//! deterministic and [`Table::to_json`] is lossless, a resumed run's CSVs
//! are bit-identical to an uninterrupted run's.
//!
//! ## Frame kinds
//!
//! * `header` — binds the checkpoint to `(scale, backend, all)`; a
//!   mismatched header on `--resume` discards the checkpoint (resuming a
//!   quick run into a full run would splice tables from different sample
//!   counts);
//! * `unit` — `{experiment, unit, tables, noted}`: one completed work
//!   unit;
//! * `done` — `{experiment}`: every unit of the experiment landed and the
//!   driver persisted its CSVs.

use crate::report::Table;
use ola_core::obs::json::JsonValue;
use ola_core::resilience::checkpoint::{open_resumable, CheckpointWriter};
use ola_core::resilience::ResilienceError;
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// The checkpoint header: the run parameters that change what every
/// experiment computes. A resumed run must match them exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunHeader {
    /// Scale label (`quick` / `full`).
    pub scale: String,
    /// Backend label (`auto` / `event` / `batch`).
    pub backend: String,
    /// Extended lint coverage flag.
    pub all: bool,
}

impl RunHeader {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::str("header")),
            ("schema".into(), JsonValue::U64(1)),
            ("scale".into(), JsonValue::str(self.scale.clone())),
            ("backend".into(), JsonValue::str(self.backend.clone())),
            ("all".into(), JsonValue::Bool(self.all)),
        ])
    }

    fn from_json(v: &JsonValue) -> Option<RunHeader> {
        Some(RunHeader {
            scale: v.get("scale")?.as_str()?.to_owned(),
            backend: v.get("backend")?.as_str()?.to_owned(),
            all: matches!(v.get("all")?, JsonValue::Bool(true)),
        })
    }
}

/// One replayable work unit: the tables it produced and the output files
/// it registered.
#[derive(Clone, Debug, Default)]
pub struct ReplayUnit {
    /// The unit's finished tables, in production order.
    pub tables: Vec<Table>,
    /// `(label, path)` pairs the unit registered via `note_output`.
    pub noted: Vec<(String, PathBuf)>,
}

struct Inner {
    /// `None` after an unrecoverable append failure: the run continues,
    /// it just stops being resumable (and says so once).
    writer: Option<CheckpointWriter>,
    units: HashMap<(String, String), ReplayUnit>,
    /// `(experiment, unit)` keys in frame-append order — replay order.
    unit_order: Vec<(String, String)>,
    done: BTreeSet<String>,
}

/// Shared, thread-safe checkpoint state for one `repro` invocation.
pub struct RunState {
    inner: Mutex<Inner>,
}

fn lock(state: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl RunState {
    /// Starts a fresh checkpoint at `path` (truncating any previous one)
    /// and writes the header frame. Checkpointing failures are demoted to
    /// a warning — reproduction results matter more than resumability.
    #[must_use]
    pub fn fresh(path: &Path, header: &RunHeader) -> Arc<RunState> {
        let writer = CheckpointWriter::create(path)
            .and_then(|mut w| w.append(&header.to_json()).map(|()| w));
        let writer = match writer {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("[resume] checkpointing disabled: {e}");
                None
            }
        };
        Arc::new(RunState {
            inner: Mutex::new(Inner {
                writer,
                units: HashMap::new(),
                unit_order: Vec::new(),
                done: BTreeSet::new(),
            }),
        })
    }

    /// Opens `path` for resumption: quarantines a damaged tail, replays
    /// the valid frames, and verifies the header matches `header`. On a
    /// missing or mismatched header the checkpoint is discarded with a
    /// warning and the run starts fresh — silently splicing results from
    /// a run with different parameters would corrupt the artifacts.
    #[must_use]
    pub fn resume(path: &Path, header: &RunHeader) -> Arc<RunState> {
        let (outcome, writer) = match open_resumable(path) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("[resume] cannot open checkpoint {}: {e}", path.display());
                return RunState::fresh(path, header);
            }
        };
        let recorded = outcome.frames.first().and_then(RunHeader::from_json);
        if outcome.frames.is_empty() {
            // Nothing to resume; reuse the writer for a header + fresh run.
            let mut writer = writer;
            if let Err(e) = writer.append(&header.to_json()) {
                eprintln!("[resume] checkpointing disabled: {e}");
                return RunState::fresh(path, header);
            }
            return RunState::from_writer(writer);
        }
        if recorded.as_ref() != Some(header) {
            eprintln!(
                "[resume] checkpoint {} was written by a run with different \
                 parameters ({recorded:?} vs {header:?}); starting fresh",
                path.display()
            );
            drop(writer);
            return RunState::fresh(path, header);
        }

        let mut units = HashMap::new();
        let mut unit_order = Vec::new();
        let mut done = BTreeSet::new();
        for frame in &outcome.frames[1..] {
            match frame.get("kind").and_then(JsonValue::as_str) {
                Some("unit") => {
                    let Some(unit) = parse_unit(frame) else {
                        eprintln!("[resume] skipping unreadable unit frame (will recompute)");
                        continue;
                    };
                    let (key, unit) = unit;
                    if !units.contains_key(&key) {
                        unit_order.push(key.clone());
                    }
                    units.insert(key, unit);
                }
                Some("done") => {
                    if let Some(name) = frame.get("experiment").and_then(JsonValue::as_str) {
                        done.insert(name.to_owned());
                    }
                }
                _ => eprintln!("[resume] ignoring unknown frame kind"),
            }
        }
        let replayable = units.len();
        eprintln!(
            "[resume] checkpoint {}: {} unit(s) replayable, {} experiment(s) complete",
            path.display(),
            replayable,
            done.len()
        );
        ola_core::obs::registry().counter("ola.resilience.units_replayable").add(replayable as u64);
        Arc::new(RunState {
            inner: Mutex::new(Inner { writer: Some(writer), units, unit_order, done }),
        })
    }

    fn from_writer(writer: CheckpointWriter) -> Arc<RunState> {
        Arc::new(RunState {
            inner: Mutex::new(Inner {
                writer: Some(writer),
                units: HashMap::new(),
                unit_order: Vec::new(),
                done: BTreeSet::new(),
            }),
        })
    }

    /// Whether `experiment` already completed (its `done` frame landed).
    #[must_use]
    pub fn is_done(&self, experiment: &str) -> bool {
        lock(&self.inner).done.contains(experiment)
    }

    /// Rebuilds a completed experiment's tables and noted outputs from the
    /// checkpoint, in original production order.
    #[must_use]
    pub fn replay_done(&self, experiment: &str) -> ReplayUnit {
        let inner = lock(&self.inner);
        let mut all = ReplayUnit::default();
        for key in &inner.unit_order {
            if key.0 == experiment {
                let unit = &inner.units[key];
                all.tables.extend(unit.tables.iter().cloned());
                all.noted.extend(unit.noted.iter().cloned());
            }
        }
        all
    }

    /// Appends the `done` frame for `experiment`.
    pub fn mark_done(&self, experiment: &str) {
        let mut inner = lock(&self.inner);
        let frame = JsonValue::Object(vec![
            ("kind".into(), JsonValue::str("done")),
            ("experiment".into(), JsonValue::str(experiment)),
        ]);
        append_or_disable(&mut inner, &frame);
        inner.done.insert(experiment.to_owned());
    }

    fn replay(&self, key: &(String, String)) -> Option<ReplayUnit> {
        lock(&self.inner).units.get(key).cloned()
    }

    fn record(&self, key: (String, String), unit: ReplayUnit) {
        let mut inner = lock(&self.inner);
        let frame = unit_frame(&key, &unit);
        append_or_disable(&mut inner, &frame);
        if !inner.units.contains_key(&key) {
            inner.unit_order.push(key.clone());
        }
        inner.units.insert(key, unit);
    }
}

fn append_or_disable(inner: &mut Inner, frame: &JsonValue) {
    let result: Result<(), ResilienceError> = match inner.writer.as_mut() {
        Some(w) => w.append(frame),
        None => Ok(()),
    };
    if let Err(e) = result {
        eprintln!("[resume] checkpoint append failed ({e}); checkpointing disabled for this run");
        ola_core::obs::registry().counter("ola.resilience.checkpoint_disabled").inc();
        inner.writer = None;
    }
}

fn unit_frame(key: &(String, String), unit: &ReplayUnit) -> JsonValue {
    JsonValue::Object(vec![
        ("kind".into(), JsonValue::str("unit")),
        ("experiment".into(), JsonValue::str(key.0.clone())),
        ("unit".into(), JsonValue::str(key.1.clone())),
        ("tables".into(), JsonValue::Array(unit.tables.iter().map(Table::to_json).collect())),
        (
            "noted".into(),
            JsonValue::Array(
                unit.noted
                    .iter()
                    .map(|(label, path)| {
                        JsonValue::Array(vec![
                            JsonValue::str(label.clone()),
                            JsonValue::str(path.display().to_string()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn parse_unit(frame: &JsonValue) -> Option<((String, String), ReplayUnit)> {
    let experiment = frame.get("experiment")?.as_str()?.to_owned();
    let unit = frame.get("unit")?.as_str()?.to_owned();
    let tables: Vec<Table> =
        frame.get("tables")?.as_array()?.iter().map(Table::from_json).collect::<Option<_>>()?;
    let noted: Vec<(String, PathBuf)> = frame
        .get("noted")?
        .as_array()?
        .iter()
        .map(|pair| {
            let pair = pair.as_array()?;
            Some((pair.first()?.as_str()?.to_owned(), PathBuf::from(pair.get(1)?.as_str()?)))
        })
        .collect::<Option<_>>()?;
    Some(((experiment, unit), ReplayUnit { tables, noted }))
}

/// Per-experiment handle the driver passes into every experiment: names
/// the experiment and carries the shared checkpoint state.
pub struct ExperimentCtx {
    experiment: String,
    state: Arc<RunState>,
}

impl ExperimentCtx {
    /// A context for `experiment` backed by `state`.
    #[must_use]
    pub fn new(experiment: impl Into<String>, state: Arc<RunState>) -> ExperimentCtx {
        ExperimentCtx { experiment: experiment.into(), state }
    }

    /// A context with no checkpointing at all — for tests and library
    /// callers that invoke experiments directly.
    #[must_use]
    pub fn ephemeral(experiment: impl Into<String>) -> ExperimentCtx {
        ExperimentCtx {
            experiment: experiment.into(),
            state: Arc::new(RunState {
                inner: Mutex::new(Inner {
                    writer: None,
                    units: HashMap::new(),
                    unit_order: Vec::new(),
                    done: BTreeSet::new(),
                }),
            }),
        }
    }

    /// The experiment this context belongs to.
    #[must_use]
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Runs (or replays) one work unit. If the checkpoint already holds a
    /// frame for `(experiment, label)`, its tables are returned without
    /// computing and its noted outputs are re-registered; otherwise `f`
    /// runs, and on success the unit is appended to the checkpoint.
    ///
    /// Output files `f` registers via [`ola_core::obs::note_output`] are
    /// attributed to this unit and recorded in its frame, so replays keep
    /// the run manifest's output hashes complete.
    ///
    /// # Errors
    ///
    /// Whatever `f` returns; replays never fail.
    pub fn unit<F>(&self, label: &str, f: F) -> Result<Vec<Table>, String>
    where
        F: FnOnce() -> Result<Vec<Table>, String>,
    {
        let key = (self.experiment.clone(), label.to_owned());
        if let Some(unit) = self.state.replay(&key) {
            ola_core::obs::registry().counter("ola.resilience.units_replayed").inc();
            eprintln!("  [{}] unit {label}: replayed from checkpoint", self.experiment);
            for (l, p) in &unit.noted {
                ola_core::obs::note_output(l.clone(), p);
            }
            return Ok(unit.tables);
        }
        ola_core::resilience::check_cancelled();
        // Attribute note_output calls to this unit: experiments run one at
        // a time, so the pending queue belongs to the current experiment's
        // earlier units — hold it aside and restore the order afterwards.
        let earlier = ola_core::obs::take_noted_outputs();
        let result = f();
        let noted = ola_core::obs::take_noted_outputs();
        for (l, p) in earlier.into_iter().chain(noted.iter().cloned()) {
            ola_core::obs::note_output(l, p);
        }
        let tables = result?;
        ola_core::obs::registry().counter("ola.resilience.units_computed").inc();
        self.state.record(key, ReplayUnit { tables: tables.clone(), noted });
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ola_resume_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.ckpt", std::process::id()))
    }

    fn header() -> RunHeader {
        RunHeader { scale: "quick".into(), backend: "auto".into(), all: false }
    }

    fn table(tag: &str) -> Table {
        let mut t = Table::new(format!("T {tag}"), &["a", "b"]);
        t.push_row(vec![tag.to_owned(), "1".into()]);
        t
    }

    #[test]
    fn units_compute_once_then_replay() {
        let path = tmp("compute_once");
        let state = RunState::fresh(&path, &header());
        let ctx = ExperimentCtx::new("demo", state.clone());
        let mut runs = 0;
        let first = ctx
            .unit("u1", || {
                runs += 1;
                Ok(vec![table("u1")])
            })
            .unwrap();
        state.mark_done("demo");
        drop(state);

        // Same process resume: a fresh state from the same file replays.
        let resumed = RunState::resume(&path, &header());
        assert!(resumed.is_done("demo"));
        let ctx2 = ExperimentCtx::new("demo", resumed.clone());
        let replayed = ctx2
            .unit("u1", || {
                runs += 1;
                Err("must not recompute".into())
            })
            .unwrap();
        assert_eq!(runs, 1);
        assert_eq!(replayed[0].rows, first[0].rows);
        let done = resumed.replay_done("demo");
        assert_eq!(done.tables.len(), 1);
        assert_eq!(done.tables[0].title, "T u1");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_mismatch_discards_the_checkpoint() {
        let path = tmp("header_mismatch");
        let state = RunState::fresh(&path, &header());
        ExperimentCtx::new("demo", state.clone()).unit("u1", || Ok(vec![table("x")])).unwrap();
        state.mark_done("demo");
        drop(state);

        let full = RunHeader { scale: "full".into(), ..header() };
        let resumed = RunState::resume(&path, &full);
        assert!(!resumed.is_done("demo"), "mismatched runs must not splice");
        let ctx = ExperimentCtx::new("demo", resumed);
        let mut recomputed = false;
        ctx.unit("u1", || {
            recomputed = true;
            Ok(vec![table("y")])
        })
        .unwrap();
        assert!(recomputed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn noted_outputs_are_recorded_in_the_unit_frame() {
        // Asserted through the checkpoint frame rather than the global
        // noted-output queue: the queue is process-global and other tests
        // in this binary drain it concurrently.
        let path = tmp("noted");
        let state = RunState::fresh(&path, &header());
        ExperimentCtx::new("demo", state.clone())
            .unit("u1", || {
                ola_core::obs::note_output("results/x.pgm", "/tmp/x.pgm");
                Ok(vec![table("u1")])
            })
            .unwrap();
        state.mark_done("demo");
        drop(state);

        let resumed = RunState::resume(&path, &header());
        let done = resumed.replay_done("demo");
        assert_eq!(done.noted, vec![("results/x.pgm".to_owned(), PathBuf::from("/tmp/x.pgm"))]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ephemeral_contexts_memoize_but_write_nothing() {
        let ctx = ExperimentCtx::ephemeral("demo");
        let mut runs = 0;
        for _ in 0..2 {
            ctx.unit("u1", || {
                runs += 1;
                Ok(vec![table("u1")])
            })
            .unwrap();
        }
        assert_eq!(runs, 1, "in-memory memoization still applies");
    }
}
