//! Acceptance benchmark for the fused online MAC subsystem: writes
//! `BENCH_dsp.json` and gates on the subsystem's two headline claims.
//!
//! The pinned workload is the 16-tap FIR bank at 16 input digits — the
//! largest kernel instance `repro dsp` sweeps — compiled through the
//! online elaborator in both fusion flavours:
//!
//! * **fused** — one [`Op::Mac`](ola_synth::Op) node lowered to
//!   digit-serial partial products folded into a single redundant
//!   carry-save accumulation (no per-term collapse);
//! * **unfused** — sixteen online multipliers feeding a balanced adder
//!   tree.
//!
//! Both run the same seeded overclocking error sweep on both simulation
//! engines. The gate requires:
//!
//! 1. the event and batch curves to be **bit-identical** per flavour;
//! 2. the batch engine to beat the event engine by at least 1.5x of
//!    wall time on the unfused datapath (the long-running sweep, so the
//!    ratio is well conditioned);
//! 3. the fused flavour to **dominate** the unfused one on settled
//!    latency (STA critical path) or transition-count activity (the
//!    batch engine's lane-transition counter).
//!
//! ```sh
//! cargo run --release -p ola-bench --bin dsp_gate
//! ```
//!
//! Exit code 0 when all three hold, 1 otherwise.

use ola_core::obs::json::JsonValue;
use ola_core::SimBackend;
use ola_netlist::{analyze, FpgaDelay};
use ola_synth::{
    elaborate, fir_bank, optimize, ts_grid, variant_error_curve, AdderStructure, ElabOptions,
    InputFmt, MacFusion, Style, SynthesizedDatapath,
};
use std::time::Instant;

const TAPS: usize = 16;
const WIDTH: usize = 16;
const SAMPLES: usize = 48;
const TS_POINTS: usize = 8;
const SEED: u64 = 0xD59_6A7E;

struct Flavour {
    name: &'static str,
    critical: u64,
    transitions: u64,
    event_secs: f64,
    batch_secs: f64,
    identical: bool,
}

fn compile(fusion: MacFusion) -> SynthesizedDatapath {
    let dfg = fir_bank(TAPS, fusion, InputFmt { msd_pos: 1, digits: WIDTH });
    elaborate(&optimize(&dfg, AdderStructure::BalancedTree), &ElabOptions::new(Style::Online))
}

fn measure(
    name: &'static str,
    dp: &SynthesizedDatapath,
    grid: &[u64],
    delay: &FpgaDelay,
) -> Flavour {
    let critical = analyze(&dp.netlist, delay).critical_path();
    // Small warm pass so neither engine pays first-touch allocator costs
    // (a full-size warm pass would double the slowest arm's runtime).
    let _ = variant_error_curve(dp, delay, &grid[..2.min(grid.len())], 8, SEED, SimBackend::Event);
    let _ = variant_error_curve(dp, delay, &grid[..2.min(grid.len())], 8, SEED, SimBackend::Batch);
    let start = Instant::now();
    let (ev_curve, _) = variant_error_curve(dp, delay, grid, SAMPLES, SEED, SimBackend::Event);
    let event_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let (ba_curve, ba) = variant_error_curve(dp, delay, grid, SAMPLES, SEED, SimBackend::Batch);
    let batch_secs = start.elapsed().as_secs_f64();
    let identical = ev_curve == ba_curve;
    eprintln!(
        "  [{name}] critical={critical} event={event_secs:.3}s batch={batch_secs:.3}s \
         transitions={} identical={identical}",
        ba.lane_transitions
    );
    Flavour { name, critical, transitions: ba.lane_transitions, event_secs, batch_secs, identical }
}

fn main() {
    let delay = FpgaDelay::default();
    eprintln!("dsp_gate: {TAPS}-tap FIR, {WIDTH} digits, {SAMPLES} samples x {TS_POINTS} Ts");
    let fused_dp = compile(MacFusion::Fused);
    let unfused_dp = compile(MacFusion::Unfused);
    // Shared grid spanning the slower flavour, as in `repro dsp`.
    let span = analyze(&fused_dp.netlist, &delay)
        .critical_path()
        .max(analyze(&unfused_dp.netlist, &delay).critical_path())
        .max(1);
    let grid = ts_grid(span, TS_POINTS);

    let fused = measure("fused", &fused_dp, &grid, &delay);
    let unfused = measure("unfused", &unfused_dp, &grid, &delay);

    let identical = fused.identical && unfused.identical;
    // The speedup gate reads the *unfused* flavour: its sweep runs long
    // enough (tens of seconds) that the event/batch ratio is well
    // conditioned; the fused sweep finishes in milliseconds and its
    // ratio would be timer noise.
    let speedup = unfused.event_secs / unfused.batch_secs.max(f64::EPSILON);
    let dominates = fused.critical < unfused.critical || fused.transitions < unfused.transitions;

    let mut fields = vec![
        ("bench".into(), JsonValue::str("fused online MAC vs tree-of-multiplies")),
        ("workload".into(), JsonValue::str("16-tap FIR width 16, online elaboration")),
        ("samples".into(), JsonValue::U64(SAMPLES as u64)),
        ("ts_points".into(), JsonValue::U64(grid.len() as u64)),
        ("seed".into(), JsonValue::U64(SEED)),
    ];
    for f in [&fused, &unfused] {
        fields.push((format!("{}_critical_path", f.name), JsonValue::U64(f.critical)));
        fields.push((format!("{}_transitions", f.name), JsonValue::U64(f.transitions)));
        fields.push((format!("{}_event_secs", f.name), JsonValue::F64(f.event_secs)));
        fields.push((format!("{}_batch_secs", f.name), JsonValue::F64(f.batch_secs)));
    }
    let latency_delta = unfused.critical as f64 / fused.critical.max(1) as f64;
    let activity_delta = unfused.transitions as f64 / fused.transitions.max(1) as f64;
    fields.push(("speedup_batch_vs_event".into(), JsonValue::F64(speedup)));
    fields.push(("latency_unfused_over_fused".into(), JsonValue::F64(latency_delta)));
    fields.push(("activity_unfused_over_fused".into(), JsonValue::F64(activity_delta)));
    fields.push(("bit_identical".into(), JsonValue::Bool(identical)));
    fields.push(("fused_dominates".into(), JsonValue::Bool(dominates)));

    let json = JsonValue::Object(fields);
    let path = "BENCH_dsp.json";
    if let Err(e) = std::fs::write(path, format!("{}\n", json.render())) {
        eprintln!("  write {path} failed: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "  wrote {path}: batch speedup {speedup:.1}x, latency delta {latency_delta:.2}x, \
         activity delta {activity_delta:.2}x"
    );

    if !identical {
        eprintln!("FAIL: event and batch curves disagree");
        std::process::exit(1);
    }
    if speedup < 1.5 {
        eprintln!("FAIL: batch engine is only {speedup:.2}x the event engine (need >= 1.5x)");
        std::process::exit(1);
    }
    if !dominates {
        eprintln!(
            "FAIL: fused MAC dominates on neither latency ({} vs {}) nor activity ({} vs {})",
            fused.critical, unfused.critical, fused.transitions, unfused.transitions
        );
        std::process::exit(1);
    }
}
