//! Chaos harness for the resilient execution engine.
//!
//! Spawns the `repro` binary (a sibling of this executable) in scratch
//! working directories, injects faults through the `OLA_CHAOS_*`
//! environment hooks (see [`ola_core::resilience::chaos`]) plus one
//! manual on-disk corruption, and asserts the recovery invariants the
//! checkpoint/resume design promises:
//!
//! 1. **abort/resume** — a process killed at a clean frame boundary
//!    (exit 86) resumes with `--resume` and produces CSVs *bit-identical*
//!    to an uninterrupted run;
//! 2. **torn frame** — a process killed mid-append leaves half a frame;
//!    resume quarantines the damaged tail (`repro.ckpt.quarantined`) and
//!    still completes bit-identically;
//! 3. **tamper** — a flipped byte inside a committed frame fails its
//!    SHA-256 check; the damaged suffix is quarantined, never replayed;
//! 4. **degradation** — a forced batch-backend failure degrades to the
//!    event backend: the run completes with exit 4 and the CSVs are
//!    *still* bit-identical (the engines agree bit-for-bit);
//! 5. **panic** — an injected panic inside one experiment yields partial
//!    results (exit 1); `--resume` completes the run bit-identically.
//! 6. **serve panic** — a worker panic mid-request (`OLA_CHAOS_SERVE_PANIC`)
//!    against a live in-process `ola-serve` answers that request with 500
//!    and the server keeps serving;
//! 7. **cache rot** — a tampered cache entry (`OLA_CHAOS_CACHE_TAMPER`
//!    flips a stored byte) fails its SHA-256 re-check on read, is
//!    recomputed, and the served *result* matches the pre-rot answer —
//!    rot is never served.
//!
//! Exit 0 when every scenario holds, 1 otherwise. CI runs this after the
//! test suite; it needs no network (the serve scenarios bind loopback)
//! and about as long as `repro --quick sta` five times.

use ola_serve::http::{self, HttpLimits, Request};
use ola_serve::{Server, ServerConfig};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A completed `repro` invocation: exit code plus every `results/*.csv`.
struct RunResult {
    code: i32,
    csvs: BTreeMap<String, Vec<u8>>,
}

fn repro_bin() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let repro = me.with_file_name(if cfg!(windows) { "repro.exe" } else { "repro" });
    assert!(repro.exists(), "repro binary not found next to chaos_check at {}", repro.display());
    repro
}

/// Runs `repro` with `args` in `dir`, with the given extra environment,
/// inheriting stdout/stderr (the transcript is the debugging artifact).
fn run_repro(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> RunResult {
    std::fs::create_dir_all(dir).expect("scratch dir");
    let mut cmd = Command::new(repro_bin());
    cmd.args(args).current_dir(dir);
    // Chaos hooks must never leak between scenarios.
    for var in [
        ola_core::resilience::chaos::BATCH_FAIL,
        ola_core::resilience::chaos::ABORT_AFTER_FRAMES,
        ola_core::resilience::chaos::TORN_FRAME,
        ola_core::resilience::chaos::PANIC,
        ola_core::resilience::chaos::SERVE_PANIC,
        ola_core::resilience::chaos::CACHE_TAMPER,
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in env {
        cmd.env(k, v);
    }
    let status = cmd.status().expect("spawn repro");
    RunResult { code: status.code().unwrap_or(-1), csvs: read_csvs(dir) }
}

fn read_csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let results = dir.join("results");
    let Ok(entries) = std::fs::read_dir(&results) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "csv") {
            let name = path
                .file_name()
                .expect("read_dir entries carry file names")
                .to_string_lossy()
                .into_owned();
            out.insert(name, std::fs::read(&path).expect("read csv"));
        }
    }
    out
}

fn ckpt(dir: &Path) -> PathBuf {
    dir.join("results").join("checkpoints").join("repro.ckpt")
}

/// Compares two CSV sets byte-for-byte, reporting every difference.
fn identical(
    label: &str,
    got: &BTreeMap<String, Vec<u8>>,
    want: &BTreeMap<String, Vec<u8>>,
) -> bool {
    let mut ok = true;
    for (name, bytes) in want {
        match got.get(name) {
            None => {
                eprintln!("  [{label}] missing CSV {name}");
                ok = false;
            }
            Some(b) if b != bytes => {
                eprintln!("  [{label}] CSV {name} differs ({} vs {} bytes)", b.len(), bytes.len());
                ok = false;
            }
            Some(_) => {}
        }
    }
    for name in got.keys() {
        if !want.contains_key(name) {
            eprintln!("  [{label}] unexpected extra CSV {name}");
            ok = false;
        }
    }
    ok
}

/// The analysis query both serve scenarios use (small enough to compute
/// in milliseconds, real enough to exercise the full pipeline).
const SERVE_QUERY: &str =
    r#"{"kind":"sweep","expr":"y = a * 0.5 + b","width":3,"ts_points":3,"samples":8}"#;

/// POSTs one query to the in-process server over loopback and returns the
/// response (`Connection: close`, one exchange per connection).
fn post_query(addr: std::net::SocketAddr, query: &str) -> ola_serve::Response {
    let stream = TcpStream::connect(addr).expect("connect to chaos serve");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    http::write_request(
        &mut writer,
        &Request {
            method: "POST".into(),
            path: "/query".into(),
            headers: vec![("Connection".into(), "close".into())],
            body: query.as_bytes().to_vec(),
        },
    )
    .expect("send query");
    http::read_response(&mut reader, &HttpLimits::default())
        .expect("read response")
        .expect("one response")
}

/// The rendered `result` portion of a serve response body (the manifest
/// portion legitimately differs between fills — its timestamp is frozen
/// per fill, not per query).
fn result_portion(body: &[u8]) -> Option<String> {
    let doc = ola_core::obs::json::parse(std::str::from_utf8(body).ok()?).ok()?;
    Some(doc.get("result")?.render())
}

struct Harness {
    root: PathBuf,
    failures: Vec<String>,
}

impl Harness {
    fn check(&mut self, scenario: &str, ok: bool) {
        if ok {
            eprintln!("[chaos] {scenario}: PASS");
        } else {
            eprintln!("[chaos] {scenario}: FAIL");
            self.failures.push(scenario.to_owned());
        }
    }

    fn dir(&self, scenario: &str) -> PathBuf {
        self.root.join(scenario)
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let root = std::env::temp_dir().join(format!("ola_chaos_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut h = Harness { root, failures: Vec::new() };

    // Ground truth: one uninterrupted quick STA run.
    eprintln!("[chaos] baseline: repro --quick sta");
    let baseline = run_repro(&h.dir("baseline"), &["--quick", "sta"], &[]);
    h.check("baseline exit 0", baseline.code == 0);
    h.check("baseline produced CSVs", !baseline.csvs.is_empty());

    // 1. Abort at a clean frame boundary, then resume.
    // Frames for `--quick sta`: header, unit n8, unit n16, done — abort
    // after the second (the first completed unit).
    {
        let dir = h.dir("abort");
        let killed = run_repro(
            &dir,
            &["--quick", "sta"],
            &[(ola_core::resilience::chaos::ABORT_AFTER_FRAMES, "2")],
        );
        h.check(
            "abort: chaos exit 86",
            killed.code == ola_core::resilience::checkpoint::CHAOS_EXIT,
        );
        let resumed = run_repro(&dir, &["--quick", "sta", "--resume"], &[]);
        h.check("abort: resume exit 0", resumed.code == 0);
        let ok = identical("abort", &resumed.csvs, &baseline.csvs);
        h.check("abort: resumed CSVs bit-identical to baseline", ok);
    }

    // 2. Kill mid-append: half a frame on disk. Resume must quarantine
    // the torn tail and still finish bit-identically.
    {
        let dir = h.dir("torn");
        let killed =
            run_repro(&dir, &["--quick", "sta"], &[(ola_core::resilience::chaos::TORN_FRAME, "2")]);
        h.check("torn: chaos exit 86", killed.code == ola_core::resilience::checkpoint::CHAOS_EXIT);
        let resumed = run_repro(&dir, &["--quick", "sta", "--resume"], &[]);
        h.check("torn: resume exit 0", resumed.code == 0);
        let quarantined = ola_core::resilience::checkpoint::quarantine_path(&ckpt(&dir)).exists();
        h.check("torn: damaged tail quarantined", quarantined);
        let ok = identical("torn", &resumed.csvs, &baseline.csvs);
        h.check("torn: resumed CSVs bit-identical to baseline", ok);
    }

    // 3. Bit-rot: flip one byte inside a committed frame's payload. The
    // frame digest must catch it and resume must not replay the damage.
    {
        let dir = h.dir("tamper");
        let first = run_repro(&dir, &["--quick", "sta"], &[]);
        h.check("tamper: setup run exit 0", first.code == 0);
        let path = ckpt(&dir);
        let mut bytes = std::fs::read(&path).expect("checkpoint exists");
        // Flip a byte well inside the *second* frame's payload region so
        // the header frame stays valid and the run parameters still match.
        let first_len = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice")) as usize;
        let second_payload = 40 + first_len + 40;
        assert!(second_payload + 8 < bytes.len(), "checkpoint long enough to tamper");
        bytes[second_payload + 8] ^= 0x40;
        std::fs::write(&path, &bytes).expect("tamper write");
        let resumed = run_repro(&dir, &["--quick", "sta", "--resume"], &[]);
        h.check("tamper: resume exit 0", resumed.code == 0);
        h.check(
            "tamper: damaged suffix quarantined",
            ola_core::resilience::checkpoint::quarantine_path(&path).exists(),
        );
        let ok = identical("tamper", &resumed.csvs, &baseline.csvs);
        h.check("tamper: recomputed CSVs bit-identical to baseline", ok);
    }

    // 4. Forced batch-backend failure: the run must degrade to the event
    // engine (exit 4, not 1) and — because the engines are bit-identical —
    // emit exactly the CSVs of an unforced run.
    {
        let clean = run_repro(&h.dir("degrade_clean"), &["--quick", "faults"], &[]);
        h.check("degrade: clean faults run exit 0", clean.code == 0);
        let forced = run_repro(
            &h.dir("degrade_forced"),
            &["--quick", "faults", "--backend", "batch"],
            &[(ola_core::resilience::chaos::BATCH_FAIL, "1")],
        );
        h.check("degrade: forced batch failure exits 4 (degraded), not 1", forced.code == 4);
        let ok = identical("degrade", &forced.csvs, &clean.csvs);
        h.check("degrade: degraded CSVs bit-identical to clean run", ok);
    }

    // 5. Injected panic inside one experiment: partial results (exit 1),
    // the sibling experiment still completes, and resume finishes the job.
    {
        let dir = h.dir("panic");
        let crashed = run_repro(
            &dir,
            &["--quick", "sta", "lint"],
            &[(ola_core::resilience::chaos::PANIC, "sta")],
        );
        h.check("panic: injected panic yields partial results (exit 1)", crashed.code == 1);
        h.check("panic: sibling experiment still wrote CSVs", !crashed.csvs.is_empty());
        let resumed = run_repro(&dir, &["--quick", "sta", "lint", "--resume"], &[]);
        h.check("panic: resume exit 0", resumed.code == 0);
        // Only the sta CSVs have a baseline; lint's CSV came from the
        // crashed run's own (successful) lint pass.
        let sta_ok = baseline
            .csvs
            .iter()
            .all(|(name, bytes)| resumed.csvs.get(name).is_some_and(|b| b == bytes));
        h.check("panic: resumed sta CSVs bit-identical to baseline", sta_ok);
    }

    // 6. Worker panic mid-request against a live server: the poisoned
    // request answers 500, the worker survives, and the very next request
    // on the same pool answers 200.
    {
        let server = Server::start(ServerConfig::default()).expect("bind chaos serve");
        let addr = server.addr();
        std::env::set_var(ola_core::resilience::chaos::SERVE_PANIC, "1");
        let crashed = post_query(addr, SERVE_QUERY);
        std::env::remove_var(ola_core::resilience::chaos::SERVE_PANIC);
        h.check("serve panic: poisoned request answers 500", crashed.status == 500);
        let after = post_query(addr, SERVE_QUERY);
        h.check("serve panic: server stays up and answers 200", after.status == 200);
        server.drain_and_join();
    }

    // 7. Cache rot: the tamper hook flips a byte inside the *stored* cache
    // entry at fill time. The integrity re-hash on the next read must
    // reject the entry (never serve rot) and recompute; the recomputed
    // result matches the clean answer bit-for-bit (only the embedded
    // manifest timestamp may differ between fills).
    {
        let server = Server::start(ServerConfig::default()).expect("bind chaos serve");
        let addr = server.addr();
        std::env::set_var(ola_core::resilience::chaos::CACHE_TAMPER, "1");
        let clean = post_query(addr, SERVE_QUERY);
        h.check("cache rot: tampered fill still answers the caller clean", clean.status == 200);
        let reread = post_query(addr, SERVE_QUERY);
        std::env::remove_var(ola_core::resilience::chaos::CACHE_TAMPER);
        h.check("cache rot: re-read answers 200", reread.status == 200);
        let recomputed = http::header(&reread.headers, "x-ola-cache") == Some("miss");
        h.check("cache rot: rotten entry rejected and recomputed, not served", recomputed);
        h.check(
            "cache rot: recomputed result identical to the clean answer",
            result_portion(&clean.body) == result_portion(&reread.body)
                && result_portion(&clean.body).is_some(),
        );
        let tamper_rejected = ola_core::obs::registry()
            .snapshot()
            .counters
            .get("ola.cache.tamper_rejected")
            .copied()
            .unwrap_or(0);
        h.check("cache rot: integrity check counted the rejection", tamper_rejected >= 1);
        server.drain_and_join();
    }

    if h.failures.is_empty() {
        eprintln!("[chaos] all scenarios passed");
        let _ = std::fs::remove_dir_all(&h.root);
    } else {
        eprintln!("[chaos] {} scenario check(s) FAILED:", h.failures.len());
        for f in &h.failures {
            eprintln!("  {f}");
        }
        eprintln!("[chaos] scratch dirs kept at {}", h.root.display());
        std::process::exit(1);
    }
}
