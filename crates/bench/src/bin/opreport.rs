//! Prints a synthesis report — gate counts, LUT estimates, rated periods,
//! and observed settling — for every operator in the workspace.
//!
//! ```sh
//! cargo run --release -p ola-bench --bin opreport
//! ```

use ola_arith::online::Selection;
use ola_arith::synth::{
    array_multiplier, carry_select_adder, online_adder, online_multiplier, ripple_carry_adder,
};
use ola_bench::report::Table;
use ola_core::{montecarlo, InputModel};
use ola_netlist::{analyze, area, FpgaDelay, JitteredDelay, Netlist};

fn main() {
    let delay = JitteredDelay::new(FpgaDelay::default(), 15, 2014);
    let mut t = Table::new(
        "Operator synthesis report",
        &["operator", "gates", "LUT4", "slices", "rated period", "depth-free?"],
    );
    let mut row = |name: String, nl: &Netlist| {
        let ar = area::estimate(nl, 4);
        let rep = analyze(nl, &delay);
        t.push_row(vec![
            name,
            nl.logic_gate_count().to_string(),
            ar.luts.to_string(),
            ar.slices.to_string(),
            rep.critical_path().to_string(),
            String::new(),
        ]);
    };

    for n in [8usize, 16, 32] {
        row(format!("online adder N={n}"), &online_adder(n).netlist);
    }
    for n in [8usize, 12, 16] {
        row(format!("online multiplier N={n}"), &online_multiplier(n, 3).netlist);
    }
    for w in [9usize, 13, 17] {
        row(format!("array multiplier W={w}"), &array_multiplier(w).netlist);
    }
    for w in [16usize, 32] {
        row(format!("ripple adder W={w}"), &ripple_carry_adder(w).netlist);
        row(format!("carry-select adder W={w}"), &carry_select_adder(w, 4).netlist);
    }
    println!("{}", t.render());

    println!("observed settling vs structural stages (stage-wave model):");
    for n in [8usize, 12, 16, 32] {
        let max = montecarlo::max_observed_settling(
            n,
            Selection::default(),
            InputModel::UniformDigits,
            2000,
            1,
        );
        println!(
            "  N={n:>2}: worst observed {max:>2} waves of {} structural (paper bound {})",
            n + 3,
            ola_core::timing::chain_worst_case_delay(n, 1)
        );
    }
}
