//! Regenerates the paper's tables and figures. See `ola-bench` crate docs.

use ola_bench::experiments::{self, CaseStudyContext, Scale};
use ola_bench::report::Table;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };
    let out_dir = Path::new("results");

    let mut tables: Vec<Table> = Vec::new();
    let wants = |k: &str| what.iter().any(|w| *w == "all" || *w == k);
    let ctx_needed = wants("fig6") || wants("fig7") || wants("table1")
        || wants("table2") || wants("table3");
    let ctx = ctx_needed.then(|| CaseStudyContext::new(scale));

    let mut timed = |name: &str, f: &mut dyn FnMut() -> Vec<Table>| {
        let start = Instant::now();
        let mut t = f();
        eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
        tables.append(&mut t);
    };

    if wants("fig4") {
        timed("fig4", &mut || experiments::fig4(scale));
    }
    if wants("fig5") {
        timed("fig5", &mut || experiments::fig5(scale));
    }
    if let Some(ctx) = &ctx {
        if wants("fig6") {
            timed("fig6", &mut || vec![experiments::fig6(ctx)]);
        }
        if wants("fig7") {
            timed("fig7", &mut || vec![experiments::fig7(ctx, out_dir)]);
        }
        if wants("table1") {
            timed("table1", &mut || vec![experiments::table1(ctx)]);
        }
        if wants("table2") {
            timed("table2", &mut || vec![experiments::table2(ctx)]);
        }
        if wants("table3") {
            timed("table3", &mut || vec![experiments::table3(ctx)]);
        }
    }
    if wants("table4") {
        timed("table4", &mut || vec![experiments::table4()]);
    }

    for t in &tables {
        println!("{}", t.render());
        match t.write_csv(out_dir) {
            Ok(p) => eprintln!("  csv: {}", p.display()),
            Err(e) => eprintln!("  csv write failed: {e}"),
        }
    }
    if tables.is_empty() {
        eprintln!(
            "usage: repro [fig4|fig5|fig6|fig7|table1|table2|table3|table4|all] [--quick]"
        );
        std::process::exit(2);
    }
}
