//! Regenerates the paper's tables and figures. See `ola-bench` crate docs.
//!
//! Every experiment runs in its own worker thread under `catch_unwind` and
//! a wall-clock budget. The budget is enforced *cooperatively*: the worker
//! carries a [`CancelToken`] with the budget as its deadline, every
//! simulation inner loop polls it, and a runaway experiment is cancelled —
//! it stops computing, its completed work units stay checkpointed, and its
//! cores come back — instead of being abandoned on a detached thread.
//!
//! Runs are crash-safe. Completed work units land in an append-only,
//! SHA-256-framed checkpoint at `results/checkpoints/repro.ckpt`;
//! `repro --resume` replays the valid frames and recomputes only the
//! remainder, producing bit-identical CSVs (the `chaos_check` binary
//! proves this under injected crashes, torn frames, and forced backend
//! failures — see `ola_core::resilience`).
//!
//! The exit code reflects completeness — `0` when every requested
//! experiment (and every CSV write) succeeded, `1` for partial results,
//! `2` for usage errors, `3` when the environment is unusable (the
//! `results/` output directory cannot be created), `4` when everything
//! completed but a simulation backend degraded along the way (results are
//! still exact — the backends are bit-identical — but the configuration
//! asked for an engine that failed), `86` when a chaos hook aborted the
//! process on purpose. `--list` enumerates the experiments and exit
//! codes; `--backend {auto,event,batch}` selects the simulation engine
//! for the gate-level workloads (results are bit-identical across
//! backends — batch-backed experiments additionally self-verify with an
//! event-driven spot-check and report their throughput counters).
//!
//! Each experiment writes its CSVs as soon as it finishes and then emits a
//! run manifest at `results/manifests/<experiment>.json` — git revision,
//! master seeds, backend, `OLA_THREADS` resolution, tracing spans, the
//! metric-registry delta the experiment produced, and a SHA-256 of every
//! emitted CSV/PGM. `--trace {off,pretty,json}` overrides `OLA_TRACE` for
//! live span output on stderr.

use ola_bench::experiments::{self, CaseStudyContext, Scale};
use ola_bench::report::Table;
use ola_bench::resume::{ExperimentCtx, RunHeader, RunState};
use ola_core::obs::{self, OutputRecord, RunManifest, TraceMode};
use ola_core::resilience::{chaos, is_cancel_payload, DEGRADED_PREFIX};
use ola_core::SimBackend;
use ola_netlist::CancelToken;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `(name, one-line description)` for every experiment, in run order.
const EXPERIMENTS: [(&str, &str); 14] = [
    ("sta", "static timing: critical paths, per-digit slack + certification (no simulation)"),
    ("lint", "netlist lint over every generated operator family (+ seeded-loop self-check)"),
    ("equiv", "formal verification: pass rewrites proved equivalent, online=conventional at settled Ts, absint error bounds vs measured"),
    ("synth", "datapath-synthesis Pareto sweep: style x allocation x width of a 1x3 kernel"),
    ("dsp", "fused vs unfused online MACs: FIR/conv2d/mat-vec area, latency, error + activity on both engines"),
    ("fig4", "overclocking error: model vs Monte-Carlo vs gate-level netlist (N=8,12)"),
    ("fig5", "per-chain-delay profile, analytic model next to Monte-Carlo (N=8..32)"),
    ("fig6", "image-filter MRE vs normalized frequency (case study)"),
    ("fig7", "overclocked filter output images + SNR table (case study)"),
    ("table1", "relative MRE reduction with online arithmetic"),
    ("table2", "SNR improvement (dB) with online arithmetic"),
    ("table3", "frequency headroom under error budgets"),
    ("table4", "LUT-area comparison of the synthesized operators"),
    ("faults", "single-fault campaigns: online vs conventional resilience"),
];

/// How long a cancelled worker gets to notice the token, checkpoint its
/// state and exit before the driver gives up on joining it.
const CANCEL_GRACE: Duration = Duration::from_secs(20);

fn print_usage() {
    eprintln!(
        "usage: repro [EXPERIMENT ...] [--quick] [--all] [--resume] \
         [--backend auto|event|batch] [--trace off|pretty|json]"
    );
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("experiments (default: all):");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<8} {desc}");
    }
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --quick            shrink sample counts and image sizes (CI scale)");
    eprintln!("  --all              extended lint coverage (more operand widths); the");
    eprintln!("                     CI gate runs `repro lint --all`");
    eprintln!("  --resume           replay completed work units from the checkpoint at");
    eprintln!("                     results/checkpoints/repro.ckpt and recompute only the");
    eprintln!("                     remainder; the resumed run's CSVs are bit-identical");
    eprintln!("                     to an uninterrupted run's (a checkpoint written with");
    eprintln!("                     different flags is discarded, not spliced)");
    eprintln!("  --backend CHOICE   simulation engine for gate-level workloads:");
    eprintln!("                     auto (default) = batch when the delay model is");
    eprintln!("                     batch-exact, event otherwise; results are");
    eprintln!("                     bit-identical across backends");
    eprintln!("  --trace MODE       live span output on stderr: off (default), pretty,");
    eprintln!("                     or json; overrides the OLA_TRACE environment variable");
    eprintln!("  --list             list experiments and exit codes, then exit");
    eprintln!("  --help, -h         this message");
    eprintln!();
    eprintln!("exit codes:");
    eprintln!("  0  every requested experiment (and every CSV/manifest write) succeeded");
    eprintln!("  1  partial results: at least one experiment or output write failed");
    eprintln!("  2  usage error (unknown experiment, flag, or backend)");
    eprintln!("  3  environment error: the results/ output directory cannot be created");
    eprintln!("  4  completed, but a simulation backend degraded (results still exact;");
    eprintln!("     see the resilience.degraded.* annotations in the run manifests)");
    eprintln!("  86 aborted on purpose by an OLA_CHAOS_* fault-injection hook");
}

/// Outcome of one experiment.
enum Outcome {
    Ok(Vec<Table>),
    Failed(String),
    TimedOut { budget: Duration, cooperative: bool },
}

/// One experiment body: receives its checkpoint context from the driver.
type Job = Box<dyn FnOnce(&ExperimentCtx) -> Result<Vec<Table>, String> + Send + 'static>;

fn decode(
    result: Result<Result<Vec<Table>, String>, Box<dyn std::any::Any + Send>>,
    budget: Duration,
) -> Outcome {
    match result {
        Ok(Ok(tables)) => Outcome::Ok(tables),
        Ok(Err(msg)) => Outcome::Failed(msg),
        Err(payload) => {
            // A worker whose deadline token fired before our timer did
            // unwinds with the typed cancellation payload: that is the
            // budget, not a crash.
            if is_cancel_payload(payload.as_ref()) {
                return Outcome::TimedOut { budget, cooperative: true };
            }
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Failed(format!("panicked: {msg}"))
        }
    }
}

/// Runs `job` on a worker thread under a cooperative wall-clock budget.
///
/// The worker installs a deadline [`CancelToken`] as its ambient token, so
/// every simulation loop underneath polls it (and `ola_core::parallel`
/// propagates it into its own worker pool). On timeout the driver cancels
/// the token and waits [`CANCEL_GRACE`] for the worker to unwind — a
/// responsive worker checkpoints its completed units and frees its cores;
/// only a worker stuck outside any polling loop is left detached (the
/// process still terminates when `main` returns).
fn run_guarded(budget: Duration, ctx: ExperimentCtx, job: Job) -> Outcome {
    let token = CancelToken::with_deadline(budget);
    let worker_token = token.clone();
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ambient = ola_core::resilience::install_ambient(worker_token);
        let result = catch_unwind(AssertUnwindSafe(move || job(&ctx)));
        let _ = tx.send(result);
    });
    let outcome = match rx.recv_timeout(budget) {
        Ok(result) => decode(result, budget),
        Err(_) => {
            token.cancel();
            match rx.recv_timeout(CANCEL_GRACE) {
                Ok(_) => Outcome::TimedOut { budget, cooperative: true },
                // The worker never reached a cancellation point; abandon it
                // detached rather than blocking the remaining experiments.
                Err(_) => return Outcome::TimedOut { budget, cooperative: false },
            }
        }
    };
    let _ = handle.join();
    outcome
}

#[allow(clippy::too_many_lines)]
fn main() {
    // Default the content-cache disk tier so back-to-back `repro`
    // invocations warm-hit across processes (an explicit OLA_CACHE_DIR,
    // including empty-for-disabled, wins). Set before any thread spawns.
    if std::env::var_os("OLA_CACHE_DIR").is_none() {
        std::env::set_var("OLA_CACHE_DIR", "results/cache");
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut all = false;
    let mut resume = false;
    let mut backend = SimBackend::Auto;
    let mut trace_override: Option<TraceMode> = None;
    let mut what: Vec<&str> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" => quick = true,
            "--all" => all = true,
            "--resume" => resume = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                for (name, desc) in EXPERIMENTS {
                    println!("{name:<8} {desc}");
                }
                println!();
                println!(
                    "exit codes: 0 = complete, 1 = partial results, 2 = usage error, \
                     3 = environment error (cannot create results/), 4 = complete but \
                     a backend degraded, 86 = chaos-hook abort"
                );
                return;
            }
            "--backend" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|v| SimBackend::parse(v)) else {
                    eprintln!("--backend needs one of: auto, event, batch");
                    std::process::exit(2);
                };
                backend = value;
            }
            _ if arg.starts_with("--backend=") => {
                let Some(value) = SimBackend::parse(&arg["--backend=".len()..]) else {
                    eprintln!("--backend needs one of: auto, event, batch");
                    std::process::exit(2);
                };
                backend = value;
            }
            "--trace" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|v| TraceMode::parse(v)) else {
                    eprintln!("--trace needs one of: off, pretty, json");
                    std::process::exit(2);
                };
                trace_override = Some(value);
            }
            _ if arg.starts_with("--trace=") => {
                let Some(value) = TraceMode::parse(&arg["--trace=".len()..]) else {
                    eprintln!("--trace needs one of: off, pretty, json");
                    std::process::exit(2);
                };
                trace_override = Some(value);
            }
            _ if arg.starts_with("--") => {
                eprintln!("unknown flag {arg:?}");
                print_usage();
                std::process::exit(2);
            }
            name => what.push(name),
        }
        i += 1;
    }
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let what = if what.is_empty() { vec!["all"] } else { what };
    if let Some(unknown) =
        what.iter().find(|w| **w != "all" && !EXPERIMENTS.iter().any(|(n, _)| n == *w))
    {
        eprintln!("unknown experiment {unknown:?}");
        print_usage();
        std::process::exit(2);
    }

    // Observability: wire the netlist observer into the metrics registry
    // and settle the trace mode before any experiment runs.
    obs::init();
    if let Some(mode) = trace_override {
        obs::set_mode(mode);
    }

    // The output directories are a precondition of the whole run: every
    // experiment that writes files (fig7's PGMs, every CSV, every
    // manifest) lands under `results/`. Creating them up front converts
    // a read-only working directory from a dozen confusing per-experiment
    // failures (historically: a panic backtrace out of fig7) into one
    // clear environment error with its own exit code.
    let out_dir = PathBuf::from("results");
    let manifest_dir = out_dir.join("manifests");
    if let Err(e) = std::fs::create_dir_all(&manifest_dir) {
        eprintln!(
            "cannot create output directory {}: {e}\n\
             (repro writes CSVs, PGM images, and run manifests there; \
             run from a writable directory)",
            manifest_dir.display()
        );
        std::process::exit(3);
    }

    // The checkpoint binds the run parameters that change what experiments
    // compute: resuming across a flag change discards it instead of
    // splicing tables from different sample counts.
    let ckpt_path = out_dir.join("checkpoints").join("repro.ckpt");
    let header = RunHeader {
        scale: if quick { "quick".into() } else { "full".into() },
        backend: backend.label().to_string(),
        all,
    };
    let state = if resume {
        RunState::resume(&ckpt_path, &header)
    } else {
        RunState::fresh(&ckpt_path, &header)
    };

    // Per-experiment wall-clock safety net; generous enough that only a
    // genuinely wedged experiment trips it.
    let budget = if quick { Duration::from_secs(1200) } else { Duration::from_secs(7200) };

    let wants = |k: &str| what.iter().any(|w| *w == "all" || *w == k);
    // The shared case-study context is only worth building if some case-
    // study experiment actually needs to *compute* (a fully checkpointed
    // one replays without touching it).
    let needs = |k: &str| wants(k) && !state.is_done(k);
    let ctx_needed =
        needs("fig6") || needs("fig7") || needs("table1") || needs("table2") || needs("table3");
    let ctx = ctx_needed.then(|| Arc::new(CaseStudyContext::new(scale)));

    // (name, job) pairs; each job is 'static so it can run on its own
    // guarded worker thread, and receives its checkpoint context there.
    let mut jobs: Vec<(&str, Job)> = Vec::new();
    if wants("sta") {
        jobs.push(("sta", Box::new(move |run| experiments::sta(run, scale))));
    }
    if wants("lint") {
        jobs.push(("lint", Box::new(move |run| experiments::lint(run, all))));
    }
    if wants("equiv") {
        jobs.push(("equiv", Box::new(move |run| experiments::equiv(run, scale, all, backend))));
    }
    if wants("synth") {
        jobs.push(("synth", Box::new(move |run| experiments::synth(run, scale, backend))));
    }
    if wants("dsp") {
        jobs.push(("dsp", Box::new(move |run| experiments::dsp(run, scale))));
    }
    if wants("fig4") {
        jobs.push(("fig4", Box::new(move |run| experiments::fig4(run, scale, backend))));
    }
    if wants("fig5") {
        jobs.push(("fig5", Box::new(move |run| experiments::fig5(run, scale))));
    }
    if wants("fig6") {
        let ctx = ctx.clone();
        jobs.push((
            "fig6",
            Box::new(move |run| match &ctx {
                Some(ctx) => experiments::fig6(run, ctx),
                None => Ok(Vec::new()), // fully checkpointed: replayed below
            }),
        ));
    }
    if wants("fig7") {
        let ctx = ctx.clone();
        let dir = out_dir.clone();
        jobs.push((
            "fig7",
            Box::new(move |run| match &ctx {
                Some(ctx) => experiments::fig7(run, ctx, &dir),
                None => Ok(Vec::new()),
            }),
        ));
    }
    for (name, f) in [
        (
            "table1",
            experiments::table1
                as fn(&ExperimentCtx, &CaseStudyContext) -> Result<Vec<Table>, String>,
        ),
        ("table2", experiments::table2),
        ("table3", experiments::table3),
    ] {
        if wants(name) {
            let ctx = ctx.clone();
            jobs.push((
                name,
                Box::new(move |run| match &ctx {
                    Some(ctx) => f(run, ctx),
                    None => Ok(Vec::new()),
                }),
            ));
        }
    }
    if wants("table4") {
        jobs.push(("table4", Box::new(experiments::table4)));
    }
    if wants("faults") {
        jobs.push(("faults", Box::new(move |run| experiments::faults(run, scale, backend))));
    }

    if jobs.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let git = obs::git_describe();
    let total = jobs.len();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut degraded = false;
    for (name, job) in jobs {
        // Attribute registry deltas, spans, annotations and noted output
        // files to this experiment: snapshot + drain before, diff after.
        // (Shared case-study context work is attributed to the first
        // experiment that touches it — noted in the manifest itself.)
        let before = obs::registry().snapshot();
        let _ = obs::drain_spans();
        let _ = obs::take_annotations();
        let _ = obs::take_noted_outputs();

        let start = Instant::now();
        let tables = if state.is_done(name) {
            // The experiment's `done` frame landed in a previous run: its
            // tables (and output-file registrations) come straight from
            // the checkpoint, bit-identical — nothing recomputes.
            let unit = state.replay_done(name);
            for (label, path) in unit.noted {
                obs::note_output(label, path);
            }
            obs::annotate("resilience.replayed", format_args!("true"));
            eprintln!("[{name}] replayed from checkpoint");
            unit.tables
        } else {
            let job: Job = if chaos::panic_target().as_deref() == Some(name) {
                Box::new(|_| panic!("injected by OLA_CHAOS_PANIC"))
            } else {
                job
            };
            let span = obs::span(format!("experiment.{name}"));
            let outcome = run_guarded(budget, ExperimentCtx::new(name, state.clone()), job);
            drop(span);
            match outcome {
                Outcome::Ok(t) => {
                    eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
                    state.mark_done(name);
                    t
                }
                Outcome::Failed(msg) => {
                    eprintln!("[{name}] FAILED after {:.1}s: {msg}", start.elapsed().as_secs_f64());
                    failures.push((name.to_string(), msg));
                    continue;
                }
                Outcome::TimedOut { budget, cooperative } => {
                    let msg = if cooperative {
                        format!(
                            "exceeded wall-clock budget of {}s (cancelled cooperatively; \
                             completed units are checkpointed — rerun with --resume)",
                            budget.as_secs()
                        )
                    } else {
                        format!(
                            "exceeded wall-clock budget of {}s and ignored cancellation \
                             for {}s (worker abandoned)",
                            budget.as_secs(),
                            CANCEL_GRACE.as_secs()
                        )
                    };
                    eprintln!("[{name}] TIMED OUT: {msg}");
                    failures.push((name.to_string(), msg));
                    continue;
                }
            }
        };

        // Persist this experiment's tables immediately so partial runs
        // still leave their completed CSVs (and manifests) behind.
        let mut emitted: Vec<(String, PathBuf)> = Vec::new();
        for t in &tables {
            println!("{}", t.render());
            match t.write_csv(&out_dir) {
                Ok(p) => {
                    eprintln!("  csv: {}", p.display());
                    emitted.push((p.display().to_string(), p));
                }
                Err(e) => {
                    eprintln!("  csv write failed: {e}");
                    failures.push((format!("csv:{}", t.title), e.to_string()));
                }
            }
        }
        // Files the experiment wrote itself (fig7's PGM images).
        for (label, path) in obs::take_noted_outputs() {
            emitted.push((label, path));
        }

        let mut outputs: Vec<OutputRecord> = Vec::new();
        for (label, path) in &emitted {
            match OutputRecord::capture(label, path) {
                Ok(rec) => outputs.push(rec),
                Err(e) => {
                    eprintln!("  hash of {} failed: {e}", path.display());
                    failures.push((format!("hash:{label}"), e.to_string()));
                }
            }
        }

        let manifest = RunManifest {
            experiment: name.to_string(),
            created_unix_ms: RunManifest::now_unix_ms(),
            git: git.clone(),
            backend: backend.label().to_string(),
            // Quick scale runs a tenth of the full Monte-Carlo depth.
            scale: if quick { 0.1 } else { 1.0 },
            seeds: experiments::master_seeds(name),
            ola_threads: ola_core::parallel::thread_config().record(),
            trace: obs::mode().label().to_string(),
            annotations: obs::take_annotations(),
            spans: obs::drain_spans(),
            metrics: obs::registry().snapshot().diff(&before),
            outputs,
        };
        if manifest.annotations.iter().any(|(k, _)| k.starts_with(DEGRADED_PREFIX)) {
            degraded = true;
        }
        match manifest.write(&manifest_dir) {
            Ok(p) => eprintln!("  manifest: {}", p.display()),
            Err(e) => {
                eprintln!("  manifest write failed: {e}");
                failures.push((format!("manifest:{name}"), e.to_string()));
            }
        }
    }

    if failures.is_empty() {
        eprintln!("all {total} experiment(s) completed");
        if degraded {
            eprintln!(
                "COMPLETED WITH DEGRADATION: a simulation backend failed and its \
                 experiments fell back to the event engine (results are exact — the \
                 engines are bit-identical); see resilience.degraded.* in the manifests"
            );
            std::process::exit(4);
        }
    } else {
        eprintln!("PARTIAL RESULTS: {} of {total} experiment step(s) failed:", failures.len());
        for (name, msg) in &failures {
            eprintln!("  {name}: {msg}");
        }
        std::process::exit(1);
    }
}
