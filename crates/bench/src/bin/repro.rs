//! Regenerates the paper's tables and figures. See `ola-bench` crate docs.
//!
//! Every experiment runs in its own worker thread under `catch_unwind` and
//! a wall-clock budget: a panicking or runaway experiment is reported in
//! the final *partial results* summary instead of taking down the whole
//! reproduction run. The exit code reflects completeness — `0` when every
//! requested experiment (and every CSV write) succeeded, `1` for partial
//! results, `2` for usage errors. `--list` enumerates the experiments and
//! exit codes; `--backend {auto,event,batch}` selects the simulation
//! engine for the gate-level workloads (results are bit-identical across
//! backends — batch-backed experiments additionally self-verify with an
//! event-driven spot-check and report their throughput counters).

use ola_bench::experiments::{self, CaseStudyContext, Scale};
use ola_bench::report::Table;
use ola_core::SimBackend;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `(name, one-line description)` for every experiment, in run order.
const EXPERIMENTS: [(&str, &str); 11] = [
    ("sta", "static timing: critical paths, per-digit slack + certification (no simulation)"),
    ("lint", "netlist lint over every generated operator family (+ seeded-loop self-check)"),
    ("fig4", "overclocking error: model vs Monte-Carlo vs gate-level netlist (N=8,12)"),
    ("fig5", "per-chain-delay profile, analytic model next to Monte-Carlo (N=8..32)"),
    ("fig6", "image-filter MRE vs normalized frequency (case study)"),
    ("fig7", "overclocked filter output images + SNR table (case study)"),
    ("table1", "relative MRE reduction with online arithmetic"),
    ("table2", "SNR improvement (dB) with online arithmetic"),
    ("table3", "frequency headroom under error budgets"),
    ("table4", "LUT-area comparison of the synthesized operators"),
    ("faults", "single-fault campaigns: online vs conventional resilience"),
];

fn print_usage() {
    eprintln!("usage: repro [EXPERIMENT ...] [--quick] [--all] [--backend auto|event|batch]");
    eprintln!("       repro --list");
    eprintln!();
    eprintln!("experiments (default: all):");
    for (name, desc) in EXPERIMENTS {
        eprintln!("  {name:<8} {desc}");
    }
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --quick            shrink sample counts and image sizes (CI scale)");
    eprintln!("  --all              extended lint coverage (more operand widths); the");
    eprintln!("                     CI gate runs `repro lint --all`");
    eprintln!("  --backend CHOICE   simulation engine for gate-level workloads:");
    eprintln!("                     auto (default) = batch when the delay model is");
    eprintln!("                     batch-exact, event otherwise; results are");
    eprintln!("                     bit-identical across backends");
    eprintln!("  --list             list experiments and exit codes, then exit");
    eprintln!("  --help, -h         this message");
    eprintln!();
    eprintln!("exit codes:");
    eprintln!("  0  every requested experiment (and every CSV write) succeeded");
    eprintln!("  1  partial results: at least one experiment or CSV write failed");
    eprintln!("  2  usage error (unknown experiment, flag, or backend)");
}

/// Outcome of one experiment.
enum Outcome {
    Ok(Vec<Table>),
    Failed(String),
    TimedOut(Duration),
}

/// Runs `f` on a worker thread, waiting at most `budget` wall-clock time
/// and converting panics into [`Outcome::Failed`]. On timeout the worker
/// keeps running detached (its result is discarded); the process still
/// terminates when `main` returns.
fn run_guarded<F>(budget: Duration, f: F) -> Outcome
where
    F: FnOnce() -> Result<Vec<Table>, String> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(budget) {
        Ok(Ok(Ok(tables))) => Outcome::Ok(tables),
        Ok(Ok(Err(msg))) => Outcome::Failed(msg),
        Ok(Err(payload)) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Failed(format!("panicked: {msg}"))
        }
        Err(_) => Outcome::TimedOut(budget),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut all = false;
    let mut backend = SimBackend::Auto;
    let mut what: Vec<&str> = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" => quick = true,
            "--all" => all = true,
            "--help" | "-h" => {
                print_usage();
                return;
            }
            "--list" => {
                for (name, desc) in EXPERIMENTS {
                    println!("{name:<8} {desc}");
                }
                println!();
                println!("exit codes: 0 = complete, 1 = partial results, 2 = usage error");
                return;
            }
            "--backend" => {
                i += 1;
                let Some(value) = args.get(i).and_then(|v| SimBackend::parse(v)) else {
                    eprintln!("--backend needs one of: auto, event, batch");
                    std::process::exit(2);
                };
                backend = value;
            }
            _ if arg.starts_with("--backend=") => {
                let Some(value) = SimBackend::parse(&arg["--backend=".len()..]) else {
                    eprintln!("--backend needs one of: auto, event, batch");
                    std::process::exit(2);
                };
                backend = value;
            }
            _ if arg.starts_with("--") => {
                eprintln!("unknown flag {arg:?}");
                print_usage();
                std::process::exit(2);
            }
            name => what.push(name),
        }
        i += 1;
    }
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let what = if what.is_empty() { vec!["all"] } else { what };
    if let Some(unknown) =
        what.iter().find(|w| **w != "all" && !EXPERIMENTS.iter().any(|(n, _)| n == *w))
    {
        eprintln!("unknown experiment {unknown:?}");
        print_usage();
        std::process::exit(2);
    }
    let out_dir = PathBuf::from("results");
    // Per-experiment wall-clock safety net; generous enough that only a
    // genuinely wedged experiment trips it.
    let budget = if quick { Duration::from_secs(1200) } else { Duration::from_secs(7200) };

    let wants = |k: &str| what.iter().any(|w| *w == "all" || *w == k);
    let ctx_needed =
        wants("fig6") || wants("fig7") || wants("table1") || wants("table2") || wants("table3");
    let ctx = ctx_needed.then(|| Arc::new(CaseStudyContext::new(scale)));

    // (name, job) pairs; each job is 'static so it can run on its own
    // guarded worker thread.
    type Job = Box<dyn FnOnce() -> Result<Vec<Table>, String> + Send + 'static>;
    let mut jobs: Vec<(&str, Job)> = Vec::new();
    if wants("sta") {
        jobs.push(("sta", Box::new(move || experiments::sta(scale))));
    }
    if wants("lint") {
        jobs.push(("lint", Box::new(move || experiments::lint(all))));
    }
    if wants("fig4") {
        jobs.push(("fig4", Box::new(move || experiments::fig4(scale, backend))));
    }
    if wants("fig5") {
        jobs.push(("fig5", Box::new(move || Ok(experiments::fig5(scale)))));
    }
    if let Some(ctx) = &ctx {
        if wants("fig6") {
            let ctx = ctx.clone();
            jobs.push(("fig6", Box::new(move || Ok(vec![experiments::fig6(&ctx)]))));
        }
        if wants("fig7") {
            let ctx = ctx.clone();
            let dir = out_dir.clone();
            jobs.push((
                "fig7",
                Box::new(move || {
                    experiments::fig7(&ctx, &dir)
                        .map(|t| vec![t])
                        .map_err(|e| format!("image output failed: {e}"))
                }),
            ));
        }
        for (name, f) in [
            ("table1", experiments::table1 as fn(&CaseStudyContext) -> Table),
            ("table2", experiments::table2),
            ("table3", experiments::table3),
        ] {
            if wants(name) {
                let ctx = ctx.clone();
                jobs.push((name, Box::new(move || Ok(vec![f(&ctx)]))));
            }
        }
    }
    if wants("table4") {
        jobs.push(("table4", Box::new(move || Ok(vec![experiments::table4()]))));
    }
    if wants("faults") {
        jobs.push(("faults", Box::new(move || experiments::faults(scale, backend))));
    }

    if jobs.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let total = jobs.len();
    let mut tables: Vec<Table> = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for (name, job) in jobs {
        let start = Instant::now();
        match run_guarded(budget, job) {
            Outcome::Ok(mut t) => {
                eprintln!("[{name}] done in {:.1}s", start.elapsed().as_secs_f64());
                tables.append(&mut t);
            }
            Outcome::Failed(msg) => {
                eprintln!("[{name}] FAILED after {:.1}s: {msg}", start.elapsed().as_secs_f64());
                failures.push((name.to_string(), msg));
            }
            Outcome::TimedOut(b) => {
                let msg = format!("exceeded wall-clock budget of {}s", b.as_secs());
                eprintln!("[{name}] TIMED OUT: {msg}");
                failures.push((name.to_string(), msg));
            }
        }
    }

    for t in &tables {
        println!("{}", t.render());
        match t.write_csv(&out_dir) {
            Ok(p) => eprintln!("  csv: {}", p.display()),
            Err(e) => {
                eprintln!("  csv write failed: {e}");
                failures.push((format!("csv:{}", t.title), e.to_string()));
            }
        }
    }

    if failures.is_empty() {
        eprintln!("all {total} experiment(s) completed");
    } else {
        eprintln!("PARTIAL RESULTS: {} of {total} experiment step(s) failed:", failures.len());
        for (name, msg) in &failures {
            eprintln!("  {name}: {msg}");
        }
        std::process::exit(1);
    }
}
