//! Validates the run manifests a `repro` invocation left behind.
//!
//! For every `results/manifests/*.json` (or the manifests named on the
//! command line), this checks that:
//!
//! * the document parses as JSON and carries the expected
//!   [`SCHEMA`](ola_core::obs::SCHEMA) identifier,
//! * the full top-level field set is present (golden schema),
//! * every listed output file still exists, has the recorded size, and
//!   re-hashes to the recorded SHA-256.
//!
//! Exit codes: `0` all manifests valid, `1` at least one check failed,
//! `2` usage error (e.g. the manifests directory is missing). CI runs
//! this right after `repro --quick` to catch schema drift and silent
//! output corruption.

use ola_core::obs::json::{parse, JsonValue};
use ola_core::obs::{sha256, SCHEMA};
use std::path::{Path, PathBuf};

/// Top-level fields every `ola.run-manifest/v1` document must carry, in
/// schema order. Kept in sync with `RunManifest::to_json` by the golden
/// test in `ola-bench`.
const FIELDS: [&str; 13] = [
    "schema",
    "experiment",
    "created_unix_ms",
    "git",
    "backend",
    "scale",
    "seeds",
    "ola_threads",
    "trace",
    "annotations",
    "spans",
    "metrics",
    "outputs",
];

/// One manifest's validation: returns the list of problems found.
fn check_manifest(path: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return vec![format!("JSON parse error: {e}")],
    };
    let Some(fields) = doc.as_object() else {
        return vec!["top level is not an object".to_string()];
    };

    match doc.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => problems.push(format!("schema {s:?}, expected {SCHEMA:?}")),
        None => problems.push("missing string field \"schema\"".to_string()),
    }
    for want in FIELDS {
        if !fields.iter().any(|(k, _)| k == want) {
            problems.push(format!("missing field {want:?}"));
        }
    }
    for (k, _) in fields {
        if !FIELDS.contains(&k.as_str()) {
            problems.push(format!("unexpected field {k:?} (schema drift?)"));
        }
    }

    let outputs = doc.get("outputs").and_then(JsonValue::as_array);
    match outputs {
        None => problems.push("\"outputs\" is not an array".to_string()),
        Some(outputs) => {
            for (i, rec) in outputs.iter().enumerate() {
                let ctx = |what: &str| format!("outputs[{i}]: {what}");
                let Some(file) = rec.get("path").and_then(JsonValue::as_str) else {
                    problems.push(ctx("missing string \"path\""));
                    continue;
                };
                let (Some(bytes), Some(digest)) = (
                    rec.get("bytes").and_then(JsonValue::as_u64),
                    rec.get("sha256").and_then(JsonValue::as_str),
                ) else {
                    problems.push(ctx(&format!("{file}: missing \"bytes\" or \"sha256\"")));
                    continue;
                };
                match std::fs::metadata(file) {
                    Err(e) => problems.push(ctx(&format!("{file}: missing ({e})"))),
                    Ok(meta) if meta.len() != bytes => problems.push(ctx(&format!(
                        "{file}: size {} != recorded {bytes}",
                        meta.len()
                    ))),
                    Ok(_) => match sha256::file_digest(Path::new(file)) {
                        Err(e) => problems.push(ctx(&format!("{file}: unreadable ({e})"))),
                        Ok(actual) if actual != digest => problems.push(ctx(&format!(
                            "{file}: SHA-256 mismatch\n      recorded {digest}\n      actual   {actual}"
                        ))),
                        Ok(_) => {}
                    },
                }
            }
        }
    }
    problems
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: manifest_check [MANIFEST.json ...]");
        eprintln!("       (default: every results/manifests/*.json)");
        eprintln!("exit codes: 0 = all valid, 1 = check failed, 2 = usage/environment error");
        return;
    }
    let manifests: Vec<PathBuf> = if args.is_empty() {
        let dir = Path::new("results/manifests");
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot read {}: {e} (run `repro` first)", dir.display());
                std::process::exit(2);
            }
        };
        let mut found: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        found.sort();
        found
    } else {
        args.iter().map(PathBuf::from).collect()
    };
    if manifests.is_empty() {
        eprintln!("no manifests found under results/manifests/ (run `repro` first)");
        std::process::exit(2);
    }

    let mut bad = 0usize;
    for path in &manifests {
        let problems = check_manifest(path);
        if problems.is_empty() {
            eprintln!("OK   {}", path.display());
        } else {
            bad += 1;
            eprintln!("FAIL {}", path.display());
            for p in problems {
                eprintln!("    {p}");
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} of {} manifest(s) failed validation", manifests.len());
        std::process::exit(1);
    }
    eprintln!("all {} manifest(s) valid", manifests.len());
}
