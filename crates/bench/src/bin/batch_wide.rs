//! Measures the wide-lane + dirty-cone incremental engine against the
//! 64-lane full-resimulation baseline and writes `BENCH_batch.json`.
//!
//! The workload is the fault-campaign Monte-Carlo sweep shape: batches
//! of random input vectors get one clean pass, a multi-`Ts` sweep of
//! every output, and then one faulty resimulation + sweep per injection
//! site. Three arms run the identical workload:
//!
//! * `lanes64_full` — the pre-wide-lane baseline: legacy `u64` words
//!   (64 lanes), every faulty pass a full resimulation.
//! * `lanes256_full` — `LaneBlock<4>` words (256 lanes), full faulty
//!   passes: isolates the wide-lane contribution.
//! * `lanes256_incremental` — 256 lanes plus
//!   [`BatchProgram::run_incremental`] for the faulty passes, which
//!   recomputes only each site's fanout cone: the shipping
//!   configuration.
//!
//! Every arm folds its swept sample bits into a lane-order-canonical
//! digest, so bit-identity across lane widths and resimulation
//! strategies is checked, not assumed. Compare with the PR 2 baseline
//! in `results/backend_speedup_batch_vs_event.csv`.
//!
//! ```sh
//! cargo run --release -p ola-bench --bin batch_wide
//! ```
//!
//! Exit code 0 when all arms are bit-identical and the shipping arm is
//! at least 2x the 64-lane baseline, 1 otherwise.

use ola_arith::synth::online_multiplier;
use ola_core::obs::json::JsonValue;
use ola_netlist::batch::{BatchProgram, LaneBlock, LaneFaultSet, LaneInputs, LaneWord};
use ola_netlist::{analyze, FaultPlan, FpgaDelay, NetId, Netlist};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

const N_DIGITS: usize = 16;
const SAMPLES: usize = 1024;
const TS_POINTS: u64 = 20;
const FAULT_SITES: usize = 12;
const SEED: u64 = 20_14;

fn ts_grid(rated: u64) -> Vec<u64> {
    (1..=TS_POINTS).map(|k| (rated * k).div_ceil(TS_POINTS).max(1)).collect()
}

/// Deterministic stimulus: `SAMPLES` random input vectors (from-zero
/// transitions, the campaign access pattern).
fn stimulus(num_inputs: usize) -> Vec<Vec<bool>> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    (0..SAMPLES).map(|_| (0..num_inputs).map(|_| rng.gen::<bool>()).collect()).collect()
}

/// Fault sites spread evenly over the netlist's gate nets.
fn fault_sites(nl: &Netlist) -> Vec<NetId> {
    let gates: Vec<NetId> = nl.nets().filter(|n| !nl.inputs().contains(n)).collect();
    (0..FAULT_SITES).map(|i| gates[i * gates.len() / FAULT_SITES]).collect()
}

/// FNV-style hash of one sampled lane, bound to its global position so
/// the digest is sensitive to which sample/pass/grid point produced the
/// bits, yet independent of chunk boundaries (arms fold the same
/// per-position hashes with a commutative sum regardless of lane width).
fn position_hash(sample: usize, pass: usize, ti: usize, bits: &[bool]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (sample as u64) << 32 ^ (pass as u64) << 16 ^ ti as u64;
    for &b in bits {
        h = h.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(b) + 1);
    }
    h
}

/// One full workload pass at lane word `B`: per batch a clean run +
/// sweep, then per fault site a faulty resimulation (incremental when
/// asked) + sweep. Returns the lane-order-canonical digest of every
/// swept sample bit, which must not depend on `B` or on `incremental`.
fn workload<B: LaneWord>(
    prog: &BatchProgram,
    nl: &Netlist,
    bus: &[NetId],
    vecs: &[Vec<bool>],
    grid: &[u64],
    sites: &[NetId],
    incremental: bool,
) -> u64 {
    let mut digest = 0u64;
    for (ci, chunk) in vecs.chunks(B::LANES as usize).enumerate() {
        let chunk_start = ci * B::LANES as usize;
        let lanes = chunk.len() as u32;
        let prev = LaneInputs::<B>::zeros(nl.inputs().len(), lanes).expect("lane cap");
        let new = LaneInputs::<B>::pack(chunk).expect("lane cap");
        let clean = prog.run(&prev, &new).expect("clean pass");
        let sweep =
            clean.bus_waves(bus).expect("bus").try_sweep(grid).expect("grid has no duplicates");
        for lane in 0..lanes {
            for ti in 0..grid.len() {
                let bits = sweep.lane_bits(ti, lane);
                digest =
                    digest.wrapping_add(position_hash(chunk_start + lane as usize, 0, ti, &bits));
            }
        }
        for (k, &site) in sites.iter().enumerate() {
            let plan = FaultPlan::new().transient(site, grid[k % grid.len()] / 2, 3);
            let plans = vec![plan; lanes as usize];
            let faults = LaneFaultSet::<B>::compile(&plans, nl.len()).expect("sites are in range");
            let faulty = if incremental {
                prog.run_incremental(&clean, &prev, &new, Some(&faults)).expect("faulty pass")
            } else {
                prog.run_with_faults(&prev, &new, &faults).expect("faulty pass")
            };
            let sweep = faulty
                .bus_waves(bus)
                .expect("bus")
                .try_sweep(grid)
                .expect("grid has no duplicates");
            for lane in 0..lanes {
                for ti in 0..grid.len() {
                    let bits = sweep.lane_bits(ti, lane);
                    digest = digest.wrapping_add(position_hash(
                        chunk_start + lane as usize,
                        k + 1,
                        ti,
                        &bits,
                    ));
                }
            }
        }
    }
    digest
}

struct Arm {
    name: &'static str,
    lanes: u64,
    secs: f64,
    digest: u64,
}

#[allow(clippy::too_many_arguments)]
fn measure<B: LaneWord>(
    name: &'static str,
    prog: &BatchProgram,
    nl: &Netlist,
    bus: &[NetId],
    vecs: &[Vec<bool>],
    grid: &[u64],
    sites: &[NetId],
    incremental: bool,
) -> Arm {
    // One warm pass so no arm pays first-touch allocator costs.
    let _ = workload::<B>(prog, nl, bus, vecs, grid, sites, incremental);
    let start = Instant::now();
    let digest = workload::<B>(prog, nl, bus, vecs, grid, sites, incremental);
    let secs = start.elapsed().as_secs_f64();
    eprintln!("  [{name}] {secs:.3}s digest={digest:016x}");
    Arm { name, lanes: u64::from(B::LANES), secs, digest }
}

fn main() {
    let delay = FpgaDelay::default();
    let circuit = online_multiplier(N_DIGITS, 3);
    let nl = &circuit.netlist;
    let prog = BatchProgram::compile(nl, &delay).expect("FpgaDelay is batch-exact");
    let grid = ts_grid(analyze(nl, &delay).critical_path());
    let bus: Vec<NetId> = nl.outputs().flat_map(|(_, nets)| nets.iter().copied()).collect();
    let vecs = stimulus(nl.inputs().len());
    let sites = fault_sites(nl);
    eprintln!(
        "batch_wide: N={N_DIGITS} samples={SAMPLES} ts_points={TS_POINTS} sites={}",
        sites.len()
    );

    let arms = [
        measure::<u64>("lanes64_full", &prog, nl, &bus, &vecs, &grid, &sites, false),
        measure::<LaneBlock<4>>("lanes256_full", &prog, nl, &bus, &vecs, &grid, &sites, false),
        measure::<LaneBlock<4>>(
            "lanes256_incremental",
            &prog,
            nl,
            &bus,
            &vecs,
            &grid,
            &sites,
            true,
        ),
    ];

    let identical = arms.iter().all(|a| a.digest == arms[0].digest);
    let baseline = arms[0].secs;
    let shipping = arms[2].secs;
    let speedup = baseline / shipping;

    let mut fields = vec![
        ("bench".into(), JsonValue::str("wide-lane incremental batch vs 64-lane full resim")),
        ("workload".into(), JsonValue::str("online multiplier N=16 fault-campaign mc sweep")),
        ("samples".into(), JsonValue::U64(SAMPLES as u64)),
        ("ts_points".into(), JsonValue::U64(TS_POINTS)),
        ("fault_sites".into(), JsonValue::U64(FAULT_SITES as u64)),
        ("seed".into(), JsonValue::U64(SEED)),
    ];
    for a in &arms {
        fields.push((format!("{}_secs", a.name), JsonValue::F64(a.secs)));
        fields.push((format!("{}_lanes", a.name), JsonValue::U64(a.lanes)));
    }
    fields.push(("speedup_vs_baseline".into(), JsonValue::F64(speedup)));
    fields.push(("wide_lane_only_speedup".into(), JsonValue::F64(baseline / arms[1].secs)));
    fields.push(("bit_identical".into(), JsonValue::Bool(identical)));
    let json = JsonValue::Object(fields);
    let path = "BENCH_batch.json";
    if let Err(e) = std::fs::write(path, format!("{}\n", json.render())) {
        eprintln!("  write {path} failed: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote {path}: speedup {speedup:.1}x, bit_identical={identical}");

    if !identical {
        eprintln!("FAIL: arms disagree on swept sample bits");
        std::process::exit(1);
    }
    if speedup < 2.0 {
        eprintln!("FAIL: shipping arm is only {speedup:.2}x the 64-lane baseline (need >= 2x)");
        std::process::exit(1);
    }
}
