//! Records the event-vs-batch simulation speedup as a CSV in `results/`.
//!
//! Runs the Monte-Carlo multi-Ts sampling workload behind fig4/faults —
//! `N` random input vectors judged at every point of a frequency grid —
//! on both [`SimBackend`]s for 8/16/32-digit online multipliers and
//! 8/16/32-bit conventional array multipliers, verifies the curves are
//! bit-identical, and reports throughput in judged `(vector, Ts)` points
//! per second (the batch engine's lane words carry 64 vectors per pass).
//!
//! ```sh
//! cargo run --release -p ola-bench --bin backend_speedup
//! ```
//!
//! Exit code 0 when every pair of curves matched (the speedup row for the
//! 16-digit online multiplier is the acceptance headline), 1 otherwise.

use ola_arith::synth::{array_multiplier, online_multiplier};
use ola_bench::report::Table;
use ola_core::empirical::{array_gate_level_curve_with, om_gate_level_curve_with, GateLevelCurve};
use ola_core::{BackendStats, InputModel, SimBackend, StaGate};
use ola_netlist::{analyze, FpgaDelay};
use std::path::PathBuf;

const SAMPLES: usize = 256;
const GRID: u64 = 20;
const SEED: u64 = 20_14;

fn ts_grid(rated: u64) -> Vec<u64> {
    (1..=GRID).map(|k| rated * k / GRID).collect()
}

struct Row {
    workload: String,
    event: BackendStats,
    batch: BackendStats,
    identical: bool,
}

fn measure(workload: String, run: impl Fn(SimBackend) -> (GateLevelCurve, BackendStats)) -> Row {
    // Warm the allocator/caches once so neither backend pays first-touch
    // costs in its measured run.
    let _ = run(SimBackend::Event);
    let (ev_curve, event) = run(SimBackend::Event);
    let (ba_curve, batch) = run(SimBackend::Batch);
    eprintln!("  [{workload}] event: {}", event.summary());
    eprintln!("  [{workload}] batch: {}", batch.summary());
    Row { workload, event, batch, identical: ev_curve == ba_curve }
}

fn main() {
    let delay = FpgaDelay::default();
    let mut rows: Vec<Row> = Vec::new();

    for n in [8usize, 16, 32] {
        let circuit = online_multiplier(n, 3);
        let ts = ts_grid(analyze(&circuit.netlist, &delay).critical_path());
        rows.push(measure(format!("online multiplier N={n}"), |backend| {
            om_gate_level_curve_with(
                &circuit,
                &delay,
                InputModel::UniformDigits,
                &ts,
                SAMPLES,
                SEED,
                backend,
                // Judge every point: this binary measures raw engine
                // throughput, so the STA fast path would shrink the
                // workload it is trying to time.
                StaGate::Off,
            )
        }));
    }
    // The array multiplier caps at width 31 (its 2(w−1)-bit product must
    // stay exact in `i64`), so 31 stands in for the 32-bit class.
    for w in [8usize, 16, 31] {
        let circuit = array_multiplier(w);
        let ts = ts_grid(analyze(&circuit.netlist, &delay).critical_path());
        rows.push(measure(format!("array multiplier W={w}"), |backend| {
            array_gate_level_curve_with(&circuit, &delay, &ts, SAMPLES, SEED, backend, StaGate::Off)
        }));
    }

    let mut t = Table::new(
        "Backend speedup batch vs event",
        &[
            "workload",
            "samples",
            "ts_points",
            "event_pts_per_s",
            "batch_pts_per_s",
            "speedup",
            "lane_utilization",
            "bit_identical",
        ],
    );
    let mut ok = true;
    let mut headline = 0.0f64;
    for r in &rows {
        ok &= r.identical;
        let speedup = r.batch.ts_points_per_sec() / r.event.ts_points_per_sec();
        if r.workload == "online multiplier N=16" {
            headline = speedup;
        }
        t.push_row(vec![
            r.workload.clone(),
            SAMPLES.to_string(),
            r.event.ts_points.to_string(),
            format!("{:.0}", r.event.ts_points_per_sec()),
            format!("{:.0}", r.batch.ts_points_per_sec()),
            format!("{speedup:.1}"),
            format!("{:.3}", r.batch.lane_utilization()),
            r.identical.to_string(),
        ]);
    }
    println!("{}", t.render());
    match t.write_csv(&PathBuf::from("results")) {
        Ok(p) => eprintln!("  csv: {}", p.display()),
        Err(e) => {
            eprintln!("  csv write failed: {e}");
            ok = false;
        }
    }
    eprintln!(
        "headline: batch is {headline:.1}x event on the 16-digit online multiplier MC workload"
    );
    if !ok {
        eprintln!("FAILURE: backend curves diverged (or CSV write failed)");
        std::process::exit(1);
    }
}
