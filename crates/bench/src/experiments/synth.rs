//! `repro synth`: the datapath-synthesis Pareto sweep of the paper's 1×3
//! convolution kernel.
//!
//! The [`ola_synth`] compiler lowers the Gaussian tap program
//! `y = a·0.25 + b·0.5 + c·0.25` through every style × adder-allocation ×
//! width variant and the explorer evaluates each one: STA rated frequency
//! on the FPGA delay model, LUT area, and an empirical overclocking-error
//! curve over a shared Ts grid on the selected simulation backend. One
//! row per design point lands in
//! `results/synth_pareto_online_vs_conventional.csv`, with the `pareto`
//! column marking the non-dominated frontier in (area, rated period,
//! mean error).
//!
//! The experiment fails if the frontier is degenerate (fewer than three
//! non-dominated points): that would mean the latency–accuracy–area
//! trade-off the paper is about has collapsed, i.e. one implementation
//! style dominates everywhere — a regression in either the explorer or
//! an operator generator.

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_core::obs::json::{self, JsonValue};
use ola_core::{CacheConfig, CacheKey, ContentCache, SimBackend};
use ola_synth::{explore, AdderStructure, ExploreConfig, InputFmt, Style};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Master seed for the explorer's empirical error curves (recorded in the
/// run manifest via [`super::master_seeds`]).
pub(crate) const SEED: u64 = 0x01A_5EED;

/// The 1×3 convolution widths swept per scale.
fn widths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 6],
        Scale::Full => vec![4, 8, 12],
    }
}

/// The convolution program every sweep compiles (shared with the `equiv`
/// experiment so the verification gate covers the explored kernel).
pub(crate) const EXPR: &str = "y = a * 0.25 + b * 0.5 + c * 0.25";

/// The process-wide result cache the sweep runs through — the same
/// [`ContentCache`] `ola-serve` uses, so a repeated `repro synth` (same
/// scale, same backend) warm-hits instead of re-exploring. The disk tier
/// activates when `OLA_CACHE_DIR` names a directory (`repro` defaults it
/// to `results/cache`, so back-to-back CLI invocations hit across
/// processes); unset or empty keeps the cache memory-only.
fn cache() -> &'static ContentCache {
    static CACHE: OnceLock<ContentCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let disk_dir =
            std::env::var("OLA_CACHE_DIR").ok().filter(|d| !d.is_empty()).map(PathBuf::from);
        ContentCache::new(CacheConfig { capacity: 64, disk_dir, ..CacheConfig::default() })
    })
}

/// The canonical text whose SHA-256 is the sweep's content address: every
/// input that can change a row is spelled out, so semantically identical
/// invocations share a key and any config drift misses.
fn canonical(cfg: &ExploreConfig) -> String {
    format!(
        "repro-synth/v1 expr={EXPR:?} widths={:?} styles={:?} allocations={:?} frac={} ts={} samples={} seed={:#x} backend={}",
        cfg.widths,
        cfg.styles.iter().map(|s| s.name()).collect::<Vec<_>>(),
        cfg.allocations.iter().map(|a| a.name()).collect::<Vec<_>>(),
        cfg.frac_digits,
        cfg.ts_points,
        cfg.samples,
        cfg.seed,
        cfg.backend.label(),
    )
}

/// Runs the synthesis Pareto sweep and renders one row per design point.
///
/// The sweep is one checkpoint unit: the explorer's shared Ts grid
/// depends on the worst critical path across *all* variants, so a
/// partial-variant resume would shift the grid and break bit-identity —
/// the table checkpoints whole or not at all.
///
/// # Errors
///
/// If the Pareto frontier has fewer than three non-dominated points, or
/// no variant received a rated frequency at all.
pub fn synth(
    run: &crate::resume::ExperimentCtx,
    scale: Scale,
    backend: SimBackend,
) -> Result<Vec<Table>, String> {
    run.unit("pareto", || synth_inner(scale, backend))
}

fn synth_inner(scale: Scale, backend: SimBackend) -> Result<Vec<Table>, String> {
    let cfg = ExploreConfig {
        widths: widths(scale),
        styles: vec![Style::Online, Style::Conventional],
        allocations: vec![
            AdderStructure::LinearChain,
            AdderStructure::BalancedTree,
            AdderStructure::OnlineChained,
        ],
        frac_digits: 3,
        ts_points: scale.grid_points(),
        samples: scale.gate_samples(),
        seed: SEED,
        backend,
    };
    ola_core::obs::annotate(
        "synth.sweep",
        format_args!(
            "1x3 convolution, {} styles x {} allocations x {:?}, {} Ts points x {} samples",
            cfg.styles.len(),
            cfg.allocations.len(),
            cfg.widths,
            cfg.ts_points,
            cfg.samples
        ),
    );

    // Content-addressed: the whole sweep dedupes through the same cache
    // `ola-serve` uses. The frontier validation runs inside the fill, so
    // a failing sweep is never cached; a warm hit replays rows that
    // already passed it.
    let key = CacheKey::of(canonical(&cfg).as_bytes());
    let (bytes, lookup) = cache().get_or_compute(&key, || {
        let tables = explore_and_render(&cfg)?;
        let doc = JsonValue::Array(tables.iter().map(Table::to_json).collect());
        Ok::<_, String>(doc.render().into_bytes())
    })?;
    ola_core::obs::annotate("synth.cache", format_args!("{} {}", lookup.label(), key.hex()));
    if lookup.is_hit() {
        eprintln!("  [synth] warm {} for key {}", lookup.label(), &key.hex()[..12]);
    }
    let text = std::str::from_utf8(&bytes).map_err(|_| "cached sweep is not utf-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("cached sweep unparseable: {e}"))?;
    doc.as_array()
        .ok_or_else(|| "cached sweep is not an array".to_string())?
        .iter()
        .map(|t| Table::from_json(t).ok_or_else(|| "cached table malformed".to_string()))
        .collect()
}

fn explore_and_render(cfg: &ExploreConfig) -> Result<Vec<Table>, String> {
    let dfg = ola_synth::parse_dfg(EXPR, InputFmt { msd_pos: 1, digits: 8 })
        .map_err(|e| format!("convolution program failed to parse: {e}"))?;
    let result = explore(&dfg, cfg);

    let mut t = Table::new(
        "Synth Pareto online vs conventional",
        &[
            "style",
            "allocation",
            "width",
            "luts",
            "rated_period",
            "rated_mhz",
            "mean_error",
            "worst_violation_rate",
            "certified_skipped",
            "pareto",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.style.name().to_string(),
            p.allocation.name().to_string(),
            p.width.to_string(),
            p.area.luts.to_string(),
            p.rated_period.map_or_else(|| "-".to_string(), |v| v.to_string()),
            p.rated_mhz.map_or_else(|| "-".to_string(), fmt_f),
            fmt_f(p.mean_error),
            fmt_f(p.worst_violation_rate),
            p.certified_skipped.to_string(),
            p.pareto.to_string(),
        ]);
    }

    let frontier = result.frontier();
    if result.points.iter().all(|p| p.rated_period.is_none()) {
        return Err("no design point received a rated frequency".to_string());
    }
    if frontier.len() < 3 {
        return Err(format!(
            "degenerate Pareto frontier: {} non-dominated point(s) of {} (expected >= 3)",
            frontier.len(),
            result.points.len()
        ));
    }
    eprintln!(
        "  [synth] {} design points, {} on the frontier, Ts grid {:?}",
        result.points.len(),
        frontier.len(),
        result.ts_grid
    );
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_emits_a_nondegenerate_frontier() {
        let tables = synth(
            &crate::resume::ExperimentCtx::ephemeral("synth"),
            Scale::Quick,
            SimBackend::Auto,
        )
        .unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // 2 styles × 3 allocations × 2 widths.
        assert_eq!(t.rows.len(), 12);
        let frontier = t.rows.iter().filter(|r| r[9] == "true").count();
        assert!(frontier >= 3, "degenerate frontier: {frontier} points");
        // Both styles appear among the rows, and every row carries a
        // numeric LUT count.
        assert!(t.rows.iter().any(|r| r[0] == "online"));
        assert!(t.rows.iter().any(|r| r[0] == "conventional"));
        assert!(t.rows.iter().all(|r| r[3].parse::<u64>().is_ok()));
    }

    #[test]
    fn second_sweep_warm_hits_the_content_cache() {
        let hits = || {
            ola_core::obs::registry()
                .snapshot()
                .counters
                .get("ola.cache.hits")
                .copied()
                .unwrap_or(0)
        };
        let run = || {
            synth(&crate::resume::ExperimentCtx::ephemeral("synth"), Scale::Quick, SimBackend::Auto)
                .unwrap()
        };
        let cold = run();
        let before = hits();
        let warm = run();
        assert!(hits() > before, "second identical sweep must warm-hit the cache");
        // A warm hit replays the exact rows the cold sweep produced.
        assert_eq!(cold[0].rows, warm[0].rows, "cached rows are bit-identical");
    }

    #[test]
    fn canonical_keys_separate_configs_and_stay_stable() {
        let cfg = |samples| ExploreConfig {
            widths: vec![4, 6],
            styles: vec![Style::Online, Style::Conventional],
            allocations: vec![AdderStructure::LinearChain],
            frac_digits: 3,
            ts_points: 4,
            samples,
            seed: SEED,
            backend: SimBackend::Auto,
        };
        let a = CacheKey::of(canonical(&cfg(8)).as_bytes());
        let b = CacheKey::of(canonical(&cfg(8)).as_bytes());
        let c = CacheKey::of(canonical(&cfg(16)).as_bytes());
        assert_eq!(a, b, "identical configs share a content address");
        assert_ne!(a, c, "any config drift changes the key");
    }

    #[test]
    fn csv_slug_matches_the_documented_output_name() -> std::io::Result<()> {
        let t = Table::new("Synth Pareto online vs conventional", &["a"]);
        let dir = std::env::temp_dir().join("ola_synth_slug_test");
        let path = t.write_csv(&dir)?;
        assert!(path.ends_with("synth_pareto_online_vs_conventional.csv"), "{path:?}");
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
