//! `repro synth`: the datapath-synthesis Pareto sweep of the paper's 1×3
//! convolution kernel.
//!
//! The [`ola_synth`] compiler lowers the Gaussian tap program
//! `y = a·0.25 + b·0.5 + c·0.25` through every style × adder-allocation ×
//! width variant and the explorer evaluates each one: STA rated frequency
//! on the FPGA delay model, LUT area, and an empirical overclocking-error
//! curve over a shared Ts grid on the selected simulation backend. One
//! row per design point lands in
//! `results/synth_pareto_online_vs_conventional.csv`, with the `pareto`
//! column marking the non-dominated frontier in (area, rated period,
//! mean error).
//!
//! The experiment fails if the frontier is degenerate (fewer than three
//! non-dominated points): that would mean the latency–accuracy–area
//! trade-off the paper is about has collapsed, i.e. one implementation
//! style dominates everywhere — a regression in either the explorer or
//! an operator generator.

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_core::SimBackend;
use ola_synth::{explore, AdderStructure, ExploreConfig, InputFmt, Style};

/// Master seed for the explorer's empirical error curves (recorded in the
/// run manifest via [`super::master_seeds`]).
pub(crate) const SEED: u64 = 0x01A_5EED;

/// The 1×3 convolution widths swept per scale.
fn widths(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![4, 6],
        Scale::Full => vec![4, 8, 12],
    }
}

/// Runs the synthesis Pareto sweep and renders one row per design point.
///
/// The sweep is one checkpoint unit: the explorer's shared Ts grid
/// depends on the worst critical path across *all* variants, so a
/// partial-variant resume would shift the grid and break bit-identity —
/// the table checkpoints whole or not at all.
///
/// # Errors
///
/// If the Pareto frontier has fewer than three non-dominated points, or
/// no variant received a rated frequency at all.
pub fn synth(
    run: &crate::resume::ExperimentCtx,
    scale: Scale,
    backend: SimBackend,
) -> Result<Vec<Table>, String> {
    run.unit("pareto", || synth_inner(scale, backend))
}

fn synth_inner(scale: Scale, backend: SimBackend) -> Result<Vec<Table>, String> {
    let cfg = ExploreConfig {
        widths: widths(scale),
        styles: vec![Style::Online, Style::Conventional],
        allocations: vec![
            AdderStructure::LinearChain,
            AdderStructure::BalancedTree,
            AdderStructure::OnlineChained,
        ],
        frac_digits: 3,
        ts_points: scale.grid_points(),
        samples: scale.gate_samples(),
        seed: SEED,
        backend,
    };
    ola_core::obs::annotate(
        "synth.sweep",
        format_args!(
            "1x3 convolution, {} styles x {} allocations x {:?}, {} Ts points x {} samples",
            cfg.styles.len(),
            cfg.allocations.len(),
            cfg.widths,
            cfg.ts_points,
            cfg.samples
        ),
    );

    let dfg = ola_synth::parse_dfg(
        "y = a * 0.25 + b * 0.5 + c * 0.25",
        InputFmt { msd_pos: 1, digits: 8 },
    )
    .map_err(|e| format!("convolution program failed to parse: {e}"))?;
    let result = explore(&dfg, &cfg);

    let mut t = Table::new(
        "Synth Pareto online vs conventional",
        &[
            "style",
            "allocation",
            "width",
            "luts",
            "rated_period",
            "rated_mhz",
            "mean_error",
            "worst_violation_rate",
            "certified_skipped",
            "pareto",
        ],
    );
    for p in &result.points {
        t.push_row(vec![
            p.style.name().to_string(),
            p.allocation.name().to_string(),
            p.width.to_string(),
            p.area.luts.to_string(),
            p.rated_period.map_or_else(|| "-".to_string(), |v| v.to_string()),
            p.rated_mhz.map_or_else(|| "-".to_string(), fmt_f),
            fmt_f(p.mean_error),
            fmt_f(p.worst_violation_rate),
            p.certified_skipped.to_string(),
            p.pareto.to_string(),
        ]);
    }

    let frontier = result.frontier();
    if result.points.iter().all(|p| p.rated_period.is_none()) {
        return Err("no design point received a rated frequency".to_string());
    }
    if frontier.len() < 3 {
        return Err(format!(
            "degenerate Pareto frontier: {} non-dominated point(s) of {} (expected >= 3)",
            frontier.len(),
            result.points.len()
        ));
    }
    eprintln!(
        "  [synth] {} design points, {} on the frontier, Ts grid {:?}",
        result.points.len(),
        frontier.len(),
        result.ts_grid
    );
    Ok(vec![t])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_emits_a_nondegenerate_frontier() {
        let tables = synth(
            &crate::resume::ExperimentCtx::ephemeral("synth"),
            Scale::Quick,
            SimBackend::Auto,
        )
        .unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // 2 styles × 3 allocations × 2 widths.
        assert_eq!(t.rows.len(), 12);
        let frontier = t.rows.iter().filter(|r| r[9] == "true").count();
        assert!(frontier >= 3, "degenerate frontier: {frontier} points");
        // Both styles appear among the rows, and every row carries a
        // numeric LUT count.
        assert!(t.rows.iter().any(|r| r[0] == "online"));
        assert!(t.rows.iter().any(|r| r[0] == "conventional"));
        assert!(t.rows.iter().all(|r| r[3].parse::<u64>().is_ok()));
    }

    #[test]
    fn csv_slug_matches_the_documented_output_name() -> std::io::Result<()> {
        let t = Table::new("Synth Pareto online vs conventional", &["a"]);
        let dir = std::env::temp_dir().join("ola_synth_slug_test");
        let path = t.write_csv(&dir)?;
        assert!(path.ends_with("synth_pareto_online_vs_conventional.csv"), "{path:?}");
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
