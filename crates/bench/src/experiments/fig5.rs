//! Figure 5: per-chain-delay profile — probability of each chain delay,
//! the corresponding error magnitude, and their product, for
//! N ∈ {8, 12, 16, 32} (analytic model next to the Monte-Carlo estimate).

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_arith::online::Selection;
use ola_core::{model, montecarlo, InputModel};

/// Runs the Figure-5 experiment: one table per word length, each its own
/// checkpoint unit (the N=32 profile dominates the cost, so a resumed run
/// skips straight to it).
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn fig5(run: &crate::resume::ExperimentCtx, scale: Scale) -> Result<Vec<Table>, String> {
    let mut tables = Vec::new();
    for n in [8usize, 12, 16, 32] {
        tables.extend(run.unit(&format!("n{n}"), || Ok(vec![profile_table(n, scale)]))?);
    }
    Ok(tables)
}

fn profile_table(n: usize, scale: Scale) -> Table {
    let analytic = model::chain_delay_profile(n);
    let samples = if n >= 32 { scale.mc_samples() / 4 } else { scale.mc_samples() };
    let mc = montecarlo::om_monte_carlo(
        n,
        Selection::default(),
        InputModel::UniformDigits,
        samples.max(500),
        51,
    );
    // Note the two "probability" columns measure different things, as in
    // the paper's narrative: the model column is the expected number of
    // chains of delay d generated per multiplication (it can exceed 1 —
    // chains overlap in an OM), while the Monte-Carlo column is the
    // probability that the *slowest* chain settles at exactly d.
    let mut t = Table::new(
        format!("Fig5 chain delay profile N={n}"),
        &[
            "delay d",
            "model E[#chains]",
            "model eps_d",
            "model E*eps",
            "mc P(settle=d)",
            "mc eps_d",
            "mc P*eps",
        ],
    );
    let max_d = analytic
        .iter()
        .map(|p| p.delay)
        .chain(mc.profile.iter().map(|p| p.delay))
        .max()
        .unwrap_or(0);
    for d in 1..=max_d {
        let a = analytic.iter().find(|p| p.delay == d);
        let m = mc.profile.iter().find(|p| p.delay == d);
        t.push_row(vec![
            d.to_string(),
            a.map_or_else(|| "-".into(), |p| fmt_f(p.probability)),
            a.map_or_else(|| "-".into(), |p| fmt_f(p.error_magnitude)),
            a.map_or_else(|| "-".into(), |p| fmt_f(p.expectation())),
            m.map_or_else(|| "-".into(), |p| fmt_f(p.probability)),
            m.map_or_else(|| "-".into(), |p| fmt_f(p.error_magnitude)),
            m.map_or_else(|| "-".into(), |p| fmt_f(p.expectation())),
        ]);
    }
    t
}
