//! The reproduction experiments: one module per paper artifact family.
//!
//! Every function returns [`Table`](crate::report::Table)s that the `repro`
//! binary prints and saves as CSV; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

mod casestudy;
mod dsp;
mod equiv;
mod faults;
mod fig4;
mod fig5;
mod lint;
mod sta;
mod synth;
mod table4;

pub use casestudy::{fig6, fig7, table1, table2, table3, CaseStudyContext};
pub use dsp::dsp;
pub use equiv::equiv;
pub use faults::faults;
pub use fig4::fig4;
pub use fig5::fig5;
pub use lint::lint;
pub use sta::{om_certification, om_digit_weights, sta};
pub use synth::synth;
pub use table4::table4;

/// Experiment scale: `quick` shrinks sample counts and image sizes for CI;
/// `full` approaches the paper's statistical depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small samples/images; minutes of runtime.
    Quick,
    /// Paper-scale statistics; tens of minutes on one core.
    Full,
}

impl Scale {
    /// Monte-Carlo sample count for stage-wave experiments.
    #[must_use]
    pub fn mc_samples(self) -> usize {
        match self {
            Scale::Quick => 2_000,
            Scale::Full => 20_000,
        }
    }

    /// Sample count for gate-level operator sweeps.
    #[must_use]
    pub fn gate_samples(self) -> usize {
        match self {
            Scale::Quick => 60,
            Scale::Full => 250,
        }
    }

    /// Image side length for the table experiments.
    #[must_use]
    pub fn table_image_size(self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Full => 32,
        }
    }

    /// Image side length for the Figure 6/7 experiments.
    #[must_use]
    pub fn figure_image_size(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::Full => 64,
        }
    }

    /// Number of clock periods in the coarse frequency grids.
    #[must_use]
    pub fn grid_points(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 20,
        }
    }

    /// Sample count for the automatic event-driven spot-check that
    /// cross-validates batch-backend results (the first `N` samples of the
    /// same deterministic stream are re-judged on both engines).
    #[must_use]
    pub fn spot_check_samples(self) -> usize {
        match self {
            Scale::Quick => 16,
            Scale::Full => 64,
        }
    }
}

/// The master RNG seeds each experiment derives its sample streams from,
/// for the run manifest. These are the *roots* of every stochastic choice
/// an experiment makes; re-running with the same seeds (and scale and
/// backend) reproduces the outputs bit-for-bit. Experiments without a
/// stochastic component (sta, lint, table4) report an empty list.
#[must_use]
pub fn master_seeds(name: &str) -> Vec<(String, u64)> {
    let mk = |pairs: &[(&str, u64)]| pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect();
    match name {
        "fig4" => mk(&[("mc", 41), ("gate", 42), ("jitter", 2014)]),
        "fig5" => mk(&[("mc", 51)]),
        // Case-study images are generated per benchmark as
        // `1 + index-in-Benchmark::ALL`; record the base.
        "fig6" | "fig7" | "table1" | "table2" | "table3" => mk(&[("image_base", 1)]),
        "faults" => mk(&[("campaign", 0xFA_517E5)]),
        "synth" => mk(&[("explore", synth::SEED)]),
        "equiv" => mk(&[("verify", equiv::SEED)]),
        "dsp" => mk(&[("pack", dsp::SEED)]),
        _ => Vec::new(),
    }
}
