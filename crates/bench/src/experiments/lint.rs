//! `repro lint`: runs the netlist lint catalogue
//! ([`ola_netlist::sta::lint`]) over every generated operator family and
//! reports one row per circuit.
//!
//! Two halves:
//!
//! * **clean sweep** — every generator in the workspace must produce a
//!   lint-clean netlist (the generators call
//!   [`prune_dead`](ola_netlist::sta::prune_dead) themselves, so any issue
//!   here is a regression). The sweep covers both the hand-written
//!   operator families and every `ola-synth` style × adder-allocation
//!   variant of the 1×3 convolution datapath. A non-empty issue list
//!   fails the experiment, which is what lets CI run `repro lint --all`
//!   as a gate.
//! * **detector self-checks** — defects are deliberately seeded and the
//!   lint pass must flag each *statically* — no simulation, no
//!   `Unsettled` fallback: a combinational loop rewired into a copy of an
//!   online multiplier (via
//!   [`rewire_input`](ola_netlist::Netlist::rewire_input)), an output bus
//!   widened by repeating its MSB net (`output-width-mismatch`), and an
//!   odd inverter ring standing in for a digit recurrence fed back into
//!   its own slot (`non-settling-feedback`). Each self-check's row
//!   appears in the table with the expected code so the CSV documents the
//!   detectors working.

use crate::report::Table;
use ola_arith::synth::{
    array_multiplier, carry_select_adder, fused_online_mac, online_adder, online_mac,
    online_multiplier, ripple_carry_adder, traditional_mac,
};
use ola_netlist::sta::lint::{check, LintIssue};
use ola_netlist::Netlist;
use ola_redundant::{SdNumber, Q};
use ola_synth::{elaborate, optimize, AdderStructure, ElabOptions, InputFmt, Style};

/// Fixed MAC taps, chosen to fit every linted width (≥ 4 bits).
const TAPS: [i64; 3] = [5, -3, 7];

/// Online taps of magnitude `v/16`: large enough that every operand digit
/// influences the truncated output. (Taps near the representable minimum
/// constant-fold away the trailing operand digits entirely, which the lint
/// then — correctly — reports as unused inputs.)
fn online_taps(n: usize) -> Vec<SdNumber> {
    TAPS.iter().map(|&v| SdNumber::from_value(Q::new(v.into(), 4), n).expect("taps fit")).collect()
}

/// Operand widths linted per family: `--all` extends the sweep. Shared
/// with the `equiv` experiment so the two gates cover the same variants.
pub(crate) fn widths(all: bool) -> &'static [usize] {
    if all {
        &[4, 8, 12, 16, 24, 31]
    } else {
        &[8, 16]
    }
}

/// Every generated circuit family at width `n`, by name.
pub(crate) fn circuits(n: usize) -> Vec<(String, Netlist)> {
    vec![
        (format!("online adder N={n}"), online_adder(n).netlist),
        (format!("online mult N={n}"), online_multiplier(n, 3).netlist),
        (format!("online mac N={n}"), online_mac(&online_taps(n), 3).netlist),
        (format!("fused online mac N={n}"), fused_online_mac(&online_taps(n)).netlist),
        (format!("ripple adder W={n}"), ripple_carry_adder(n).netlist),
        (format!("carry-select adder W={n}"), carry_select_adder(n, 4).netlist),
        (format!("array mult W={n}"), array_multiplier(n).netlist),
        (format!("traditional mac W={n}"), traditional_mac(&TAPS, n).netlist),
    ]
}

/// Every `ola-synth` style × adder-allocation variant of the 1×3
/// convolution datapath at input width `n` — the compiler-generated
/// netlists the lint gate covers in addition to the hand-written operator
/// families.
pub(crate) fn synth_circuits(n: usize) -> Vec<(String, Netlist)> {
    // The conventional style lowers an n-digit input to an (n+1)-bit
    // two's-complement operand, and the Baugh–Wooley array caps operands
    // at 31 bits — skip the one sweep width that would overflow it.
    if n >= 31 {
        return Vec::new();
    }
    let dfg = ola_synth::parse_dfg(
        "y = a * 0.25 + b * 0.5 + c * 0.25",
        InputFmt { msd_pos: 1, digits: n },
    )
    .expect("convolution program parses");
    let mut out = Vec::new();
    for style in [Style::Online, Style::Conventional] {
        for alloc in [
            AdderStructure::LinearChain,
            AdderStructure::BalancedTree,
            AdderStructure::OnlineChained,
        ] {
            let dp = elaborate(&optimize(&dfg, alloc), &ElabOptions::new(style));
            out.push((format!("synth {}/{} N={n}", style.name(), alloc.name()), dp.netlist));
        }
    }
    out
}

fn issue_codes(issues: &[LintIssue]) -> String {
    if issues.is_empty() {
        "-".to_string()
    } else {
        let mut codes: Vec<&str> = issues.iter().map(LintIssue::code).collect();
        codes.dedup();
        codes.join(" ")
    }
}

/// Runs the lint experiment; `all` extends the width sweep for CI's
/// `repro lint --all` gate.
///
/// # Errors
///
/// If any generated circuit has lint issues, or the seeded-loop self-check
/// fails to report a `comb-loop` — either means the static analyzer or a
/// generator regressed.
pub fn lint(run: &crate::resume::ExperimentCtx, all: bool) -> Result<Vec<Table>, String> {
    run.unit("sweep", || lint_inner(all))
}

fn lint_inner(all: bool) -> Result<Vec<Table>, String> {
    let mut t =
        Table::new("Lint generated netlists", &["circuit", "nets", "issues", "codes", "details"]);
    let mut dirty: Vec<String> = Vec::new();
    for &n in widths(all) {
        for (name, nl) in circuits(n).into_iter().chain(synth_circuits(n)) {
            let issues = check(&nl);
            let details = issues.first().map_or_else(String::new, ToString::to_string);
            t.push_row(vec![
                name.clone(),
                nl.len().to_string(),
                issues.len().to_string(),
                issue_codes(&issues),
                details,
            ]);
            if !issues.is_empty() {
                dirty.push(format!("{name}: {}", issue_codes(&issues)));
            }
        }
    }

    // Detector self-check: seed a loop, expect a *static* diagnosis.
    let mut seeded = online_multiplier(8, 3).netlist;
    let (gate, later) = seed_loop(&mut seeded);
    let issues = check(&seeded);
    let caught = issues
        .iter()
        .any(|i| matches!(i, LintIssue::CombinationalLoop { cycle } if cycle.contains(&gate)));
    t.push_row(vec![
        "online mult N=8 + seeded loop".to_string(),
        seeded.len().to_string(),
        issues.len().to_string(),
        issue_codes(&issues),
        format!("seeded {gate:?}<-{later:?}; caught={caught}"),
    ]);

    if !caught {
        return Err(format!(
            "seeded combinational loop was not flagged (got: {})",
            issue_codes(&issues)
        ));
    }

    // Self-check 2: a duplicated output bit — the adder's sum port widened
    // by repeating its MSB logic net must trip `output-width-mismatch`.
    let mut dup = ripple_carry_adder(8).netlist;
    let mut widened = dup.output("sum").to_vec();
    let msb = *widened.last().expect("sum bus is nonempty");
    widened.push(msb);
    dup.set_output("sum", widened);
    let issues = check(&dup);
    let caught_width = issues.iter().any(|i| i.code() == "output-width-mismatch");
    t.push_row(vec![
        "ripple adder W=8 + repeated sum MSB".to_string(),
        dup.len().to_string(),
        issues.len().to_string(),
        issue_codes(&issues),
        format!("caught={caught_width}"),
    ]);
    if !caught_width {
        return Err(format!(
            "duplicated output bit was not flagged (got: {})",
            issue_codes(&issues)
        ));
    }

    // Self-check 3: an online digit-recurrence wired back into its own
    // digit slot — an odd inverter ring — must be diagnosed as feedback
    // that can *never* settle, not just as a loop.
    let mut osc = Netlist::new();
    let w = osc.input("w");
    let r1 = osc.not(w);
    let r2 = osc.not(r1);
    let r3 = osc.not(r2);
    osc.set_output("w_next", vec![r3]);
    osc.rewire_input(r1, 0, r3).expect("rewire accepts arbitrary sources");
    let issues = check(&osc);
    let caught_feedback = issues.iter().any(|i| i.code() == "non-settling-feedback");
    t.push_row(vec![
        "digit recurrence fed back combinationally".to_string(),
        osc.len().to_string(),
        issues.len().to_string(),
        issue_codes(&issues),
        format!("caught={caught_feedback}"),
    ]);
    if !caught_feedback {
        return Err(format!(
            "inverting recurrence feedback was not flagged as non-settling (got: {})",
            issue_codes(&issues)
        ));
    }

    // Self-check 4 (MAC family): the fused MAC's redundant sum bus widened
    // by repeating one of its computed digits must trip
    // `output-width-mismatch` just like a conventional bus would. (The bus
    // ends in constant padding, which may legitimately repeat — pick a
    // *logic* net.)
    let mut mac_wide = fused_online_mac(&online_taps(8)).netlist;
    let mut widened = mac_wide.output("sump").to_vec();
    let digit = *widened
        .iter()
        .find(|&&net| mac_wide.kind(net).is_logic())
        .expect("sump bus carries computed digits");
    widened.push(digit);
    mac_wide.set_output("sump", widened);
    let issues = check(&mac_wide);
    let caught_mac_width = issues.iter().any(|i| i.code() == "output-width-mismatch");
    t.push_row(vec![
        "fused online mac N=8 + repeated sump MSD".to_string(),
        mac_wide.len().to_string(),
        issues.len().to_string(),
        issue_codes(&issues),
        format!("caught={caught_mac_width}"),
    ]);
    if !caught_mac_width {
        return Err(format!(
            "duplicated MAC output digit was not flagged (got: {})",
            issue_codes(&issues)
        ));
    }

    // Self-check 5 (MAC family): an accumulator digit recurrence rewired
    // back into the fused MAC combinationally — an odd inversion ring fed
    // from the datapath — must be diagnosed as non-settling feedback.
    let mut mac_fb = fused_online_mac(&online_taps(8)).netlist;
    let src = mac_fb.output("sump")[0];
    let r1 = mac_fb.not(src);
    let r2 = mac_fb.not(r1);
    let r3 = mac_fb.not(r2);
    mac_fb.set_output("acc_next", vec![r3]);
    mac_fb.rewire_input(r1, 0, r3).expect("rewire accepts arbitrary sources");
    let issues = check(&mac_fb);
    let caught_mac_feedback = issues.iter().any(|i| i.code() == "non-settling-feedback");
    t.push_row(vec![
        "fused online mac N=8 + accumulator feedback".to_string(),
        mac_fb.len().to_string(),
        issues.len().to_string(),
        issue_codes(&issues),
        format!("caught={caught_mac_feedback}"),
    ]);
    if !caught_mac_feedback {
        return Err(format!(
            "MAC accumulator feedback was not flagged as non-settling (got: {})",
            issue_codes(&issues)
        ));
    }

    if !dirty.is_empty() {
        return Err(format!("{} circuit(s) have lint issues: {}", dirty.len(), dirty.join("; ")));
    }
    Ok(vec![t])
}

/// Rewires the input of a mid-netlist gate to a later-created gate's
/// output, closing a combinational cycle. Returns `(gate, new source)`.
fn seed_loop(nl: &mut Netlist) -> (ola_netlist::NetId, ola_netlist::NetId) {
    let n = nl.len();
    // Walk outward from the middle to find a logic gate, then a later
    // logic net downstream of it (its own fanout guarantees dependence).
    let gate = (n / 2..n)
        .map(|i| nl.net(i))
        .find(|&net| nl.kind(net).is_logic())
        .expect("generated multiplier has logic in its upper half");
    let later = (gate.index() + 1..n)
        .map(|i| nl.net(i))
        .find(|&net| nl.kind(net).is_logic() && nl.gate_inputs(net).contains(&gate))
        .expect("gate has downstream fanout");
    nl.rewire_input(gate, 0, later).expect("rewire accepts arbitrary sources");
    (gate, later)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_clean_and_catches_the_seeded_loop() {
        let tables = lint(&crate::resume::ExperimentCtx::ephemeral("lint"), false).unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // 2 widths × (8 families + 6 synth style/allocation variants)
        // + the five seeded detector self-check rows.
        assert_eq!(t.rows.len(), 33);
        let seeded = &t.rows[t.rows.len() - 5];
        assert!(seeded[3].contains("comb-loop"), "seeded row: {seeded:?}");
        let width_row = &t.rows[t.rows.len() - 4];
        assert!(width_row[3].contains("output-width-mismatch"), "width row: {width_row:?}");
        let feedback_row = &t.rows[t.rows.len() - 3];
        assert!(
            feedback_row[3].contains("non-settling-feedback"),
            "feedback row: {feedback_row:?}"
        );
        let mac_width_row = &t.rows[t.rows.len() - 2];
        assert!(
            mac_width_row[3].contains("output-width-mismatch"),
            "mac width row: {mac_width_row:?}"
        );
        let mac_feedback_row = t.rows.last().unwrap();
        assert!(
            mac_feedback_row[3].contains("non-settling-feedback"),
            "mac feedback row: {mac_feedback_row:?}"
        );
        // Every generated row is clean.
        for row in &t.rows[..t.rows.len() - 5] {
            assert_eq!(row[2], "0", "unexpected lint issues: {row:?}");
        }
    }

    #[test]
    fn all_flag_extends_the_width_sweep() {
        assert!(widths(true).len() > widths(false).len());
    }
}
