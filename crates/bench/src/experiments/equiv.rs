//! `repro equiv`: the formal-verification gate over the synthesis
//! pipeline.
//!
//! Three units, three CSVs:
//!
//! * **rewrites** (`equiv_pass_rewrites.csv`) — every variant of the lint
//!   suite (hand-written operator families *and* every `ola-synth`
//!   style × allocation variant of the 1×3 convolution kernel, same
//!   widths as `repro lint`) is checked pass-before vs pass-after:
//!   [`prune_dead`](ola_netlist::sta::prune_dead) must preserve the
//!   netlist bit-for-bit, and the optimizer pipeline
//!   ([`ola_synth::optimize`]) must preserve the IR's exact values —
//!   proved through [`ola_synth::prove_pass_equivalence`] (conventional
//!   elaboration + the staged equivalence checker). Any `MISMATCH` fails
//!   the experiment with the replayable counterexample in the message,
//!   which is what lets CI run `repro equiv` as a gate.
//! * **settled** (`equiv_online_vs_conventional.csv`) — for each kernel
//!   variant, the *online* and *conventional* elaborations are compared
//!   at settled `Ts` on a seeded random input stream: the conventional
//!   netlist must decode to exactly [`Dfg::eval_exact`]
//!   (it is exact by construction), and the online netlist must agree
//!   within the abstract interpreter's settled error bound
//!   ([`ola_synth::interpret`]) — the multiplier-truncation budget.
//! * **bounds** (`equiv_absint_bounds.csv`) — the explorer's empirical
//!   overclocking error curve ([`ola_synth::variant_error_curve`]) is
//!   swept against the abstract interpreter's per-`Ts` sampling bound
//!   ([`ola_synth::sampling_bounds`]); every measured point must sit at
//!   or below its bound.
//!
//! Everything here is deterministic (seeded streams, fixed grids);
//! verdict counters land under `ola.verify.*` in the run manifest's
//! metric delta.

use super::{lint, synth, Scale};
use crate::report::Table;
use crate::resume::ExperimentCtx;
use ola_core::SimBackend;
use ola_netlist::sta::prune_dead;
use ola_netlist::{analyze, check_equiv_with, EquivOptions, EquivVerdict, FpgaDelay, Netlist};
use ola_redundant::{BsVector, SdNumber, Q};
use ola_synth::{
    elaborate, interpret, optimize, parse_dfg, prove_pass_equivalence, sampling_bounds,
    AdderStructure, Dfg, ElabOptions, InputFmt, Style, SynthesizedDatapath,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Master seed for the settled-comparison input stream (recorded in the
/// run manifest via [`super::master_seeds`]).
pub(crate) const SEED: u64 = 0xE9_01AB;

/// Random settled-comparison vectors per kernel variant.
fn settled_samples(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 32,
        Scale::Full => 128,
    }
}

/// Equivalence options for the rewrite sweep: the node budget is kept
/// modest because multiplier netlists are ROBDD-hostile — the checker
/// falls through to the 64-lane random batch quickly instead of grinding.
fn sweep_options() -> EquivOptions {
    EquivOptions { bdd_node_budget: 1 << 18, ..EquivOptions::default() }
}

const ALLOCATIONS: [AdderStructure; 3] =
    [AdderStructure::LinearChain, AdderStructure::BalancedTree, AdderStructure::OnlineChained];

fn kernel_dfg(n: usize) -> Dfg {
    parse_dfg(synth::EXPR, InputFmt { msd_pos: 1, digits: n }).expect("kernel parses")
}

/// The fused-MAC counterpart of the convolution kernel: a 3-tap FIR bank
/// lowered through the [`Op::Mac`](ola_synth::Op) node, in both fusion
/// flavours so the rewrite unit can prove fused ≡ tree-of-multiplies.
fn mac_dfg(n: usize, fusion: ola_synth::MacFusion) -> Dfg {
    ola_synth::fir_bank(3, fusion, InputFmt { msd_pos: 1, digits: n })
}

/// Runs the formal-verification experiment; `all` extends the width sweep
/// to match `repro lint --all`.
///
/// # Errors
///
/// If any rewrite proof mismatches, any settled comparison exceeds its
/// bound, or any measured error point exceeds its abstract-interpretation
/// bound.
pub fn equiv(
    run: &ExperimentCtx,
    scale: Scale,
    all: bool,
    backend: SimBackend,
) -> Result<Vec<Table>, String> {
    let mut tables = run.unit("rewrites", || rewrites_unit(all))?;
    tables.extend(run.unit("settled", move || settled_unit(scale, all))?);
    tables.extend(run.unit("bounds", move || bounds_unit(scale, backend))?);
    Ok(tables)
}

/// Records a verdict in the `ola.verify.*` counters and renders its label.
fn tally(verdict: &EquivVerdict) -> String {
    let reg = ola_core::obs::registry();
    reg.counter("ola.verify.equiv_checks").inc();
    if !verdict.is_equivalent() {
        reg.counter("ola.verify.equiv_mismatches").inc();
    }
    format!("{} ({})", verdict.label(), verdict.method().name())
}

fn rewrites_unit(all: bool) -> Result<Vec<Table>, String> {
    let mut t = Table::new(
        "Equiv pass rewrites",
        &["circuit", "rewrite", "nets before", "nets after", "verdict"],
    );
    let mut bad: Vec<String> = Vec::new();
    let opts = sweep_options();

    fn prune_row(
        t: &mut Table,
        bad: &mut Vec<String>,
        opts: &EquivOptions,
        name: &str,
        nl: &Netlist,
    ) {
        let pruned = prune_dead(nl).expect("generated netlists are DAGs");
        let verdict = check_equiv_with(nl, &pruned, opts)
            .unwrap_or_else(|e| panic!("{name}: prune changed the interface: {e}"));
        if let EquivVerdict::Mismatch { counterexample, .. } = &verdict {
            bad.push(format!("{name}: prune-dead mismatch: {counterexample}"));
        }
        let label = tally(&verdict);
        t.push_row(vec![
            name.to_owned(),
            "prune-dead".into(),
            nl.len().to_string(),
            pruned.len().to_string(),
            label,
        ]);
    }

    for &n in lint::widths(all) {
        // Hand-written operator families: the generators prune themselves,
        // so this re-proves idempotence (structural hit) — and would catch
        // a prune_dead regression on every family shape.
        for (name, nl) in lint::circuits(n) {
            prune_row(&mut t, &mut bad, &opts, &name, &nl);
        }
        // Compiler-generated variants: prove the elaborator's prune for
        // real (unpruned vs pruned netlists differ), and the optimizer
        // pipeline at the IR level via conventional elaboration.
        if n >= 31 {
            continue; // Baugh–Wooley operand cap, as in the lint sweep.
        }
        let dfg = kernel_dfg(n);
        for style in [Style::Online, Style::Conventional] {
            for alloc in ALLOCATIONS {
                let name = format!("synth {}/{} N={n}", style.name(), alloc.name());
                let opt = optimize(&dfg, alloc);
                let unpruned = elaborate(&opt, &ElabOptions::new(style).with_prune(false)).netlist;
                prune_row(&mut t, &mut bad, &opts, &name, &unpruned);
                if style == Style::Conventional {
                    // The pipeline proof is style-independent (it runs on
                    // the conventional lowering); one row per allocation.
                    match prove_pass_equivalence(&dfg, &opt) {
                        None => {
                            ola_core::obs::registry().counter("ola.verify.prove_skipped").inc();
                            t.push_row(vec![
                                name.clone(),
                                "optimize".into(),
                                dfg.len().to_string(),
                                opt.len().to_string(),
                                "SKIPPED (width caps)".into(),
                            ]);
                        }
                        Some(verdict) => {
                            if let EquivVerdict::Mismatch { counterexample, .. } = &verdict {
                                bad.push(format!("{name}: optimize mismatch: {counterexample}"));
                            }
                            let label = tally(&verdict);
                            t.push_row(vec![
                                name,
                                "optimize".into(),
                                dfg.len().to_string(),
                                opt.len().to_string(),
                                label,
                            ]);
                        }
                    }
                }
            }
        }
        // Fusion proof: the fused MAC graph must compute exactly what the
        // unfused tree-of-multiplies computes — proved in the conventional
        // domain through the staged checker. Wide operands overflow the
        // Baugh–Wooley product cap and are reported as SKIPPED, like the
        // optimizer proofs.
        let fused = mac_dfg(n, ola_synth::MacFusion::Fused);
        let unfused = mac_dfg(n, ola_synth::MacFusion::Unfused);
        let name = format!("mac fused-vs-unfused N={n}");
        match prove_pass_equivalence(&unfused, &fused) {
            None => {
                ola_core::obs::registry().counter("ola.verify.prove_skipped").inc();
                t.push_row(vec![
                    name,
                    "fuse-mac".into(),
                    unfused.len().to_string(),
                    fused.len().to_string(),
                    "SKIPPED (width caps)".into(),
                ]);
            }
            Some(verdict) => {
                if let EquivVerdict::Mismatch { counterexample, .. } = &verdict {
                    bad.push(format!("{name}: fuse-mac mismatch: {counterexample}"));
                }
                let label = tally(&verdict);
                t.push_row(vec![
                    name,
                    "fuse-mac".into(),
                    unfused.len().to_string(),
                    fused.len().to_string(),
                    label,
                ]);
            }
        }
    }

    if bad.is_empty() {
        Ok(vec![t])
    } else {
        Err(format!("{} rewrite proof(s) failed: {}", bad.len(), bad.join("; ")))
    }
}

/// Draws one in-range exact value per kernel input.
fn draw_values(rng: &mut ChaCha8Rng, digits: usize, count: usize) -> Vec<Q> {
    let bound = (1i128 << digits) - 1;
    (0..count).map(|_| Q::new(rng.gen_range(-bound..=bound), digits as u32)).collect()
}

/// Encodes exact values into the online datapath's flat input bits via
/// the datapath's own borrow-save encoder.
fn encode_online(dp: &SynthesizedDatapath, values: &[Q], digits: usize) -> Vec<bool> {
    let windows: Vec<_> = values
        .iter()
        .map(|&v| BsVector::from_sd(&SdNumber::from_value(v, digits).expect("in range")))
        .collect();
    dp.encode_inputs_online(&windows)
}

/// Runs one settled online-vs-conventional comparison and appends its
/// row; unsound variants land in `bad`.
#[allow(clippy::too_many_arguments)]
fn settled_variant(
    t: &mut Table,
    bad: &mut Vec<String>,
    name: &str,
    dfg: &Dfg,
    alloc: AdderStructure,
    n: usize,
    samples: usize,
    seed: u64,
) {
    let opt = optimize(dfg, alloc);
    let online = elaborate(&opt, &ElabOptions::new(Style::Online));
    let tc = elaborate(&opt, &ElabOptions::new(Style::Conventional));
    let bound = interpret(&opt, Style::Online).settled_error_bounds()[0];
    // `Netlist::eval` answers per-net; `decode_output` reads the
    // `output_wires()` projection of that answer.
    let settle = |dp: &SynthesizedDatapath, bits: &[bool]| -> Q {
        let vals = dp.netlist.eval(bits);
        let wires = dp.output_wires();
        let sampled: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
        dp.decode_output(0, &sampled)
    };
    let inputs = dfg.inputs().len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut worst = Q::ZERO;
    let mut tc_exact = true;
    for _ in 0..samples {
        let values = draw_values(&mut rng, n, inputs);
        let exact = dfg.eval_exact(&values)[0];
        let diff = (settle(&online, &encode_online(&online, &values, n)) - exact).abs();
        if diff > worst {
            worst = diff;
        }
        tc_exact &= settle(&tc, &tc.encode_inputs_tc(&values)) == exact;
    }
    let sound = worst <= bound && tc_exact;
    if !sound {
        bad.push(format!(
            "{name}: worst online error {} vs bound {} (tc exact: {tc_exact})",
            worst.to_f64(),
            bound.to_f64()
        ));
    }
    ola_core::obs::registry().counter("ola.verify.settled_comparisons").inc();
    t.push_row(vec![
        name.to_owned(),
        samples.to_string(),
        tc_exact.to_string(),
        format!("{:.3e}", worst.to_f64()),
        format!("{:.3e}", bound.to_f64()),
        if sound { "yes" } else { "NO" }.to_string(),
    ]);
}

fn settled_unit(scale: Scale, all: bool) -> Result<Vec<Table>, String> {
    let mut t = Table::new(
        "Equiv online vs conventional",
        &["variant", "samples", "tc exact", "worst online error", "absint bound", "sound"],
    );
    let mut bad: Vec<String> = Vec::new();
    let samples = settled_samples(scale);
    for &n in lint::widths(all) {
        if n >= 31 {
            continue;
        }
        let dfg = kernel_dfg(n);
        let mac = mac_dfg(n, ola_synth::MacFusion::Fused);
        for alloc in ALLOCATIONS {
            let seed = SEED ^ ((n as u64) << 8) ^ alloc as u64;
            settled_variant(
                &mut t,
                &mut bad,
                &format!("kernel {} N={n}", alloc.name()),
                &dfg,
                alloc,
                n,
                samples,
                seed,
            );
            // The fused MAC is settled-*exact*: its absint bound is zero,
            // so this row demands bit-for-bit agreement with `eval_exact`.
            settled_variant(
                &mut t,
                &mut bad,
                &format!("mac fused {} N={n}", alloc.name()),
                &mac,
                alloc,
                n,
                samples,
                seed ^ 0x11AC,
            );
        }
    }
    if bad.is_empty() {
        Ok(vec![t])
    } else {
        Err(format!("{} settled comparison(s) unsound: {}", bad.len(), bad.join("; ")))
    }
}

fn bounds_unit(scale: Scale, backend: SimBackend) -> Result<Vec<Table>, String> {
    let mut t = Table::new(
        "Equiv absint bounds",
        &["variant", "ts", "measured mean error", "absint bound", "sound"],
    );
    let mut bad: Vec<String> = Vec::new();
    let delay = FpgaDelay::default();
    let points = scale.grid_points();
    for &n in &[4usize, 8] {
        let dfgs = [("kernel", kernel_dfg(n)), ("mac", mac_dfg(n, ola_synth::MacFusion::Fused))];
        for ((label, dfg), style) in
            dfgs.iter().flat_map(|d| [Style::Online, Style::Conventional].map(move |s| (d, s)))
        {
            let dp: SynthesizedDatapath =
                elaborate(&optimize(dfg, AdderStructure::BalancedTree), &ElabOptions::new(style));
            let critical = analyze(&dp.netlist, &delay).critical_path().max(1);
            let ts_grid: Vec<u64> = (1..=points as u64)
                .map(|i| (critical * i).div_ceil(points as u64).max(1))
                .collect();
            let bounds = sampling_bounds(&dp, &delay, &ts_grid)
                .map_err(|e| format!("sampling bounds: {e}"))?;
            let (curve, _) = ola_synth::variant_error_curve(
                &dp,
                &delay,
                &ts_grid,
                scale.gate_samples(),
                SEED,
                backend,
            );
            for (i, &ts) in ts_grid.iter().enumerate() {
                let measured = curve.mean_abs_error[i];
                let bound = bounds.total_f64(i);
                let sound = measured <= bound;
                let name = format!("{label} {} tree N={n}", style.name());
                if !sound {
                    bad.push(format!("{name} ts={ts}: measured {measured} > bound {bound}"));
                }
                t.push_row(vec![
                    name,
                    ts.to_string(),
                    format!("{measured:.3e}"),
                    format!("{bound:.3e}"),
                    if sound { "yes" } else { "NO" }.to_string(),
                ]);
            }
        }
    }
    if bad.is_empty() {
        Ok(vec![t])
    } else {
        Err(format!("{} bound violation(s): {}", bad.len(), bad.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_default_sweep_is_sound() {
        let tables =
            equiv(&ExperimentCtx::ephemeral("equiv"), Scale::Quick, false, SimBackend::Auto)
                .unwrap();
        assert_eq!(tables.len(), 3);
        // Every verdict row is equivalent/probably-equivalent, never
        // MISMATCH (a failure would have surfaced as Err).
        for row in &tables[0].rows {
            assert!(!row[4].starts_with("mismatch"), "row: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[5], "yes", "unsound settled row: {row:?}");
        }
        for row in &tables[2].rows {
            assert_eq!(row[4], "yes", "unsound bound row: {row:?}");
        }
    }
}
