//! Figure 4: expectation of overclocking error — analytic model vs
//! stage-wave Monte-Carlo (top row) and vs gate-level "FPGA" simulation
//! with jittered delays (bottom row), for 8- and 12-digit multipliers.

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_arith::online::{Selection, DELTA};
use ola_arith::synth::online_multiplier;
use ola_core::empirical::om_gate_level_curve;
use ola_core::{model, montecarlo, InputModel};
use ola_netlist::{analyze, FpgaDelay, JitteredDelay};

/// Runs the Figure-4 experiment. Returns one stage-domain table and one
/// gate-level table per word length.
#[must_use]
pub fn fig4(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for n in [8usize, 12] {
        tables.push(stage_domain(n, scale));
        tables.push(gate_domain(n, scale));
    }
    tables
}

fn stage_domain(n: usize, scale: Scale) -> Table {
    let mc = montecarlo::om_monte_carlo(
        n,
        Selection::default(),
        InputModel::UniformDigits,
        scale.mc_samples(),
        41,
    );
    // Calibrate the model's per-digit error factor once per word length at
    // the first overlapping point (the paper likewise matches curves up to
    // the unmodelled absolute scale).
    let gamma = calibrate_gamma(n, &mc.curve.mean_abs_error);
    let mut t = Table::new(
        format!("Fig4 stage domain N={n} (model vs Monte-Carlo)"),
        &["b", "Ts/T0", "model E_ovc", "mc E_ovc", "mc violation rate"],
    );
    for (b, ts_norm, err, viol) in mc.curve.points() {
        t.push_row(vec![
            b.to_string(),
            format!("{ts_norm:.3}"),
            fmt_f(model::expected_error(n, b, gamma)),
            fmt_f(err),
            fmt_f(viol),
        ]);
    }
    t
}

fn calibrate_gamma(n: usize, mc_err: &[f64]) -> f64 {
    for (b, &e) in mc_err.iter().enumerate().skip(DELTA + 1) {
        let m = model::expected_error(n, b, 1.0);
        if e > 0.0 && m > 0.0 {
            return e / m;
        }
    }
    1.0
}

fn gate_domain(n: usize, scale: Scale) -> Table {
    let circuit = online_multiplier(n, 3);
    let delay = JitteredDelay::new(FpgaDelay::default(), 15, 2014);
    let rated = analyze(&circuit.netlist, &delay).critical_path();
    let points = scale.grid_points();
    let ts: Vec<u64> = (1..=points).map(|k| rated * k as u64 / points as u64).collect();
    let curve = om_gate_level_curve(
        &circuit,
        &delay,
        InputModel::UniformDigits,
        &ts,
        scale.gate_samples(),
        42,
    );
    let mut t = Table::new(
        format!("Fig4 gate level N={n} (jittered-delay netlist)"),
        &["Ts", "Ts/rated", "mean |error|", "violation rate"],
    );
    for (ts, norm, err, viol) in curve.points() {
        t.push_row(vec![ts.to_string(), format!("{norm:.3}"), fmt_f(err), fmt_f(viol)]);
    }
    t
}
