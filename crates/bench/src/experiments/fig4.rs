//! Figure 4: expectation of overclocking error — analytic model vs
//! stage-wave Monte-Carlo (top row) and vs gate-level "FPGA" simulation
//! with jittered delays (bottom row), for 8- and 12-digit multipliers.
//!
//! The gate-level sweep is backend-pluggable: with a batch-exact delay
//! model the bit-parallel engine carries the load (and an automatic
//! event-driven spot-check re-judges the first samples on both engines);
//! the paper's jittered-delay emulation is not batch-exact, so it
//! transparently takes the event-driven path whatever the flag says.

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_arith::online::{Selection, DELTA};
use ola_arith::synth::online_multiplier;
use ola_core::empirical::om_gate_level_curve_with;
use ola_core::{model, montecarlo, InputModel, SimBackend, StaGate};
use ola_netlist::{analyze, FpgaDelay, JitteredDelay};

/// Runs the Figure-4 experiment. Returns one stage-domain table and one
/// gate-level table per word length; each `(domain, N)` pair is its own
/// checkpoint unit, so an interrupted run resumes mid-figure.
///
/// # Errors
///
/// If the batch engine ran and its event-driven spot-check disagreed —
/// which would mean the two simulation backends are no longer
/// bit-identical.
pub fn fig4(
    run: &crate::resume::ExperimentCtx,
    scale: Scale,
    backend: SimBackend,
) -> Result<Vec<Table>, String> {
    let mut tables = Vec::new();
    for n in [8usize, 12] {
        tables.extend(run.unit(&format!("stage.n{n}"), || Ok(vec![stage_domain(n, scale)]))?);
        tables
            .extend(run.unit(&format!("gate.n{n}"), || Ok(vec![gate_domain(n, scale, backend)?]))?);
    }
    Ok(tables)
}

fn stage_domain(n: usize, scale: Scale) -> Table {
    let mc = montecarlo::om_monte_carlo(
        n,
        Selection::default(),
        InputModel::UniformDigits,
        scale.mc_samples(),
        41,
    );
    // Calibrate the model's per-digit error factor once per word length at
    // the first overlapping point (the paper likewise matches curves up to
    // the unmodelled absolute scale).
    let gamma = calibrate_gamma(n, &mc.curve.mean_abs_error);
    let mut t = Table::new(
        format!("Fig4 stage domain N={n} (model vs Monte-Carlo)"),
        &["b", "Ts/T0", "model E_ovc", "mc E_ovc", "mc violation rate"],
    );
    for (b, ts_norm, err, viol) in mc.curve.points() {
        t.push_row(vec![
            b.to_string(),
            format!("{ts_norm:.3}"),
            fmt_f(model::expected_error(n, b, gamma)),
            fmt_f(err),
            fmt_f(viol),
        ]);
    }
    t
}

fn calibrate_gamma(n: usize, mc_err: &[f64]) -> f64 {
    for (b, &e) in mc_err.iter().enumerate().skip(DELTA + 1) {
        let m = model::expected_error(n, b, 1.0);
        if e > 0.0 && m > 0.0 {
            return e / m;
        }
    }
    1.0
}

fn gate_domain(n: usize, scale: Scale, backend: SimBackend) -> Result<Table, String> {
    let circuit = online_multiplier(n, 3);
    let delay = JitteredDelay::new(FpgaDelay::default(), 15, 2014);
    let rated = analyze(&circuit.netlist, &delay).critical_path();
    let points = scale.grid_points();
    let ts: Vec<u64> = (1..=points).map(|k| rated * k as u64 / points as u64).collect();
    ola_core::obs::annotate(
        format!("fig4.n{n}.ts_grid"),
        format_args!("{points} points, {}..={} (rated {rated})", ts[0], ts[points - 1]),
    );
    let (curve, stats) = om_gate_level_curve_with(
        &circuit,
        &delay,
        InputModel::UniformDigits,
        &ts,
        scale.gate_samples(),
        42,
        backend,
        StaGate::On,
    );
    eprintln!("  [fig4] gate level N={n}: {}", stats.summary());
    if stats.batch_runs > 0 {
        // Re-judge the first samples of the same deterministic stream on
        // both engines; any disagreement poisons the experiment.
        let spot = scale.spot_check_samples();
        let run = |b| {
            om_gate_level_curve_with(
                &circuit,
                &delay,
                InputModel::UniformDigits,
                &ts,
                spot,
                42,
                b,
                StaGate::On,
            )
            .0
        };
        if run(SimBackend::Event) != run(SimBackend::Batch) {
            return Err(format!("fig4 N={n}: batch/event spot-check mismatch over {spot} samples"));
        }
        eprintln!("  [fig4] gate level N={n}: event spot-check of {spot} samples OK");
    }
    let mut t = Table::new(
        format!("Fig4 gate level N={n} (jittered-delay netlist)"),
        &["Ts", "Ts/rated", "mean |error|", "violation rate"],
    );
    for (ts, norm, err, viol) in curve.points() {
        t.push_row(vec![ts.to_string(), format!("{norm:.3}"), fmt_f(err), fmt_f(viol)]);
    }
    Ok(t)
}
