//! `repro dsp`: the fused-MAC DSP workload pack.
//!
//! Three kernel families come out of the [`ola_synth::dsp`] generators —
//! FIR tap banks, a separable 2-D convolution, and a small dense
//! mat-vec — each compiled twice through the online elaborator: once
//! through the fused [`Op::Mac`](ola_synth::Op) lowering (digit-serial
//! partial products folded into one redundant carry-save accumulation,
//! never collapsed between terms) and once as the unfused
//! tree-of-multiplies. Per `(kernel, size, width, fusion)` variant the
//! sweep records:
//!
//! * **LUT area** and the **STA rated frequency** of the online netlist;
//! * the empirical **overclocking error curve** over a Ts grid shared
//!   between the fused and unfused flavours (so their error columns are
//!   comparable point for point), executed on **both** simulation
//!   engines — the event-driven reference and the wide-lane batch
//!   engine — and required to be bit-identical;
//! * the batch engine's **lane-transition count** — the equivalent
//!   event-driven work, used here as the switching-activity /
//!   interconnect-energy proxy;
//! * a per-point soundness check of the abstract interpreter's
//!   [`sampling_bounds`](ola_synth::sampling_bounds) against the
//!   measured curve (every measured mean error must sit at or below its
//!   bound).
//!
//! The experiment *fails* unless, at every swept `(kernel, size, width)`
//! triple, the fused datapath beats the unfused one on settled latency
//! (STA critical path) or on transition-count activity — the fused-MAC
//! dominance claim — and unless every bounds check is sound. Two CSVs:
//! `dsp_fused_vs_unfused_online_macs.csv` (one row per variant) and
//! `dsp_fused_dominance_by_width.csv` (one row per triple). All columns
//! are simulation-domain counts — no wall-clock figures — so cached
//! replays and recomputations render bit-identical tables; engine
//! *throughput* comparisons live in the `dsp_gate` binary instead.

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_core::obs::json::{self, JsonValue};
use ola_core::{CacheConfig, CacheKey, ContentCache, SimBackend};
use ola_netlist::{analyze, area, FpgaDelay};
use ola_synth::{
    conv2d_separable, elaborate, fir_bank, matvec, optimize, sampling_bounds, ts_grid,
    variant_error_curve, AdderStructure, Dfg, ElabOptions, InputFmt, MacFusion, Style,
};
use std::path::PathBuf;
use std::sync::OnceLock;

/// Master seed for the empirical error curves (recorded in the run
/// manifest via [`super::master_seeds`]).
pub(crate) const SEED: u64 = 0xD5_90AC;

/// One kernel instance of the pack: `rows` is only meaningful for the
/// mat-vec kernel (its column count is `size`).
#[derive(Clone, Copy)]
struct Kernel {
    kind: &'static str,
    size: usize,
    rows: usize,
}

impl Kernel {
    fn label(self) -> String {
        match self.kind {
            "matvec" => format!("matvec {}x{}", self.rows, self.size),
            "conv2d" => format!("conv2d {0}x{0}", self.size),
            _ => format!("fir {} taps", self.size),
        }
    }

    fn build(self, fusion: MacFusion, width: usize) -> Dfg {
        let fmt = InputFmt { msd_pos: 1, digits: width };
        match self.kind {
            "matvec" => matvec(self.rows, self.size, fusion, fmt),
            "conv2d" => conv2d_separable(self.size, fusion, fmt),
            _ => fir_bank(self.size, fusion, fmt),
        }
    }
}

/// The swept `(kernel, widths)` pack per scale. Full scale includes the
/// 16-tap / 16-digit FIR the `dsp_gate` acceptance benchmark pins.
fn pack(scale: Scale) -> Vec<(Kernel, Vec<usize>)> {
    let fir = |size| Kernel { kind: "fir", size, rows: 0 };
    let conv = |size| Kernel { kind: "conv2d", size, rows: 0 };
    let mv = |rows, size| Kernel { kind: "matvec", size, rows };
    match scale {
        Scale::Quick => vec![(fir(4), vec![4, 6]), (conv(2), vec![4]), (mv(2, 2), vec![4])],
        Scale::Full => vec![
            (fir(4), vec![4, 8]),
            (fir(8), vec![8]),
            (fir(16), vec![8, 16]),
            (conv(3), vec![4, 8]),
            (mv(3, 3), vec![4, 8]),
        ],
    }
}

/// Error-sweep samples per variant. Deliberately smaller than
/// [`Scale::gate_samples`]: every variant sweeps on *both* engines, and
/// the event-driven arm of the width-16 unfused tree (45k nets) costs
/// seconds per sample — the dominance and soundness checks are about
/// deterministic counts, not Monte-Carlo depth.
fn samples(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 24,
        Scale::Full => 64,
    }
}

/// The process-wide result cache (same [`ContentCache`] pattern as
/// `repro synth`): a repeated `repro dsp` at the same scale warm-hits
/// instead of re-simulating. Disk tier via `OLA_CACHE_DIR`.
fn cache() -> &'static ContentCache {
    static CACHE: OnceLock<ContentCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let disk_dir =
            std::env::var("OLA_CACHE_DIR").ok().filter(|d| !d.is_empty()).map(PathBuf::from);
        ContentCache::new(CacheConfig { capacity: 64, disk_dir, ..CacheConfig::default() })
    })
}

/// Canonical text whose SHA-256 is the sweep's content address.
fn canonical(scale: Scale) -> String {
    let work: Vec<String> =
        pack(scale).iter().map(|(k, widths)| format!("{}:{:?}", k.label(), widths)).collect();
    format!(
        "repro-dsp/v1 pack={work:?} ts={} samples={} seed={SEED:#x}",
        scale.grid_points(),
        samples(scale),
    )
}

/// Everything measured for one `(kernel, width, fusion)` variant.
struct Measured {
    luts: usize,
    critical: u64,
    rated_mhz: Option<f64>,
    mean_error: f64,
    worst_violation: f64,
    sta_skipped: u64,
    transitions: u64,
    identical: bool,
    sound: bool,
}

/// Compiles one flavour and sweeps it on both engines over `grid`.
fn measure(
    kernel: Kernel,
    fusion: MacFusion,
    width: usize,
    grid: &[u64],
    samples: usize,
    delay: &FpgaDelay,
) -> Result<Measured, String> {
    let dfg = kernel.build(fusion, width);
    let dp =
        elaborate(&optimize(&dfg, AdderStructure::BalancedTree), &ElabOptions::new(Style::Online));
    let report = analyze(&dp.netlist, delay);
    let luts = area::estimate(&dp.netlist, 4).luts;

    let seed = SEED ^ ((width as u64) << 16) ^ (kernel.size as u64) << 4 ^ fusion as u64;
    let (ev_curve, _ev) = variant_error_curve(&dp, delay, grid, samples, seed, SimBackend::Event);
    let (ba_curve, ba) = variant_error_curve(&dp, delay, grid, samples, seed, SimBackend::Batch);
    let identical = ev_curve == ba_curve;

    let bounds = sampling_bounds(&dp, delay, grid).map_err(|e| format!("sampling bounds: {e}"))?;
    let sound = (0..grid.len()).all(|i| ev_curve.mean_abs_error[i] <= bounds.total_f64(i));

    let mean = ev_curve.mean_abs_error.iter().sum::<f64>() / ev_curve.mean_abs_error.len() as f64;
    let worst = ev_curve.violation_rate.iter().copied().fold(0.0f64, f64::max);
    ola_core::obs::registry().counter("ola.dsp.variants_evaluated").inc();
    Ok(Measured {
        luts,
        critical: report.critical_path(),
        rated_mhz: report.rated_frequency(),
        mean_error: mean,
        worst_violation: worst,
        sta_skipped: ba.sta_skipped_points,
        transitions: ba.lane_transitions,
        identical,
        sound,
    })
}

/// Runs the DSP workload pack.
///
/// # Errors
///
/// If the fused flavour fails to dominate the unfused one on settled
/// latency or activity at any swept `(kernel, size, width)`, if any
/// engine pair disagrees, or if any measured error point exceeds its
/// abstract-interpretation bound.
pub fn dsp(run: &crate::resume::ExperimentCtx, scale: Scale) -> Result<Vec<Table>, String> {
    run.unit("pack", || dsp_inner(scale))
}

fn dsp_inner(scale: Scale) -> Result<Vec<Table>, String> {
    ola_core::obs::annotate(
        "dsp.pack",
        format_args!(
            "{} kernel instances, {} Ts points x {} samples, both engines",
            pack(scale).len(),
            scale.grid_points(),
            samples(scale)
        ),
    );
    let key = CacheKey::of(canonical(scale).as_bytes());
    let (bytes, lookup) = cache().get_or_compute(&key, || {
        let tables = sweep_and_render(scale)?;
        let doc = JsonValue::Array(tables.iter().map(Table::to_json).collect());
        Ok::<_, String>(doc.render().into_bytes())
    })?;
    ola_core::obs::annotate("dsp.cache", format_args!("{} {}", lookup.label(), key.hex()));
    if lookup.is_hit() {
        eprintln!("  [dsp] warm {} for key {}", lookup.label(), &key.hex()[..12]);
    }
    let text = std::str::from_utf8(&bytes).map_err(|_| "cached sweep is not utf-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("cached sweep unparseable: {e}"))?;
    doc.as_array()
        .ok_or_else(|| "cached sweep is not an array".to_string())?
        .iter()
        .map(|t| Table::from_json(t).ok_or_else(|| "cached table malformed".to_string()))
        .collect()
}

fn sweep_and_render(scale: Scale) -> Result<Vec<Table>, String> {
    let delay = FpgaDelay::default();
    let samples = samples(scale);
    let points = scale.grid_points();

    let mut variants = Table::new(
        "DSP fused vs unfused online MACs",
        &[
            "kernel",
            "width",
            "fusion",
            "luts",
            "critical_path",
            "rated_mhz",
            "mean_error",
            "worst_violation_rate",
            "sta_skipped",
            "transitions",
            "engines_identical",
            "bounds_sound",
        ],
    );
    let mut dominance = Table::new(
        "DSP fused dominance by width",
        &[
            "kernel",
            "width",
            "latency_fused",
            "latency_unfused",
            "transitions_fused",
            "transitions_unfused",
            "dominates",
        ],
    );
    let mut bad: Vec<String> = Vec::new();

    for (kernel, widths) in pack(scale) {
        for width in widths {
            // One Ts grid per (kernel, width), spanning the *slower*
            // flavour's critical path, so the fused and unfused error
            // columns sample identical periods.
            let span = [MacFusion::Fused, MacFusion::Unfused]
                .iter()
                .map(|&f| {
                    let dp = elaborate(
                        &optimize(&kernel.build(f, width), AdderStructure::BalancedTree),
                        &ElabOptions::new(Style::Online),
                    );
                    analyze(&dp.netlist, &delay).critical_path()
                })
                .max()
                .unwrap_or(1)
                .max(1);
            let grid = ts_grid(span, points);

            let fused = measure(kernel, MacFusion::Fused, width, &grid, samples, &delay)?;
            let unfused = measure(kernel, MacFusion::Unfused, width, &grid, samples, &delay)?;
            let name = kernel.label();
            for (fusion, m) in [("fused", &fused), ("unfused", &unfused)] {
                if !m.identical {
                    bad.push(format!("{name} W={width} {fusion}: engines disagree"));
                }
                if !m.sound {
                    bad.push(format!(
                        "{name} W={width} {fusion}: measured error exceeds its absint bound"
                    ));
                }
                variants.push_row(vec![
                    name.clone(),
                    width.to_string(),
                    fusion.to_string(),
                    m.luts.to_string(),
                    m.critical.to_string(),
                    m.rated_mhz.map_or_else(|| "-".to_string(), fmt_f),
                    fmt_f(m.mean_error),
                    fmt_f(m.worst_violation),
                    m.sta_skipped.to_string(),
                    m.transitions.to_string(),
                    m.identical.to_string(),
                    m.sound.to_string(),
                ]);
            }
            let dominates =
                fused.critical < unfused.critical || fused.transitions < unfused.transitions;
            if !dominates {
                bad.push(format!(
                    "{name} W={width}: fused MAC dominates on neither settled latency \
                     ({} vs {}) nor activity ({} vs {})",
                    fused.critical, unfused.critical, fused.transitions, unfused.transitions
                ));
            }
            dominance.push_row(vec![
                name,
                width.to_string(),
                fused.critical.to_string(),
                unfused.critical.to_string(),
                fused.transitions.to_string(),
                unfused.transitions.to_string(),
                dominates.to_string(),
            ]);
        }
    }

    if bad.is_empty() {
        Ok(vec![variants, dominance])
    } else {
        Err(format!("{} dsp check(s) failed: {}", bad.len(), bad.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pack_shows_fused_dominance_everywhere() {
        let tables = dsp(&crate::resume::ExperimentCtx::ephemeral("dsp"), Scale::Quick).unwrap();
        assert_eq!(tables.len(), 2);
        let variants = &tables[0];
        // 4 (kernel, width) pairs x 2 fusion flavours.
        assert_eq!(variants.rows.len(), 8);
        for row in &variants.rows {
            assert_eq!(row[10], "true", "engine mismatch: {row:?}");
            assert_eq!(row[11], "true", "unsound bound: {row:?}");
        }
        let dom = &tables[1];
        assert_eq!(dom.rows.len(), 4);
        for row in &dom.rows {
            assert_eq!(row[6], "true", "fused fails to dominate: {row:?}");
        }
        // The fused flavour's settled latency is strictly lower on the
        // 4-tap FIR (log-depth fold vs serial product chains).
        let fir = &dom.rows[0];
        assert!(
            fir[2].parse::<u64>().unwrap() < fir[3].parse::<u64>().unwrap(),
            "fir latency row: {fir:?}"
        );
    }

    #[test]
    fn second_pack_warm_hits_the_content_cache() {
        let hits = || {
            ola_core::obs::registry()
                .snapshot()
                .counters
                .get("ola.cache.hits")
                .copied()
                .unwrap_or(0)
        };
        let run = || dsp(&crate::resume::ExperimentCtx::ephemeral("dsp"), Scale::Quick).unwrap();
        let cold = run();
        let before = hits();
        let warm = run();
        assert!(hits() > before, "second identical pack must warm-hit the cache");
        assert_eq!(cold[0].rows, warm[0].rows, "cached rows are bit-identical");
    }

    #[test]
    fn canonical_keys_separate_scales() {
        let a = CacheKey::of(canonical(Scale::Quick).as_bytes());
        let b = CacheKey::of(canonical(Scale::Quick).as_bytes());
        let c = CacheKey::of(canonical(Scale::Full).as_bytes());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn csv_slugs_match_the_documented_output_names() -> std::io::Result<()> {
        let dir = std::env::temp_dir().join("ola_dsp_slug_test");
        let t = Table::new("DSP fused vs unfused online MACs", &["a"]);
        assert!(t.write_csv(&dir)?.ends_with("dsp_fused_vs_unfused_online_macs.csv"));
        let d = Table::new("DSP fused dominance by width", &["a"]);
        assert!(d.write_csv(&dir)?.ends_with("dsp_fused_dominance_by_width.csv"));
        let _ = std::fs::remove_dir_all(&dir);
        Ok(())
    }
}
