//! Table 4: area comparison between the two filter datapaths (LUTs and
//! slices, with the online/traditional overhead ratio).

use crate::report::Table;
use ola_imaging::filter::{FilterConfig, OnlineFilter, TraditionalFilter};
use ola_netlist::area;

/// Runs the Table-4 experiment on the paper-default filter configuration.
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn table4(run: &crate::resume::ExperimentCtx) -> Result<Vec<Table>, String> {
    run.unit("area", || Ok(vec![table4_inner()]))
}

fn table4_inner() -> Table {
    let online = OnlineFilter::new(FilterConfig::paper_default());
    let trad = TraditionalFilter::new(FilterConfig::paper_default());

    // The paper reports the datapath area; ours is one multiplier plus the
    // 9-tap adder tree per design (identical structure on both sides).
    let o_mult = area::estimate(&online.multiplier().netlist, 4);
    let o_tree = area::estimate(online.tree_netlist(), 4);
    let t_mult = area::estimate(&trad.multiplier().netlist, 4);
    let t_tree = area::estimate(trad.tree_netlist(), 4);

    let o_luts = o_mult.luts + o_tree.luts;
    let t_luts = t_mult.luts + t_tree.luts;
    let o_slices = o_mult.slices + o_tree.slices;
    let t_slices = t_mult.slices + t_tree.slices;

    let mut t =
        Table::new("Table4 area comparison", &["Metric", "Traditional", "Online", "Overhead"]);
    t.push_row(vec![
        "LUTs".into(),
        t_luts.to_string(),
        o_luts.to_string(),
        format!("{:.2}", o_luts as f64 / t_luts as f64),
    ]);
    t.push_row(vec![
        "Slices".into(),
        t_slices.to_string(),
        o_slices.to_string(),
        format!("{:.2}", o_slices as f64 / t_slices as f64),
    ]);
    t.push_row(vec![
        "LUTs (multiplier only)".into(),
        t_mult.luts.to_string(),
        o_mult.luts.to_string(),
        format!("{:.2}", o_mult.luts as f64 / t_mult.luts as f64),
    ]);
    t.push_row(vec![
        "raw gates".into(),
        (t_mult.gates + t_tree.gates).to_string(),
        (o_mult.gates + o_tree.gates).to_string(),
        format!(
            "{:.2}",
            (o_mult.gates + o_tree.gates) as f64 / (t_mult.gates + t_tree.gates) as f64
        ),
    ]);
    t
}
