//! `repro sta`: the static-analysis counterpart of the empirical sweeps.
//!
//! Three artifact families per word length, all computed without running a
//! single input vector:
//!
//! * **`sta_paths_*.csv`** — top-K critical paths with named endpoints
//!   (`zp[k]` / `product[i]`), making the paper's Fig. 3 structure
//!   inspectable: online multipliers terminate their deepest chains in the
//!   *least*-significant digits, conventional multipliers in the *most*-
//!   significant bits;
//! * **`sta_slack_*.csv`** — per-digit arrival and slack at the rated
//!   period (backward required-time pass), the quantitative version of the
//!   same claim;
//! * **`sta_certification_*.csv`** — per-digit settlement certification
//!   over an overclocking `Ts` grid, with the analytic error bound
//!   `Σ_{at-risk k} 2^{δ−k}` that must upper-bound every empirical error
//!   curve (a release-mode test holds it to that).

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_arith::online::DELTA;
use ola_arith::synth::{array_multiplier, online_multiplier, OnlineMultiplierCircuit};
use ola_netlist::sta::{certify, critical_paths, slack_from_arrival, CertificationReport};
use ola_netlist::{analyze, DelayModel, FpgaDelay, NetId, Netlist};

/// Paths reported per circuit.
const TOP_K: usize = 5;

/// Word lengths analyzed at each scale. STA is cheap (linear passes), so
/// even `full` stays in milliseconds; `quick` trims for log brevity only.
fn word_lengths(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Quick => &[8, 16],
        Scale::Full => &[8, 16, 32],
    }
}

/// The online multiplier's output-digit groups: digit `k` is the
/// borrow-save pair `{zp[k], zn[k]}`, `k = 0` the MSD (`z_{−δ}`).
fn om_digits(netlist: &Netlist) -> Vec<Vec<NetId>> {
    let zp = netlist.output("zp");
    let zn = netlist.output("zn");
    zp.iter().zip(zn).map(|(&p, &n)| vec![p, n]).collect()
}

/// Worst-case magnitude contribution of each online output digit on the
/// `digits_value` scale: digit `k` has weight `2^{−(k−δ+1)}` and a
/// redundant digit can be off by at most the full range `2`, so the bound
/// is `2^{δ−k}`.
pub fn om_digit_weights(digits: usize) -> Vec<f64> {
    (0..digits).map(|k| (2.0f64).powi(DELTA as i32 - k as i32)).collect()
}

/// Certifies every output digit of an online multiplier against `ts_grid`
/// (shared with the release-mode bound test so the experiment and the test
/// describe the same artifact).
///
/// # Errors
///
/// Propagates [`ola_netlist::StaError`] as a string (generated netlists
/// are DAGs, so this fires only on a corrupted circuit).
pub fn om_certification<M: DelayModel + ?Sized>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    ts_grid: &[u64],
) -> Result<CertificationReport, String> {
    certify(&circuit.netlist, delay, &om_digits(&circuit.netlist), ts_grid)
        .map_err(|e| format!("online multiplier N={}: {e}", circuit.n))
}

/// Runs the static-analysis experiment. Pure analysis — no simulation.
/// Each word length is one checkpointable work unit.
///
/// # Errors
///
/// If any netlist fails the topological precondition (which would mean a
/// generator emitted a broken circuit).
pub fn sta(run: &crate::resume::ExperimentCtx, scale: Scale) -> Result<Vec<Table>, String> {
    let delay = FpgaDelay::default();
    let mut tables = Vec::new();
    for &n in word_lengths(scale) {
        tables.extend(run.unit(&format!("n{n}"), || {
            let om = online_multiplier(n, 3);
            // The array multiplier caps at width 31 (exact i64 products).
            let w = n.min(31);
            let am = array_multiplier(w);
            Ok(vec![
                paths_table(format!("STA paths online mult N={n}"), &om.netlist, &delay)?,
                paths_table(format!("STA paths array mult W={w}"), &am.netlist, &delay)?,
                slack_table(n, &om.netlist, w, &am.netlist, &delay)?,
                certification_table(&om, &delay, scale)?,
            ])
        })?);
    }
    Ok(tables)
}

fn paths_table<M: DelayModel + ?Sized>(
    title: String,
    netlist: &Netlist,
    delay: &M,
) -> Result<Table, String> {
    let paths = critical_paths(netlist, delay, TOP_K).map_err(|e| format!("{title}: {e}"))?;
    let mut t = Table::new(title, &["rank", "endpoint", "delay_ps", "depth"]);
    for (rank, p) in paths.iter().enumerate() {
        t.push_row(vec![
            (rank + 1).to_string(),
            p.endpoint_label.clone(),
            p.delay.to_string(),
            p.depth().to_string(),
        ]);
    }
    Ok(t)
}

/// Slack vs digit significance, online and conventional side by side (each
/// at its own rated period): `weight_exp` is the digit's binary weight
/// exponent. Two slack notions are reported. `slack_ps` is the whole-
/// netlist slack from the backward required-time pass — for the online
/// multiplier it is 0 on *every* digit, because each digit output also
/// feeds the downstream residual logic and so sits on a rated-critical
/// path. `sample_slack_ps` is the digit's own sampling headroom
/// `rated − arrival` — the margin before an overclocked sample at `Ts`
/// reaches that digit. Its profile is the paper's Fig. 3 claim in one
/// column: for the online rows it *grows with digit significance* (the
/// deep chains end in the LSDs, so the first digits claimed by
/// overclocking are the least significant), while for the conventional
/// rows it collapses toward the MSBs (the sign end is claimed first).
fn slack_table<M: DelayModel + ?Sized>(
    n: usize,
    om: &Netlist,
    w: usize,
    am: &Netlist,
    delay: &M,
) -> Result<Table, String> {
    let mut t = Table::new(
        format!("STA slack per digit N={n}"),
        &["circuit", "digit", "weight_exp", "arrival_ps", "slack_ps", "sample_slack_ps"],
    );
    {
        let report = analyze(om, delay);
        let rated = report.critical_path();
        let slack = slack_from_arrival(om, delay, &report, rated);
        for (k, digit) in om_digits(om).iter().enumerate() {
            // Digit k is z_{k−δ}, weight 2^{−(k−δ+1)}.
            let weight_exp = -(k as i64 - DELTA as i64 + 1);
            let arrival = report.arrival_of(digit);
            t.push_row(vec![
                format!("online N={n}"),
                k.to_string(),
                weight_exp.to_string(),
                arrival.to_string(),
                slack.slack_of(digit).map_or_else(String::new, |s| s.to_string()),
                (rated - arrival).to_string(),
            ]);
        }
    }
    {
        let report = analyze(am, delay);
        let rated = report.critical_path();
        let slack = slack_from_arrival(am, delay, &report, rated);
        for (i, &bit) in am.output("product").iter().enumerate() {
            let arrival = report.arrival(bit);
            t.push_row(vec![
                format!("array W={w}"),
                i.to_string(),
                i.to_string(), // product is LSB-first: bit i has weight 2^i
                arrival.to_string(),
                slack.slack(bit).map_or_else(String::new, |s| s.to_string()),
                (rated - arrival).to_string(),
            ]);
        }
    }
    Ok(t)
}

fn certification_table<M: DelayModel + ?Sized>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    scale: Scale,
) -> Result<Table, String> {
    let n = circuit.n;
    let rated = analyze(&circuit.netlist, delay).critical_path();
    let points = scale.grid_points();
    let ts: Vec<u64> = (1..=points).map(|k| rated * k as u64 / points as u64).collect();
    let rep = om_certification(circuit, delay, &ts)?;
    let weights = om_digit_weights(rep.digits());
    let mut t = Table::new(
        format!("STA certification online mult N={n}"),
        &["Ts", "Ts/rated", "certified", "at_risk", "analytic_bound"],
    );
    for (i, &t_s) in rep.ts_grid().iter().enumerate() {
        t.push_row(vec![
            t_s.to_string(),
            format!("{:.3}", t_s as f64 / rated as f64),
            format!("{}/{}", rep.certified_count(i), rep.digits()),
            rep.at_risk(i).len().to_string(),
            fmt_f(rep.error_bound(i, &weights)),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_decay_geometrically_from_the_msd() {
        let w = om_digit_weights(5);
        assert_eq!(w[0], 8.0, "MSD z_{{-3}} bound: 2^δ");
        for pair in w.windows(2) {
            assert_eq!(pair[0] / pair[1], 2.0);
        }
    }

    #[test]
    fn quick_scale_emits_four_tables_per_word_length() {
        let tables = sta(&crate::resume::ExperimentCtx::ephemeral("sta"), Scale::Quick).unwrap();
        assert_eq!(tables.len(), 8);
        assert!(tables[0].title.starts_with("STA paths online"));
        assert!(tables[3].title.starts_with("STA certification"));
    }

    #[test]
    fn online_sample_slack_grows_with_digit_significance() {
        // The Fig. 3 monotonicity pinned directly: each online digit's
        // sampling headroom (rated − arrival) strictly grows with its
        // significance, so overclocking claims the LSDs first.
        let om = online_multiplier(8, 3);
        let delay = FpgaDelay::default();
        let report = analyze(&om.netlist, &delay);
        let rated = report.critical_path();
        let headroom: Vec<u64> =
            om_digits(&om.netlist).iter().map(|d| rated - report.arrival_of(d)).collect();
        for pair in headroom.windows(2) {
            assert!(pair[0] > pair[1], "sample slack must fall toward the LSDs: {headroom:?}");
        }
        assert_eq!(*headroom.last().unwrap(), 0, "the LSD is the rated endpoint");
    }

    #[test]
    fn online_deep_paths_end_in_low_significance_digits() {
        // The structural half of Fig. 3: every top-ranked online path
        // terminates in the lower half of the digit bus, and the rated-Ts
        // bound certifies everything (bound 0 at the last grid point).
        let om = online_multiplier(8, 3);
        let delay = FpgaDelay::default();
        let paths = critical_paths(&om.netlist, &delay, 3).unwrap();
        let digits = om.netlist.output("zp").len();
        for p in &paths {
            let bit: usize = p.endpoint_label
                [p.endpoint_label.find('[').unwrap() + 1..p.endpoint_label.len() - 1]
                .parse()
                .unwrap();
            assert!(bit >= digits / 2, "deep chain ends at {} (bus of {digits})", p.endpoint_label);
        }
        let rated = analyze(&om.netlist, &delay).critical_path();
        let rep = om_certification(&om, &delay, &[rated]).unwrap();
        assert!(rep.all_certified(0));
        assert_eq!(rep.error_bound(0, &om_digit_weights(rep.digits())), 0.0);
    }
}
