//! The image-filter case study: Figure 6 (MRE vs frequency), Figure 7
//! (output images and SNR), and Tables 1–3.
//!
//! All of these share the same expensive primitive — sweeping each filter
//! design over clock periods on each benchmark image — so a
//! [`CaseStudyContext`] runs each (design, image) pair once and caches the
//! results.

use super::Scale;
use crate::report::{fmt_f, fmt_pct, Table};
use ola_core::metrics;
use ola_imaging::filter::{
    FilterConfig, FilterRun, OnlineFilter, OverclockedFilter, TraditionalFilter,
};
use ola_imaging::synthetic::Benchmark;
use ola_imaging::Image;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// The paper's table column headers: frequencies normalized to each
/// design's maximum error-free frequency.
pub const FACTORS: [f64; 5] = [1.05, 1.10, 1.15, 1.20, 1.25];

/// Error budgets of Table 3, in percent MRE.
pub const BUDGETS: [f64; 4] = [0.01, 0.1, 1.0, 10.0];

struct DesignRun {
    f0: u64,
    /// Coarse grid: (ts, mre%, snr dB), ascending ts.
    grid: Vec<(u64, f64, f64)>,
    /// Runs at `FACTORS` normalized frequencies (ts = f0 / factor).
    factor_runs: Vec<FilterRun>,
}

/// Shared runner and cache for the case-study experiments.
pub struct CaseStudyContext {
    online: OnlineFilter,
    trad: TraditionalFilter,
    scale: Scale,
    cache: Mutex<HashMap<(&'static str, Benchmark), std::sync::Arc<DesignRun>>>,
}

impl CaseStudyContext {
    /// Builds the two filter designs with the paper's default configuration.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        CaseStudyContext {
            online: OnlineFilter::new(FilterConfig::paper_default()),
            trad: TraditionalFilter::new(FilterConfig::paper_default()),
            scale,
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn image(&self, b: Benchmark, size: usize) -> Image {
        let seed = 1 + Benchmark::ALL.iter().position(|&x| x == b).unwrap_or(0) as u64;
        b.generate(size, size, seed)
    }

    fn design(&self, name: &'static str) -> &dyn OverclockedFilter {
        match name {
            "online" => &self.online,
            _ => &self.trad,
        }
    }

    fn run(&self, name: &'static str, bench: Benchmark) -> std::sync::Arc<DesignRun> {
        if let Some(r) =
            self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&(name, bench))
        {
            return r.clone();
        }
        let filter = self.design(name);
        let img = self.image(bench, self.scale.table_image_size());
        let rated = filter.rated_period();
        // Coarse grid from deep overclock up to the rated period.
        let points = self.scale.grid_points() as u64;
        let ts_grid: Vec<u64> =
            (0..points).map(|k| rated / 2 + (rated - rated / 2) * k / (points - 1)).collect();
        let sweep = filter.apply_sweep(&img, &ts_grid);
        let grid: Vec<(u64, f64, f64)> =
            sweep.runs.iter().map(|r| (r.ts, r.mre_percent, r.snr_db)).collect();
        // f0: the smallest grid period that is error-free from there on up,
        // refined by bisection between the last failing grid point and it
        // (the multiplier memo is warm, so each probe is cheap).
        let coarse = grid
            .iter()
            .rev()
            .take_while(|(_, mre, _)| *mre == 0.0)
            .last()
            .map_or(rated, |(ts, _, _)| *ts);
        let mut lo = grid
            .iter()
            .filter(|(ts, mre, _)| *ts < coarse && *mre > 0.0)
            .map(|(ts, _, _)| *ts)
            .max()
            .unwrap_or(coarse / 2);
        let mut hi = coarse;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            let probe = filter.apply_sweep(&img, &[mid]);
            if probe.runs[0].mre_percent == 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let f0 = hi;
        // Exact runs at the table's normalized frequencies.
        let ts_factors: Vec<u64> =
            FACTORS.iter().map(|f| ((f0 as f64 / f).round() as u64).max(1)).collect();
        let factor_runs = filter.apply_sweep(&img, &ts_factors).runs;
        let run = std::sync::Arc::new(DesignRun { f0, grid, factor_runs });
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((name, bench), run.clone());
        run
    }
}

/// Figure 6: overclocking error (MRE %) of both designs on UI and
/// natural-like inputs, versus frequency normalized to each design's
/// error-free maximum.
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn fig6(
    run: &crate::resume::ExperimentCtx,
    ctx: &CaseStudyContext,
) -> Result<Vec<Table>, String> {
    run.unit("mre", || Ok(vec![fig6_inner(ctx)]))
}

fn fig6_inner(ctx: &CaseStudyContext) -> Table {
    let mut t = Table::new(
        "Fig6 filter MRE vs normalized frequency",
        &["f/f0", "online UI", "online real", "traditional UI", "traditional real"],
    );
    let runs = [
        ctx.run("online", Benchmark::Uniform),
        ctx.run("online", Benchmark::LenaLike),
        ctx.run("traditional", Benchmark::Uniform),
        ctx.run("traditional", Benchmark::LenaLike),
    ];
    // Collect every normalized frequency present in any grid, then report
    // each design interpolated at those points.
    let mut freqs: Vec<f64> = Vec::new();
    for r in &runs {
        for (ts, _, _) in &r.grid {
            freqs.push(r.f0 as f64 / *ts as f64);
        }
    }
    freqs.sort_by(f64::total_cmp);
    freqs.dedup_by(|a, b| (*a - *b).abs() < 0.015);
    for f in freqs {
        if !(0.85..=2.05).contains(&f) {
            continue;
        }
        let mut row = vec![format!("{f:.3}")];
        for r in &runs {
            row.push(fmt_f(interp_mre(r, f)));
        }
        t.push_row(row);
    }
    t
}

fn interp_mre(run: &DesignRun, f: f64) -> f64 {
    // Normalized frequency f ↔ period f0/f; linear interpolation on the grid.
    let ts = run.f0 as f64 / f;
    let g = &run.grid;
    if ts <= g[0].0 as f64 {
        return g[0].1;
    }
    for w in g.windows(2) {
        let (t0, m0, _) = w[0];
        let (t1, m1, _) = w[1];
        if ts <= t1 as f64 {
            let a = (ts - t0 as f64) / (t1 as f64 - t0 as f64);
            return m0 + a * (m1 - m0);
        }
    }
    g.last().map_or(0.0, |&(_, m, _)| m)
}

/// Figure 7: output images of both designs at 1.05/1.15/1.25 × their
/// error-free frequencies, written as PGM files; returns the SNR table.
///
/// # Errors
///
/// Propagates filesystem errors from creating the output directory or
/// writing the PGM files (the `repro` summary reports them as a partial
/// result instead of aborting the run). On replay the PGM files already
/// exist on disk — the unit frame re-registers them as noted outputs so
/// the manifest still hashes them.
pub fn fig7(
    run: &crate::resume::ExperimentCtx,
    ctx: &CaseStudyContext,
    out_dir: &Path,
) -> Result<Vec<Table>, String> {
    let dir = out_dir.to_path_buf();
    run.unit("images", || {
        fig7_inner(ctx, &dir).map(|t| vec![t]).map_err(|e| format!("fig7 io: {e}"))
    })
}

fn fig7_inner(ctx: &CaseStudyContext, out_dir: &Path) -> io::Result<Table> {
    std::fs::create_dir_all(out_dir)?;
    let img = ctx.image(Benchmark::LenaLike, ctx.scale.figure_image_size());
    let mut t = Table::new(
        "Fig7 output image SNR at overclocked frequencies",
        &["f/f0", "online SNR dB", "trad SNR dB", "online bad px", "trad bad px"],
    );
    let factors = [1.05f64, 1.15, 1.25];
    let mut stash: std::collections::BTreeMap<&'static str, Vec<(f64, f64, usize)>> =
        std::collections::BTreeMap::new();
    for filter in [&ctx.online as &dyn OverclockedFilter, &ctx.trad] {
        // f0 on this larger image: reuse the rated-relative coarse search.
        let rated = filter.rated_period();
        let points = ctx.scale.grid_points() as u64;
        let grid: Vec<u64> =
            (0..points).map(|k| rated / 2 + (rated - rated / 2) * k / (points - 1)).collect();
        let sweep = filter.apply_sweep(&img, &grid);
        let f0 = sweep
            .runs
            .iter()
            .rev()
            .take_while(|r| r.mre_percent == 0.0)
            .last()
            .map_or(rated, |r| r.ts);
        let ts: Vec<u64> =
            factors.iter().map(|f| ((f0 as f64 / f).round() as u64).max(1)).collect();
        let runs = filter.apply_sweep(&img, &ts);
        for (f, run) in factors.iter().zip(&runs.runs) {
            let name = format!("fig7_{}_{:.0}.pgm", filter.name(), f * 100.0);
            let path = out_dir.join(&name);
            // Render into memory and publish atomically: a crash mid-write
            // must never leave a torn PGM behind for --resume to trust.
            let mut bytes = Vec::new();
            run.image.write_pgm(&mut bytes)?;
            ola_core::resilience::atomic_write(&path, &bytes)?;
            ola_core::obs::note_output(path.display().to_string(), path);
        }
        let settled_path = out_dir.join(format!("fig7_{}_settled.pgm", filter.name()));
        let mut bytes = Vec::new();
        runs.settled_image.write_pgm(&mut bytes)?;
        ola_core::resilience::atomic_write(&settled_path, &bytes)?;
        ola_core::obs::note_output(settled_path.display().to_string(), settled_path);
        ola_core::obs::annotate(
            format!("fig7.{}.f0", filter.name()),
            format_args!("{f0} (rated {rated})"),
        );
        let entry: Vec<(f64, f64, usize)> =
            factors.iter().zip(&runs.runs).map(|(f, r)| (*f, r.snr_db, r.wrong_pixels)).collect();
        stash.insert(filter.name(), entry);
    }
    let online = &stash["online"];
    let trad = &stash["traditional"];
    for ((f, osnr, obad), (_, tsnr, tbad)) in online.iter().zip(trad) {
        t.push_row(vec![
            format!("{f:.2}"),
            fmt_f(*osnr),
            fmt_f(*tsnr),
            obad.to_string(),
            tbad.to_string(),
        ]);
    }
    Ok(t)
}

/// Table 1: relative reduction of MRE with online arithmetic at the
/// normalized frequencies, per input, with the geometric-mean column.
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn table1(
    run: &crate::resume::ExperimentCtx,
    ctx: &CaseStudyContext,
) -> Result<Vec<Table>, String> {
    run.unit("reduction", || Ok(vec![table1_inner(ctx)]))
}

fn table1_inner(ctx: &CaseStudyContext) -> Table {
    let mut t = Table::new(
        "Table1 relative reduction of MRE with online arithmetic",
        &["Inputs", "1.05", "1.10", "1.15", "1.20", "1.25", "Geo.Mean"],
    );
    for bench in Benchmark::ALL {
        let online = ctx.run("online", bench);
        let trad = ctx.run("traditional", bench);
        let mut reductions = Vec::new();
        let mut row = vec![bench.name().to_owned()];
        for i in 0..FACTORS.len() {
            let r = metrics::mre_reduction_percent(
                trad.factor_runs[i].mre_percent,
                online.factor_runs[i].mre_percent,
            );
            reductions.push(r);
            row.push(fmt_pct(r));
        }
        row.push(fmt_pct(metrics::geometric_mean(&reductions)));
        t.push_row(row);
    }
    t
}

/// Table 2: improvement of SNR (dB) with online arithmetic at the
/// normalized frequencies (natural-like inputs, as in the paper).
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn table2(
    run: &crate::resume::ExperimentCtx,
    ctx: &CaseStudyContext,
) -> Result<Vec<Table>, String> {
    run.unit("snr", || Ok(vec![table2_inner(ctx)]))
}

fn table2_inner(ctx: &CaseStudyContext) -> Table {
    let mut t = Table::new(
        "Table2 improvement of SNR (dB) with online arithmetic",
        &["Inputs", "1.05", "1.10", "1.15", "1.20", "1.25"],
    );
    for bench in [
        Benchmark::LenaLike,
        Benchmark::PepperLike,
        Benchmark::SailboatLike,
        Benchmark::TiffanyLike,
    ] {
        let online = ctx.run("online", bench);
        let trad = ctx.run("traditional", bench);
        let mut row = vec![bench.name().to_owned()];
        for i in 0..FACTORS.len() {
            let o = online.factor_runs[i].snr_db.min(99.0);
            let tr = trad.factor_runs[i].snr_db.min(99.0);
            row.push(format!("{:.1}", o - tr));
        }
        t.push_row(row);
    }
    t
}

/// Table 3: the extra overclocking headroom online arithmetic buys under
/// MRE budgets.
///
/// Each design's achievable frequency is normalized to its *own* maximum
/// error-free frequency (the paper's §4 narrative: "the traditional design
/// can be improved by 3.89 % … whereas online can be overclocked by
/// 6.85 %"); the cells report the difference in percentage points. Our
/// substitution makes absolute-frequency ratios meaningless (the simulated
/// online multiplier's selection CPA depth differs from the paper's FPGA
/// mapping), so the own-normalized comparison is the faithful one — see
/// `EXPERIMENTS.md`.
///
/// # Errors
///
/// Never fails on its own; the `Result` carries checkpoint-replay errors.
pub fn table3(
    run: &crate::resume::ExperimentCtx,
    ctx: &CaseStudyContext,
) -> Result<Vec<Table>, String> {
    run.unit("headroom", || Ok(vec![table3_inner(ctx)]))
}

fn table3_inner(ctx: &CaseStudyContext) -> Table {
    let mut t = Table::new(
        "Table3 extra frequency headroom (pp) under error budgets",
        &["Inputs", "0.01%", "0.1%", "1%", "10%", "Geo.Mean"],
    );
    for bench in Benchmark::ALL {
        let online = ctx.run("online", bench);
        let trad = ctx.run("traditional", bench);
        let mut gains = Vec::new();
        let mut row = vec![bench.name().to_owned()];
        for budget in BUDGETS {
            let o = speedup_within(&online.grid, online.f0, budget);
            let tr = speedup_within(&trad.grid, trad.f0, budget);
            match (o, tr) {
                (Some(os), Some(ts)) => {
                    let gain = os - ts;
                    gains.push(gain);
                    row.push(fmt_pct(gain));
                }
                _ => row.push("N/A".to_owned()),
            }
        }
        row.push(fmt_pct(metrics::geometric_mean(&gains)));
        t.push_row(row);
    }
    t
}

/// The overclock (in percent above the design's own error-free frequency)
/// achievable within an MRE budget, from the coarse grid.
fn speedup_within(grid: &[(u64, f64, f64)], f0: u64, budget_pct: f64) -> Option<f64> {
    grid.iter()
        .find(|(_, mre, _)| *mre <= budget_pct)
        .map(|(ts, _, _)| (f0 as f64 / *ts as f64 - 1.0) * 100.0)
}
