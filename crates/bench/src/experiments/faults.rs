//! Fault-sensitivity campaign: single-fault resilience of the online
//! (MSD-first) multiplier versus the conventional two's-complement array
//! multiplier at equal operand width.
//!
//! For every fault class (stuck-at-0/1, transient SEU, delay push) a
//! deterministic campaign injects one fault per logic site, samples the
//! output register at the rated clock period and measures the numeric
//! damage, Razor-style detection coverage and MSB vulnerability — see
//! [`ola_core::campaign`]. The headline: the worst normalized single-fault
//! error of the online design is strictly below the conventional design's
//! (which exposes its full-scale sign bit).

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_core::campaign::{
    array_fault_campaign_with_stats, online_fault_campaign_with_stats, CampaignConfig,
    CampaignReport, FaultClass,
};
use ola_core::{BackendStats, InputModel, SimBackend};
use ola_netlist::UnitDelay;

/// Runs the fault-sensitivity campaigns and renders the comparison tables.
///
/// The campaigns run on the requested backend (the batch engine evaluates
/// 64 fault scenarios per pass under the deterministic delay model used
/// here); when batch ran, an automatic event-driven spot-check re-judges a
/// small campaign on both engines and fails the experiment on any
/// disagreement.
///
/// The first table's CSV lands in
/// `results/fault_sensitivity_online_vs_conventional.csv`.
///
/// # Errors
///
/// If the batch/event spot-check campaigns disagree.
pub fn faults(
    run: &crate::resume::ExperimentCtx,
    scale: Scale,
    backend: SimBackend,
) -> Result<Vec<Table>, String> {
    run.unit("campaigns", || faults_inner(scale, backend))
}

fn faults_inner(scale: Scale, backend: SimBackend) -> Result<Vec<Table>, String> {
    let (width, sites, samples) = match scale {
        Scale::Quick => (5usize, 24usize, 4usize),
        Scale::Full => (8, 64, 12),
    };
    ola_core::obs::annotate(
        "faults.campaign",
        format_args!("width {width}, {sites} sites x {samples} samples/site"),
    );
    let cfg = CampaignConfig {
        samples_per_site: samples,
        max_sites: Some(sites),
        seed: 0xFA_517E5,
        backend,
        ..CampaignConfig::default()
    };
    let om = ola_arith::synth::online_multiplier(width, 3);
    let am = ola_arith::synth::array_multiplier(width);

    let mut t = Table::new(
        "Fault sensitivity online vs conventional",
        &[
            "arch",
            "fault_class",
            "sites",
            "samples_per_site",
            "error_rate",
            "mean_error",
            "worst_error",
            "worst_error_raw",
            "detection_coverage",
            "false_alarm_rate",
            "msb_vulnerability",
            "unsettled",
        ],
    );
    let mut reports: Vec<CampaignReport> = Vec::new();
    let mut stats = BackendStats::default();
    for class in FaultClass::ALL {
        let (r, s) = online_fault_campaign_with_stats(
            &om,
            &UnitDelay,
            InputModel::UniformDigits,
            class,
            &cfg,
        );
        reports.push(r);
        stats.merge(&s);
        let (r, s) = array_fault_campaign_with_stats(&am, &UnitDelay, class, &cfg);
        reports.push(r);
        stats.merge(&s);
    }
    eprintln!("  [faults] {}", stats.summary());
    if stats.batch_runs > 0 {
        spot_check(&om, &am, &cfg, scale)?;
    }
    for r in &reports {
        t.push_row(vec![
            r.arch.clone(),
            r.fault_class.label().to_owned(),
            r.sites.to_string(),
            r.samples_per_site.to_string(),
            fmt_f(r.error_rate),
            fmt_f(r.mean_error),
            fmt_f(r.worst_error),
            fmt_f(r.worst_error_raw),
            fmt_f(r.detection_coverage),
            fmt_f(r.false_alarm_rate),
            fmt_f(r.msb_vulnerability),
            r.unsettled.to_string(),
        ]);
    }

    // Headline verdict over the hard-fault and SEU classes.
    let worst = |arch: &str| {
        reports
            .iter()
            .filter(|r| {
                r.arch == arch
                    && matches!(
                        r.fault_class,
                        FaultClass::StuckAt0 | FaultClass::StuckAt1 | FaultClass::Transient
                    )
            })
            .map(|r| r.worst_error)
            .fold(0.0f64, f64::max)
    };
    let (on, conv) = (worst("online"), worst("conventional"));
    eprintln!(
        "  [faults] worst normalized single-fault error (stuck-at/SEU), width {width}: \
         online {on:.4} vs conventional {conv:.4} -> {}",
        if on < conv { "online wins" } else { "NO IMPROVEMENT" }
    );

    Ok(vec![t, rank_table(&reports)])
}

/// Re-runs a shrunken campaign (transient class: the one whose fault plans
/// consume per-sample randomness) on both backends and demands
/// bit-identical reports.
fn spot_check(
    om: &ola_arith::synth::OnlineMultiplierCircuit,
    am: &ola_arith::synth::ArrayMultiplierCircuit,
    cfg: &CampaignConfig,
    scale: Scale,
) -> Result<(), String> {
    let samples = scale.spot_check_samples().min(cfg.samples_per_site);
    let small = |backend| CampaignConfig {
        samples_per_site: samples,
        max_sites: Some(6),
        backend,
        ..cfg.clone()
    };
    let (ev, _) = online_fault_campaign_with_stats(
        om,
        &UnitDelay,
        InputModel::UniformDigits,
        FaultClass::Transient,
        &small(SimBackend::Event),
    );
    let (ba, _) = online_fault_campaign_with_stats(
        om,
        &UnitDelay,
        InputModel::UniformDigits,
        FaultClass::Transient,
        &small(SimBackend::Batch),
    );
    if ev != ba {
        return Err("faults: online batch/event spot-check mismatch".to_string());
    }
    let (ev, _) = array_fault_campaign_with_stats(
        am,
        &UnitDelay,
        FaultClass::Transient,
        &small(SimBackend::Event),
    );
    let (ba, _) = array_fault_campaign_with_stats(
        am,
        &UnitDelay,
        FaultClass::Transient,
        &small(SimBackend::Batch),
    );
    if ev != ba {
        return Err("faults: array batch/event spot-check mismatch".to_string());
    }
    eprintln!(
        "  [faults] event spot-check OK (transient campaign, {samples} samples x 6 sites, both archs)"
    );
    Ok(())
}

/// Per-significance-rank corruption profile for the stuck-at-1 class: how
/// often each output position (0 = most significant) is corrupted.
fn rank_table(reports: &[CampaignReport]) -> Table {
    let mut t = Table::new(
        "Fault corruption profile by output significance",
        &["rank_msb_first", "online_hit_rate", "conventional_hit_rate"],
    );
    let pick = |arch: &str| {
        reports
            .iter()
            .find(|r| r.arch == arch && r.fault_class == FaultClass::StuckAt1)
            .expect("stuck-at-1 campaign ran")
    };
    let (on, conv) = (pick("online"), pick("conventional"));
    let ranks = on.rank_profile.len().max(conv.rank_profile.len());
    for k in 0..ranks {
        t.push_row(vec![
            k.to_string(),
            fmt_f(on.rank_profile.get(k).copied().unwrap_or(0.0)),
            fmt_f(conv.rank_profile.get(k).copied().unwrap_or(0.0)),
        ]);
    }
    t
}
