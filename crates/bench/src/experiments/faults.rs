//! Fault-sensitivity campaign: single-fault resilience of the online
//! (MSD-first) multiplier versus the conventional two's-complement array
//! multiplier at equal operand width.
//!
//! For every fault class (stuck-at-0/1, transient SEU, delay push) a
//! deterministic campaign injects one fault per logic site, samples the
//! output register at the rated clock period and measures the numeric
//! damage, Razor-style detection coverage and MSB vulnerability — see
//! [`ola_core::campaign`]. The headline: the worst normalized single-fault
//! error of the online design is strictly below the conventional design's
//! (which exposes its full-scale sign bit).

use super::Scale;
use crate::report::{fmt_f, Table};
use ola_core::campaign::{
    array_fault_campaign, online_fault_campaign, CampaignConfig, CampaignReport, FaultClass,
};
use ola_core::InputModel;
use ola_netlist::UnitDelay;

/// Runs the fault-sensitivity campaigns and renders the comparison tables.
///
/// The first table's CSV lands in
/// `results/fault_sensitivity_online_vs_conventional.csv`.
#[must_use]
pub fn faults(scale: Scale) -> Vec<Table> {
    let (width, sites, samples) = match scale {
        Scale::Quick => (5usize, 24usize, 4usize),
        Scale::Full => (8, 64, 12),
    };
    let cfg = CampaignConfig {
        samples_per_site: samples,
        max_sites: Some(sites),
        seed: 0xFA_517E5,
        ..CampaignConfig::default()
    };
    let om = ola_arith::synth::online_multiplier(width, 3);
    let am = ola_arith::synth::array_multiplier(width);

    let mut t = Table::new(
        "Fault sensitivity online vs conventional",
        &[
            "arch",
            "fault_class",
            "sites",
            "samples_per_site",
            "error_rate",
            "mean_error",
            "worst_error",
            "worst_error_raw",
            "detection_coverage",
            "false_alarm_rate",
            "msb_vulnerability",
            "unsettled",
        ],
    );
    let mut reports: Vec<CampaignReport> = Vec::new();
    for class in FaultClass::ALL {
        reports.push(online_fault_campaign(
            &om,
            &UnitDelay,
            InputModel::UniformDigits,
            class,
            &cfg,
        ));
        reports.push(array_fault_campaign(&am, &UnitDelay, class, &cfg));
    }
    for r in &reports {
        t.push_row(vec![
            r.arch.clone(),
            r.fault_class.label().to_owned(),
            r.sites.to_string(),
            r.samples_per_site.to_string(),
            fmt_f(r.error_rate),
            fmt_f(r.mean_error),
            fmt_f(r.worst_error),
            fmt_f(r.worst_error_raw),
            fmt_f(r.detection_coverage),
            fmt_f(r.false_alarm_rate),
            fmt_f(r.msb_vulnerability),
            r.unsettled.to_string(),
        ]);
    }

    // Headline verdict over the hard-fault and SEU classes.
    let worst = |arch: &str| {
        reports
            .iter()
            .filter(|r| {
                r.arch == arch
                    && matches!(
                        r.fault_class,
                        FaultClass::StuckAt0 | FaultClass::StuckAt1 | FaultClass::Transient
                    )
            })
            .map(|r| r.worst_error)
            .fold(0.0f64, f64::max)
    };
    let (on, conv) = (worst("online"), worst("conventional"));
    eprintln!(
        "  [faults] worst normalized single-fault error (stuck-at/SEU), width {width}: \
         online {on:.4} vs conventional {conv:.4} -> {}",
        if on < conv { "online wins" } else { "NO IMPROVEMENT" }
    );

    vec![t, rank_table(&reports)]
}

/// Per-significance-rank corruption profile for the stuck-at-1 class: how
/// often each output position (0 = most significant) is corrupted.
fn rank_table(reports: &[CampaignReport]) -> Table {
    let mut t = Table::new(
        "Fault corruption profile by output significance",
        &["rank_msb_first", "online_hit_rate", "conventional_hit_rate"],
    );
    let pick = |arch: &str| {
        reports
            .iter()
            .find(|r| r.arch == arch && r.fault_class == FaultClass::StuckAt1)
            .expect("stuck-at-1 campaign ran")
    };
    let (on, conv) = (pick("online"), pick("conventional"));
    let ranks = on.rank_profile.len().max(conv.rank_profile.len());
    for k in 0..ranks {
        t.push_row(vec![
            k.to_string(),
            fmt_f(on.rank_profile.get(k).copied().unwrap_or(0.0)),
            fmt_f(conv.rank_profile.get(k).copied().unwrap_or(0.0)),
        ]);
    }
    t
}
