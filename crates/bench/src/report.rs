//! Plain-text tables and CSV output for the reproduction harness.

use ola_core::obs::json::JsonValue;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rectangular results table with a title, column headers and rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed above the grid and used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must match `columns` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text grid.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            let _ = writeln!(out, "|");
        };
        line(&mut out, &self.columns);
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}|");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// The CSV file stem derived from the title (lowercased, every
    /// non-alphanumeric collapsed to `_`).
    #[must_use]
    pub fn slug(&self) -> String {
        self.title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect()
    }

    /// Writes the table as CSV into `dir`, named after a slug of the title.
    ///
    /// The write is atomic (tmp file + rename): a crash mid-write leaves
    /// either the previous CSV or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        let mut body = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ =
            writeln!(body, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(body, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        ola_core::resilience::atomic_write(&path, body.as_bytes())?;
        Ok(path)
    }

    /// This table as a checkpoint-frame JSON document (lossless).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let row = |cells: &Vec<String>| {
            JsonValue::Array(cells.iter().map(|c| JsonValue::str(c.clone())).collect())
        };
        JsonValue::Object(vec![
            ("title".into(), JsonValue::str(self.title.clone())),
            ("columns".into(), row(&self.columns)),
            ("rows".into(), JsonValue::Array(self.rows.iter().map(row).collect())),
        ])
    }

    /// Rebuilds a table from [`Table::to_json`] output. Returns `None` on
    /// shape mismatch (so corrupted frames fail replay instead of
    /// producing a half-table).
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Table> {
        let strings = |v: &JsonValue| -> Option<Vec<String>> {
            v.as_array()?.iter().map(|c| c.as_str().map(str::to_owned)).collect()
        };
        let title = value.get("title")?.as_str()?.to_owned();
        let columns = strings(value.get("columns")?)?;
        let rows: Vec<Vec<String>> =
            value.get("rows")?.as_array()?.iter().map(&strings).collect::<Option<_>>()?;
        if rows.iter().any(|r| r.len() != columns.len()) {
            return None;
        }
        Some(Table { title, columns, rows })
    }
}

/// Formats a float with a sensible fixed precision for the reports.
#[must_use]
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a percentage.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}%")
    } else {
        "N/A".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| long-name |"));
        let rows: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = rows.iter().map(|r| r.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "aligned: {s}");
    }

    #[test]
    fn csv_round_trip_basics() {
        let dir = std::env::temp_dir().join("ola_report_test");
        let mut t = Table::new("Csv, Test", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "2".into()]);
        let path = t.write_csv(&dir).unwrap();
        let body = fs::read_to_string(path).unwrap();
        assert!(body.starts_with("a,b\n"));
        assert!(body.contains("\"x,y\",2"));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let mut t = Table::new("Fig 4: curves", &["ts", "err"]);
        t.push_row(vec!["10".into(), "0.5".into()]);
        t.push_row(vec!["20, twenty".into(), "0".into()]);
        let back = Table::from_json(&t.to_json()).unwrap();
        assert_eq!(back.title, t.title);
        assert_eq!(back.columns, t.columns);
        assert_eq!(back.rows, t.rows);
        // Shape damage is rejected, not silently accepted.
        let mut j = t.to_json();
        if let JsonValue::Object(fields) = &mut j {
            fields.retain(|(k, _)| k != "rows");
        }
        assert!(Table::from_json(&j).is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123.5");
        assert_eq!(fmt_f(0.5), "0.5000");
        assert_eq!(fmt_f(1e-6), "1.000e-6");
        assert_eq!(fmt_pct(12.345), "12.35%");
        assert_eq!(fmt_pct(f64::NAN), "N/A");
    }
}
