//! Plain-text tables and CSV output for the reproduction harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rectangular results table with a title, column headers and rows.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (printed above the grid and used as the CSV file stem).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (each row must match `columns` in length).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A new table with the given title and column headers.
    #[must_use]
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders an aligned text grid.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            let _ = writeln!(out, "|");
        };
        line(&mut out, &self.columns);
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}|");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Writes the table as CSV into `dir`, named after a slug of the title.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        let mut body = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let _ =
            writeln!(body, "{}", self.columns.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(body, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        fs::write(&path, body)?;
        Ok(path)
    }
}

/// Formats a float with a sensible fixed precision for the reports.
#[must_use]
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 0.01 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

/// Formats a percentage.
#[must_use]
pub fn fmt_pct(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}%")
    } else {
        "N/A".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| long-name |"));
        let rows: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = rows.iter().map(|r| r.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "aligned: {s}");
    }

    #[test]
    fn csv_round_trip_basics() {
        let dir = std::env::temp_dir().join("ola_report_test");
        let mut t = Table::new("Csv, Test", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "2".into()]);
        let path = t.write_csv(&dir).unwrap();
        let body = fs::read_to_string(path).unwrap();
        assert!(body.starts_with("a,b\n"));
        assert!(body.contains("\"x,y\",2"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(123.456), "123.5");
        assert_eq!(fmt_f(0.5), "0.5000");
        assert_eq!(fmt_f(1e-6), "1.000e-6");
        assert_eq!(fmt_pct(12.345), "12.35%");
        assert_eq!(fmt_pct(f64::NAN), "N/A");
    }
}
