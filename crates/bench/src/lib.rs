//! # ola-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation from the
//! `ola` workspace crates. Run the `repro` binary:
//!
//! ```sh
//! cargo run --release -p ola-bench --bin repro -- all          # everything
//! cargo run --release -p ola-bench --bin repro -- fig4 --quick # one artifact
//! ```
//!
//! Results are printed as aligned text tables and written as CSV into
//! `results/` (and PGM images for Figure 7). `EXPERIMENTS.md` at the
//! workspace root records the paper-vs-measured comparison.
//!
//! Runs are crash-safe: completed work units land in an append-only
//! checkpoint under `results/checkpoints/` ([`resume`]), `repro --resume`
//! replays them bit-identically, and the `chaos_check` binary injects
//! crashes, torn frames, and backend failures to prove it.

pub mod experiments;
pub mod report;
pub mod resume;
