//! End-to-end resume gate: a `repro` run killed by a chaos hook at a
//! frame boundary and resumed with `--resume` must emit CSVs that are
//! bit-identical to an uninterrupted run's. This is the acceptance
//! criterion of the crash-safe execution engine, held by `cargo test`
//! (the `chaos_check` binary covers the wider scenario matrix).

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// `allow-unwrap-in-tests` doesn't reach them; a loud panic is still the
// right failure mode here.
#![allow(clippy::unwrap_used)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ola_resume_repro")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(dir: &Path, args: &[&str], env: &[(&str, &str)]) -> i32 {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args).current_dir(dir);
    cmd.env_remove("OLA_CHAOS_ABORT_AFTER_FRAMES");
    for (k, v) in env {
        cmd.env(k, v);
    }
    // Quiet: the tables also land in results/, which is what we assert on.
    cmd.stdout(std::process::Stdio::null());
    cmd.stderr(std::process::Stdio::null());
    cmd.status().expect("spawn repro").code().unwrap_or(-1)
}

fn csvs(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir.join("results")).expect("results dir").flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "csv") {
            out.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&path).unwrap(),
            );
        }
    }
    out
}

#[test]
fn killed_run_resumes_bit_identically() {
    // Ground truth: one uninterrupted quick STA run.
    let clean = scratch("clean");
    assert_eq!(run(&clean, &["--quick", "sta"], &[]), 0, "clean run must succeed");
    let want = csvs(&clean);
    assert!(!want.is_empty(), "clean run must emit CSVs");

    // Kill after the first completed unit frame (header + unit n8 = 2),
    // then resume. Exit 86 is the chaos hooks' deliberate-abort code.
    let killed = scratch("killed");
    assert_eq!(
        run(&killed, &["--quick", "sta"], &[("OLA_CHAOS_ABORT_AFTER_FRAMES", "2")]),
        86,
        "chaos abort must exit 86"
    );
    assert_eq!(run(&killed, &["--quick", "sta", "--resume"], &[]), 0, "resume must succeed");

    let got = csvs(&killed);
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "resumed run must emit the same CSV set"
    );
    for (name, bytes) in &want {
        assert_eq!(&got[name], bytes, "{name} differs between clean and resumed run");
    }

    let _ = std::fs::remove_dir_all(clean.parent().unwrap());
}

#[test]
fn resume_with_different_flags_discards_the_checkpoint() {
    // A checkpoint written by a --quick run must not splice into a resumed
    // run with different parameters (here: a different backend label).
    let dir = scratch("mismatch");
    assert_eq!(run(&dir, &["--quick", "sta"], &[]), 0);
    let want = csvs(&dir);
    assert_eq!(
        run(&dir, &["--quick", "sta", "--resume", "--backend", "event"], &[]),
        0,
        "mismatched resume still completes (fresh)"
    );
    // STA is simulation-free, so the recomputed tables agree anyway — the
    // invariant under test is completion without splicing, plus a fresh
    // checkpoint being written.
    assert_eq!(csvs(&dir), want);
    let _ = std::fs::remove_dir_all(&dir);
}
