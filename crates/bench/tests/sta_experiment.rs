//! Acceptance tests for the `repro sta` static-analysis experiment: the
//! STA-certified analytic error bound must upper-bound the *measured*
//! mean error at every swept period, and the bound must be exactly zero
//! wherever the whole bus is certified.
//!
//! Gate-level sweeps are release-mode workloads; the bound comparison runs
//! hundreds of vectors per grid point, so this suite lives in the bench
//! crate's integration tests (CI runs them under `--release`).

use ola_arith::synth::online_multiplier;
use ola_bench::experiments::{om_certification, om_digit_weights};
use ola_core::empirical::om_gate_level_curve_with;
use ola_core::{InputModel, SimBackend, StaGate};
use ola_netlist::{analyze, FpgaDelay, JitteredDelay};

/// Shared sweep: `points` periods up to (and including) the rated period.
fn ts_grid(rated: u64, points: u64) -> Vec<u64> {
    (1..=points).map(|k| rated * k / points).collect()
}

/// The machine-checked bridge between the static and dynamic halves: for
/// each swept `Ts`, `Σ_{at-risk k} 2^{δ−k}` (pure STA, no simulation) must
/// dominate the empirical mean |error| (hundreds of simulated vectors).
#[test]
fn analytic_bound_dominates_empirical_mean_error() {
    for n in [6usize, 8] {
        let circuit = online_multiplier(n, 3);
        let delay = FpgaDelay::default();
        let rated = analyze(&circuit.netlist, &delay).critical_path();
        let ts = ts_grid(rated, 12);

        let cert = om_certification(&circuit, &delay, &ts).expect("generated netlist is a DAG");
        let weights = om_digit_weights(cert.digits());
        let (curve, _) = om_gate_level_curve_with(
            &circuit,
            &delay,
            InputModel::UniformDigits,
            &ts,
            200,
            2014,
            SimBackend::Auto,
            StaGate::On,
        );

        for (i, &t) in ts.iter().enumerate() {
            let bound = cert.error_bound(i, &weights);
            let measured = curve.mean_abs_error[i];
            assert!(
                measured <= bound + 1e-12,
                "N={n} Ts={t}: measured {measured} exceeds analytic bound {bound}"
            );
            if cert.all_certified(i) {
                assert_eq!(bound, 0.0);
                assert_eq!(measured, 0.0, "certified period must be error-free");
            }
        }
        // The sweep must include at least one certified and one at-risk
        // period, or the comparison proves nothing.
        assert!(cert.all_certified(ts.len() - 1), "rated period certifies the whole bus");
        assert!(!cert.all_certified(0), "deep overclock leaves digits at risk");
    }
}

/// The bound is a *worst-case structural* statement, so it also holds for
/// the jittered-delay emulation as long as certification is computed under
/// the same (deterministic) model the simulator uses.
#[test]
fn analytic_bound_holds_under_jittered_delays() {
    let circuit = online_multiplier(8, 3);
    let delay = JitteredDelay::new(FpgaDelay::default(), 15, 99);
    let rated = analyze(&circuit.netlist, &delay).critical_path();
    let ts = ts_grid(rated, 8);
    let cert = om_certification(&circuit, &delay, &ts).expect("DAG");
    let weights = om_digit_weights(cert.digits());
    let (curve, stats) = om_gate_level_curve_with(
        &circuit,
        &delay,
        InputModel::UniformDigits,
        &ts,
        120,
        7,
        SimBackend::Auto,
        StaGate::On,
    );
    assert_eq!(stats.backend, "event", "jitter is not batch-exact");
    for (i, _) in ts.iter().enumerate() {
        assert!(curve.mean_abs_error[i] <= cert.error_bound(i, &weights) + 1e-12);
    }
}
