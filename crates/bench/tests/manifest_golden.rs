//! Golden tests for the run-manifest schema and the `repro` /
//! `manifest_check` binaries' contract around it.

use ola_core::obs::json::{parse, JsonValue};
use ola_core::obs::{MetricSnapshot, OutputRecord, RunManifest, SpanRecord, ThreadsRecord, SCHEMA};
use std::path::PathBuf;
use std::process::Command;

/// A scratch directory unique to this test run.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ola-manifest-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sample_manifest(output: Option<OutputRecord>) -> RunManifest {
    let mut metrics = MetricSnapshot::default();
    metrics.counters.insert("ola.sim.event.runs".into(), 12);
    metrics.gauges.insert("ola.batch.depth".into(), 7);
    RunManifest {
        experiment: "fig4".into(),
        created_unix_ms: 1_700_000_000_123,
        git: "abc1234-dirty".into(),
        backend: "auto".into(),
        scale: 0.1,
        seeds: vec![("mc".into(), 41), ("gate".into(), 42)],
        ola_threads: ThreadsRecord { raw: Some("4".into()), resolved: 4, fallback: false },
        trace: "off".into(),
        annotations: vec![("ts_grid".into(), "10..=200".into())],
        spans: vec![SpanRecord {
            name: "experiment.fig4".into(),
            thread: 1,
            depth: 0,
            start_unix_ms: 1_700_000_000_000,
            start_us: 0,
            dur_us: 1234,
        }],
        metrics,
        outputs: output.into_iter().collect(),
    }
}

/// The golden top-level field list. `manifest_check` carries the same
/// list; schema drift must update `SCHEMA`, both lists, and DESIGN.md.
const FIELDS: [&str; 13] = [
    "schema",
    "experiment",
    "created_unix_ms",
    "git",
    "backend",
    "scale",
    "seeds",
    "ola_threads",
    "trace",
    "annotations",
    "spans",
    "metrics",
    "outputs",
];

#[test]
fn written_manifest_matches_the_golden_schema() {
    let dir = scratch("golden");
    let path = sample_manifest(None).write(&dir).expect("manifest write");
    assert_eq!(path, dir.join("fig4.json"));
    let text = std::fs::read_to_string(&path).expect("read back");
    assert!(text.ends_with('\n'), "manifest ends with a newline");

    let doc = parse(&text).expect("manifest parses");
    let fields: Vec<&str> =
        doc.as_object().expect("object").iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(fields, FIELDS, "top-level field set and order are golden");

    assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
    assert_eq!(doc.get("experiment").and_then(JsonValue::as_str), Some("fig4"));
    assert_eq!(doc.get("created_unix_ms").and_then(JsonValue::as_u64), Some(1_700_000_000_123));
    let seeds = doc.get("seeds").expect("seeds");
    assert_eq!(seeds.get("mc").and_then(JsonValue::as_u64), Some(41));
    assert_eq!(seeds.get("gate").and_then(JsonValue::as_u64), Some(42));
    let threads = doc.get("ola_threads").expect("ola_threads");
    assert_eq!(threads.get("raw").and_then(JsonValue::as_str), Some("4"));
    assert_eq!(threads.get("resolved").and_then(JsonValue::as_u64), Some(4));
    let spans = doc.get("spans").and_then(JsonValue::as_array).expect("spans");
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].get("name").and_then(JsonValue::as_str), Some("experiment.fig4"));
    let metrics = doc.get("metrics").expect("metrics");
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("ola.sim.event.runs"))
            .and_then(JsonValue::as_u64),
        Some(12)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manifest_check_accepts_valid_and_rejects_tampered_outputs() {
    let dir = scratch("check");
    // An output file plus a manifest that records it honestly.
    let out = dir.join("table.csv");
    std::fs::write(&out, "a,b\n1,2\n").expect("write output");
    let rec = OutputRecord::capture(out.to_str().expect("utf8 path"), &out).expect("hash output");
    let manifest_dir = dir.join("results").join("manifests");
    std::fs::create_dir_all(&manifest_dir).expect("mkdir");
    let mpath = sample_manifest(Some(rec)).write(&manifest_dir).expect("manifest write");

    let check = env!("CARGO_BIN_EXE_manifest_check");
    let ok = Command::new(check).arg(&mpath).current_dir(&dir).output().expect("run check");
    assert!(
        ok.status.success(),
        "valid manifest must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Tamper with the output file: the digest no longer matches.
    std::fs::write(&out, "a,b\n1,3\n").expect("tamper");
    let bad = Command::new(check).arg(&mpath).current_dir(&dir).output().expect("run check");
    assert_eq!(bad.status.code(), Some(1), "tampered output must fail validation");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("SHA-256 mismatch"), "stderr names the problem: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (observability PR): when `results/` cannot be created the
/// old `repro` ran every experiment and died with a panic backtrace out
/// of fig7's PGM write. It must now refuse up front with documented exit
/// code 3 and a clear message.
#[test]
fn repro_exits_3_when_results_dir_is_uncreatable() {
    let dir = scratch("exit3");
    // A *file* named `results` blocks create_dir_all regardless of
    // privileges (chmod-based read-only dirs don't stop root).
    std::fs::write(dir.join("results"), "not a directory").expect("block results/");
    let repro = env!("CARGO_BIN_EXE_repro");
    let out =
        Command::new(repro).args(["sta", "--quick"]).current_dir(&dir).output().expect("run repro");
    assert_eq!(out.status.code(), Some(3), "blocked results/ is an environment error");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("results"), "stderr points at the directory: {err}");
    assert!(err.contains("writable"), "stderr suggests the fix: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_rejects_bad_trace_mode_as_usage_error() {
    let dir = scratch("trace");
    let repro = env!("CARGO_BIN_EXE_repro");
    let out = Command::new(repro)
        .args(["sta", "--quick", "--trace", "loud"])
        .current_dir(&dir)
        .output()
        .expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
    let _ = std::fs::remove_dir_all(&dir);
}
