//! Typed errors for netlist construction and simulation.
//!
//! The panicking convenience APIs ([`Netlist::output`](crate::Netlist::output),
//! [`Netlist::eval`](crate::Netlist::eval), [`simulate`](crate::simulate), …)
//! are thin wrappers over fallible `try_*` counterparts; the panic messages
//! are exactly the [`Display`](std::fmt::Display) renderings of these error
//! types, so diagnostics are identical whichever API a caller picks.

use crate::NetId;
use std::fmt;

/// Errors from building or querying a [`Netlist`](crate::Netlist).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A named output bus does not exist.
    UnknownOutput {
        /// The requested bus name.
        name: String,
    },
    /// A gate referenced an input net that has not been created.
    DanglingInput {
        /// The offending net reference.
        net: NetId,
        /// Number of nets that exist.
        len: usize,
    },
    /// An input-value slice had the wrong length.
    InputArity {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A raw net index was out of range.
    NetOutOfRange {
        /// The requested index.
        index: usize,
        /// Number of nets that exist.
        len: usize,
    },
    /// An operation that requires a logic gate was applied to an input or
    /// constant net.
    NotALogicGate {
        /// The offending net.
        net: NetId,
    },
    /// A gate-input position was out of range for the gate's arity.
    NoSuchGateInput {
        /// The gate whose input was addressed.
        net: NetId,
        /// The requested input position.
        index: usize,
        /// The gate's arity.
        arity: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownOutput { name } => {
                write!(f, "no output bus named {name:?}")
            }
            NetlistError::DanglingInput { net, len } => {
                write!(f, "gate input {net:?} does not exist yet ({len} nets exist)")
            }
            NetlistError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            NetlistError::NetOutOfRange { index, len } => {
                write!(f, "net index {index} out of range ({len} nets exist)")
            }
            NetlistError::NotALogicGate { net } => {
                write!(f, "net {net:?} is not driven by a logic gate")
            }
            NetlistError::NoSuchGateInput { net, index, arity } => {
                write!(f, "gate {net:?} has no input {index} (arity {arity})")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Errors from event-driven simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An input-value slice had the wrong length.
    InputArity {
        /// Number of primary inputs of the netlist.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// The simulation exceeded its event budget without settling — the
    /// netlist contains a combinational cycle (oscillation) or is
    /// pathologically glitchy.
    Unsettled {
        /// Events processed before giving up.
        events: usize,
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The supplied fault plan does not fit the netlist.
    InvalidFault(NetlistError),
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled before
    /// the netlist settled. The partial waveforms are discarded —
    /// cancellation is a control-flow signal, not a result.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InputArity { expected, got } => {
                write!(f, "new input arity mismatch: expected {expected} values, got {got}")
            }
            SimError::Unsettled { events, budget } => write!(
                f,
                "simulation unsettled after {events} events (budget {budget}): \
                 combinational cycle or oscillation"
            ),
            SimError::InvalidFault(e) => write!(f, "invalid fault plan: {e}"),
            SimError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidFault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SimError {
    fn from(e: NetlistError) -> Self {
        SimError::InvalidFault(e)
    }
}

/// Errors from the static-analysis layer ([`crate::sta`]).
///
/// Forward-pass timing analysis, slack, path enumeration, certification
/// and dead-cone pruning all require the netlist to be topologically
/// ordered (the DAG-by-construction invariant). The only way to break that
/// invariant is [`Netlist::rewire_input`](crate::Netlist::rewire_input);
/// analyses detect the breakage statically and refuse, instead of silently
/// reporting wrong numbers the way a naive forward pass would.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StaError {
    /// A gate reads a net created at or after itself, so a single forward
    /// (or backward) pass cannot order the computation. Run
    /// [`sta::lint::check`](crate::sta::lint::check) to find out whether
    /// the back-reference actually closes a combinational cycle.
    NotTopological {
        /// The first gate whose fanin references itself or a later net.
        net: NetId,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::NotTopological { net } => write!(
                f,
                "netlist is not topologically ordered at gate {net:?}: \
                 static analysis requires a DAG"
            ),
        }
    }
}

impl std::error::Error for StaError {}

/// Errors from compiling or running a batch (bit-parallel) simulation —
/// see [`crate::batch`].
///
/// Every variant is *recoverable by falling back to the event-driven
/// engine*: batch simulation is an accelerator, never the only way to get
/// an answer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchError {
    /// The delay model declined batch compilation
    /// ([`DelayModel::batch_exact`](crate::DelayModel::batch_exact)
    /// returned `false`) — e.g. a jittered place-and-route emulation.
    DelayNotBatchExact,
    /// The netlist is not topologically ordered (a combinational cycle was
    /// created via [`Netlist::rewire_input`](crate::Netlist::rewire_input)),
    /// so a single levelized pass cannot evaluate it.
    TopologyBroken {
        /// The first gate referencing a net at or after itself.
        net: NetId,
    },
    /// More input vectors (or per-lane fault plans) than the lane word can
    /// carry: 64 for `u64` batches, `64·W` for
    /// [`LaneBlock<W>`](crate::batch::LaneBlock) batches.
    TooManyLanes {
        /// The number of vectors or plans supplied.
        got: usize,
        /// The lane capacity of the word type in use.
        cap: u32,
    },
    /// An input-vector slice had the wrong length.
    InputArity {
        /// Number of primary inputs of the compiled netlist.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Previous- and new-input batches carry different lane counts.
    LaneMismatch {
        /// Lane count of the previous-input batch.
        prev: u32,
        /// Lane count of the new-input batch.
        new: u32,
    },
    /// A fault plan references nets outside the compiled netlist, or a
    /// fault set was compiled against a different netlist.
    InvalidFault(NetlistError),
    /// The run's [`CancelToken`](crate::CancelToken) was cancelled before
    /// the settling pass finished.
    Cancelled,
    /// Serialized [`BatchProgram`](crate::batch::BatchProgram) bytes failed
    /// validation: wrong magic, truncated, trailing garbage, or internally
    /// inconsistent (a fanin referencing a later net, an unknown gate
    /// kind). Deserialization never trusts its input — a corrupted cache
    /// entry degrades to a recompile, not a wrong simulation.
    MalformedProgram {
        /// What failed to parse.
        reason: &'static str,
    },
    /// A sampling grid contains the same observation time twice, which
    /// would silently double-count that instant in every violation-rate
    /// and error reduction derived from the sweep.
    DuplicateTs {
        /// The duplicated observation time.
        ts: u64,
    },
    /// The base result handed to
    /// [`BatchProgram::run_incremental`](crate::batch::BatchProgram::run_incremental)
    /// was produced by a different program shape.
    IncrementalBaseMismatch {
        /// Nets in the program being run.
        expected: usize,
        /// Nets in the base result.
        got: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::DelayNotBatchExact => write!(
                f,
                "delay model is not batch-exact (per-run variation); \
                 use the event-driven simulator"
            ),
            BatchError::TopologyBroken { net } => write!(
                f,
                "netlist is not topologically ordered at gate {net:?}: \
                 batch programs require a DAG"
            ),
            BatchError::TooManyLanes { got, cap } => {
                write!(f, "batch holds at most {cap} vectors per lane word, got {got}")
            }
            BatchError::InputArity { expected, got } => {
                write!(f, "batch input arity mismatch: expected {expected} values, got {got}")
            }
            BatchError::LaneMismatch { prev, new } => {
                write!(f, "previous inputs carry {prev} lanes but new inputs carry {new}")
            }
            BatchError::InvalidFault(e) => write!(f, "invalid batch fault set: {e}"),
            BatchError::Cancelled => write!(f, "batch simulation cancelled"),
            BatchError::MalformedProgram { reason } => {
                write!(f, "malformed batch program bytes: {reason}")
            }
            BatchError::DuplicateTs { ts } => {
                write!(f, "sampling grid contains observation time {ts} more than once")
            }
            BatchError::IncrementalBaseMismatch { expected, got } => write!(
                f,
                "incremental base result has {got} nets but the program has {expected}: \
                 base must come from the same compiled program"
            ),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::InvalidFault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for BatchError {
    fn from(e: NetlistError) -> Self {
        BatchError::InvalidFault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_substrings() {
        // The panicking wrappers format these errors, and downstream tests
        // match on the historical substrings — keep them stable.
        let e = NetlistError::UnknownOutput { name: "nope".into() };
        assert!(e.to_string().contains("no output bus"));
        let e = NetlistError::DanglingInput { net: NetId(100), len: 1 };
        assert!(e.to_string().contains("does not exist yet"));
        let e = NetlistError::InputArity { expected: 2, got: 1 };
        assert!(e.to_string().contains("expected 2 input values"));
        let e = NetlistError::NetOutOfRange { index: 9, len: 3 };
        assert!(e.to_string().contains("net index 9 out of range"));
        let e = SimError::InputArity { expected: 4, got: 0 };
        assert!(e.to_string().contains("new input arity"));
    }

    #[test]
    fn sim_error_wraps_netlist_error() {
        let inner = NetlistError::NetOutOfRange { index: 7, len: 2 };
        let e: SimError = inner.clone().into();
        assert_eq!(e, SimError::InvalidFault(inner));
        assert!(std::error::Error::source(&e).is_some());
    }
}
