//! Bit-parallel batch timing simulation (parallel-pattern simulation).
//!
//! The event-driven simulator ([`simulate`](crate::simulate)) answers the
//! overclocking question for *one* input vector per run. Every experiment
//! in the paper reproduction, however, is a product loop — thousands of
//! Monte-Carlo vectors × a grid of clock periods `Ts` × (for campaigns) a
//! set of fault plans. This module collapses that loop:
//!
//! 1. [`BatchProgram::compile`] flattens a [`Netlist`](crate::Netlist)
//!    once into a levelized struct-of-arrays program, sampling each gate's
//!    delay from a [batch-exact](crate::DelayModel::batch_exact) model.
//!    Programs serialize deterministically ([`BatchProgram::to_bytes`]),
//!    so callers can memoize compiles keyed by a netlist digest;
//! 2. [`BatchProgram::run`] evaluates **one lane word of input vectors at
//!    once**, one bit-lane per vector ([`LaneInputs`]). The word type is
//!    any [`LaneWord`]: `u64` ([`BatchInputs`]) runs 64 lanes,
//!    [`LaneBlock<W>`] ([`WideInputs`]) runs `64·W` — 256 or 512 lanes per
//!    pass. With deterministic delays, each net's settling waveform is an
//!    exact ordered list of `(time, word)` steps ([`Wave`]) computed in
//!    one topological pass — no event queue;
//! 3. [`LaneSimResult::bus_waves`] + [`LaneBusWaves::sweep`] sample the
//!    flip-flop-captured value of an output bus for an *entire* `Ts` grid
//!    from the same run ([`LaneBusWaves::try_sweep`] also rejects grids
//!    that would double-count an observation time);
//! 4. [`BatchProgram::run_with_faults`] additionally diverges lanes at
//!    [`FaultPlan`](crate::FaultPlan) sites ([`BatchFaultSet`],
//!    [`WideFaultSet`]), so a whole lane word of *different* fault
//!    scenarios shares one pass;
//! 5. [`BatchProgram::run_incremental`] reruns against a previous result,
//!    recomputing only the levelized fanout cone of the nets whose
//!    stimulus (input words or fault state) changed — clean nets share
//!    their waveforms with the base run by reference.
//!
//! Exactness is the point, not an approximation: under transport-delay
//! semantics with per-gate constant delays, `out(t + d) = f(inputs(t))`,
//! so the batch waveforms are bit-identical per lane to the event-driven
//! simulator's (property-tested in `tests/proptest_netlist.rs`). Models
//! that emulate per-run place-and-route variation
//! ([`JitteredDelay`](crate::JitteredDelay)) decline compilation with
//! [`BatchError::DelayNotBatchExact`](crate::BatchError::DelayNotBatchExact),
//! and callers transparently fall back to the event engine.
//!
//! # Example
//!
//! ```
//! use ola_netlist::batch::{BatchInputs, BatchProgram};
//! use ola_netlist::{Netlist, UnitDelay};
//!
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.input("b");
//! let z = nl.xor(a, b);
//! nl.set_output("z", vec![z]);
//!
//! let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
//! let prev = BatchInputs::zeros(2, 2).unwrap();
//! let new = BatchInputs::pack(&[vec![true, false], vec![true, true]]).unwrap();
//! let res = prog.run(&prev, &new).unwrap();
//! // Lane 0 (a=1, b=0): z rises after one gate delay.
//! assert!(!res.value_at(z, 0, 0));
//! assert!(res.value_at(z, 0, 100));
//! // Lane 1 (a=1, b=1): z stays 0 — sampled from the same run.
//! assert!(!res.value_at(z, 1, 100));
//! ```

mod block;
mod engine;
mod fault;
mod program;
mod sampler;
mod wave;

pub use block::{LaneBlock, LaneWord};
pub use engine::{BatchSimResult, LaneSimResult, WideSimResult};
pub use fault::{BatchFaultSet, LaneFaultSet, WideFaultSet};
pub use program::{BatchInputs, BatchProgram, LaneInputs, WideInputs};
pub use sampler::{BatchBusWaves, LaneBusWaves, LaneTsSweep, TsSweep, WideBusWaves, WideTsSweep};
pub use wave::{LaneWave, Wave, WideWave};

/// Number of vectors one legacy `u64` lane word carries; `LaneBlock<W>`
/// words carry `64·W` (see [`LaneWord::LANES`]).
pub const MAX_LANES: u32 = 64;
