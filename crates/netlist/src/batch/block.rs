//! Lane words of arbitrary width: the abstraction that lets the batch
//! engine run 64, 256, or 512 input vectors per pass.
//!
//! The original engine hard-coded `u64` lane words (64 lanes). Everything
//! the engine does with a word is a handful of bitwise primitives, so the
//! engine is generic over [`LaneWord`] and the word width is a type
//! parameter: `u64` keeps the legacy 64-lane path bit-for-bit (it is the
//! `W = 1` case in spirit and in codegen), and [`LaneBlock<W>`] packs `W`
//! `u64` words into one `64·W`-lane block — `LaneBlock<4>` is 256 lanes,
//! `LaneBlock<8>` is 512. Wider blocks amortize the per-step bookkeeping
//! (merge cursors, step allocation, time comparisons) over more lanes; the
//! per-lane cost of a sweep drops accordingly (measured in
//! `BENCH_batch.json`).

/// A fixed-width word of simulation lanes: bit `l` belongs to lane `l`.
///
/// Implementations are plain bit vectors — `u64` (64 lanes, the legacy
/// batch path) and [`LaneBlock<W>`] (`64·W` lanes). The engine only ever
/// needs these bitwise primitives, so waveforms, fault sets, inputs, and
/// results are all generic over the word type.
pub trait LaneWord:
    Copy + Clone + PartialEq + Eq + std::fmt::Debug + Default + Send + Sync + 'static
{
    /// Number of lanes this word carries.
    const LANES: u32;
    /// The all-zeros word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;

    /// Bitwise AND.
    #[must_use]
    fn and(self, o: Self) -> Self;
    /// Bitwise OR.
    #[must_use]
    fn or(self, o: Self) -> Self;
    /// Bitwise XOR.
    #[must_use]
    fn xor(self, o: Self) -> Self;
    /// Bitwise NOT.
    #[must_use]
    fn not(self) -> Self;

    /// The word with only `lane`'s bit set.
    #[must_use]
    fn lane_bit(lane: u32) -> Self;
    /// The bit of `lane`.
    #[must_use]
    fn bit(self, lane: u32) -> bool;
    /// The word with the low `lanes` bits set (the active-lane mask).
    #[must_use]
    fn active_mask(lanes: u32) -> Self;
    /// Number of set bits.
    #[must_use]
    fn count_ones(self) -> u32;
    /// Calls `f` with the index of every set bit, in ascending order.
    fn for_each_lane(self, f: impl FnMut(u32));

    /// The all-zeros or all-ones word.
    #[must_use]
    fn splat(v: bool) -> Self {
        if v {
            Self::ONES
        } else {
            Self::ZERO
        }
    }
    /// True if no bit is set.
    #[must_use]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }
}

impl LaneWord for u64 {
    const LANES: u32 = 64;
    const ZERO: Self = 0;
    const ONES: Self = u64::MAX;

    fn and(self, o: Self) -> Self {
        self & o
    }
    fn or(self, o: Self) -> Self {
        self | o
    }
    fn xor(self, o: Self) -> Self {
        self ^ o
    }
    fn not(self) -> Self {
        !self
    }
    fn lane_bit(lane: u32) -> Self {
        1u64 << lane
    }
    fn bit(self, lane: u32) -> bool {
        self >> lane & 1 == 1
    }
    fn active_mask(lanes: u32) -> Self {
        if lanes >= 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        }
    }
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
    fn for_each_lane(self, mut f: impl FnMut(u32)) {
        let mut w = self;
        while w != 0 {
            f(w.trailing_zeros());
            w &= w - 1;
        }
    }
}

/// A block of `W` lane words: `64·W` simulation lanes evaluated per pass.
///
/// Lane `l` lives in word `l / 64`, bit `l % 64`. `LaneBlock<4>` carries
/// 256 lanes, `LaneBlock<8>` carries 512 — see the
/// [module docs](self) for the throughput rationale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LaneBlock<const W: usize>(pub [u64; W]);

impl<const W: usize> Default for LaneBlock<W> {
    fn default() -> Self {
        LaneBlock([0; W])
    }
}

impl<const W: usize> LaneWord for LaneBlock<W> {
    const LANES: u32 = 64 * W as u32;
    const ZERO: Self = LaneBlock([0; W]);
    const ONES: Self = LaneBlock([u64::MAX; W]);

    fn and(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a &= b;
        }
        LaneBlock(r)
    }
    fn or(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a |= b;
        }
        LaneBlock(r)
    }
    fn xor(self, o: Self) -> Self {
        let mut r = self.0;
        for (a, b) in r.iter_mut().zip(o.0) {
            *a ^= b;
        }
        LaneBlock(r)
    }
    fn not(self) -> Self {
        let mut r = self.0;
        for a in &mut r {
            *a = !*a;
        }
        LaneBlock(r)
    }
    fn lane_bit(lane: u32) -> Self {
        let mut r = [0u64; W];
        r[lane as usize / 64] = 1u64 << (lane % 64);
        LaneBlock(r)
    }
    fn bit(self, lane: u32) -> bool {
        self.0[lane as usize / 64] >> (lane % 64) & 1 == 1
    }
    fn active_mask(lanes: u32) -> Self {
        let mut r = [0u64; W];
        for (i, w) in r.iter_mut().enumerate() {
            let lo = i as u32 * 64;
            *w = if lanes >= lo + 64 {
                u64::MAX
            } else if lanes > lo {
                (1u64 << (lanes - lo)) - 1
            } else {
                0
            };
        }
        LaneBlock(r)
    }
    fn count_ones(self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }
    fn for_each_lane(self, mut f: impl FnMut(u32)) {
        for (i, &word) in self.0.iter().enumerate() {
            let base = i as u32 * 64;
            let mut w = word;
            while w != 0 {
                f(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_word<B: LaneWord>() {
        assert!(B::ZERO.is_zero());
        assert!(!B::ONES.is_zero());
        assert_eq!(B::ONES.count_ones(), B::LANES);
        assert_eq!(B::splat(true), B::ONES);
        assert_eq!(B::splat(false), B::ZERO);
        assert_eq!(B::active_mask(0), B::ZERO);
        assert_eq!(B::active_mask(B::LANES), B::ONES);
        for lane in [0, 1, B::LANES / 2, B::LANES - 1] {
            let b = B::lane_bit(lane);
            assert_eq!(b.count_ones(), 1, "lane {lane}");
            assert!(b.bit(lane));
            assert!(b.and(B::ONES) == b && b.or(B::ZERO) == b);
            assert!(b.xor(b).is_zero());
            assert!(!b.not().bit(lane));
            let mask = B::active_mask(lane + 1);
            assert!(mask.bit(lane));
            assert_eq!(mask.count_ones(), lane + 1);
            let mut seen = Vec::new();
            mask.for_each_lane(|l| seen.push(l));
            assert_eq!(seen, (0..=lane).collect::<Vec<_>>());
        }
    }

    #[test]
    fn u64_word_primitives() {
        check_word::<u64>();
    }

    #[test]
    fn lane_block_primitives() {
        check_word::<LaneBlock<2>>();
        check_word::<LaneBlock<4>>();
        check_word::<LaneBlock<8>>();
    }

    #[test]
    fn block_masks_straddle_word_boundaries() {
        let m = <LaneBlock<2> as LaneWord>::active_mask(65);
        assert_eq!(m.0, [u64::MAX, 1]);
        let b = <LaneBlock<2> as LaneWord>::lane_bit(64);
        assert_eq!(b.0, [0, 1]);
        assert!(b.bit(64));
        assert!(!b.bit(63));
    }
}
