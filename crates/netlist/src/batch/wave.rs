//! The lane-word waveform store.
//!
//! One [`LaneWave`] is the settling history of one net for **64 input
//! vectors at once**: bit `l` of every word belongs to lane (vector) `l`.
//! A waveform is an initial word plus a strictly time-ordered list of
//! `(time, word)` steps, each step differing from its predecessor — the
//! batch counterpart of the event-driven simulator's per-net
//! `Vec<(u64, bool)>` transition list.

/// The settling waveform of one net across up to 64 lanes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaneWave {
    /// Lane word before `t = 0` (the settled previous-input state).
    pub(crate) initial: u64,
    /// Strictly increasing `(time, word)` steps; every word differs from
    /// the one before it.
    pub(crate) steps: Vec<(u64, u64)>,
}

impl LaneWave {
    /// A constant waveform.
    pub(crate) fn constant(word: u64) -> LaneWave {
        LaneWave { initial: word, steps: Vec::new() }
    }

    /// The lane word before the inputs switched.
    #[must_use]
    pub fn initial(&self) -> u64 {
        self.initial
    }

    /// The `(time, word)` steps.
    #[must_use]
    pub fn steps(&self) -> &[(u64, u64)] {
        &self.steps
    }

    /// The lane word a register clocked `t` time units after the input
    /// switch would capture.
    #[must_use]
    pub fn word_at(&self, t: u64) -> u64 {
        match self.steps.partition_point(|&(time, _)| time <= t) {
            0 => self.initial,
            k => self.steps[k - 1].1,
        }
    }

    /// The fully settled lane word.
    #[must_use]
    pub fn final_word(&self) -> u64 {
        self.steps.last().map_or(self.initial, |&(_, w)| w)
    }

    /// Time of the last change in any lane (`None` if the net never
    /// transitions).
    #[must_use]
    pub fn last_change(&self) -> Option<u64> {
        self.steps.last().map(|&(t, _)| t)
    }

    /// Samples a whole (ascending or not) `ts` grid in one pass per point.
    #[must_use]
    pub fn sample_grid(&self, ts: &[u64]) -> Vec<u64> {
        ts.iter().map(|&t| self.word_at(t)).collect()
    }

    /// Extracts the scalar transition history of one lane, in the
    /// event-driven simulator's `(time, new_value)` format, dropping steps
    /// that do not change this lane's bit.
    #[must_use]
    pub fn lane_waveform(&self, lane: u32) -> Vec<(u64, bool)> {
        let mask = 1u64 << lane;
        let mut out = Vec::new();
        let mut cur = self.initial & mask;
        for &(t, w) in &self.steps {
            let bit = w & mask;
            if bit != cur {
                cur = bit;
                out.push((t, bit != 0));
            }
        }
        out
    }

    /// The value of one lane at time `t`.
    #[must_use]
    pub fn lane_value_at(&self, lane: u32, t: u64) -> bool {
        self.word_at(t) >> lane & 1 == 1
    }

    /// Number of word-level steps (engine work, not per-lane transitions).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> LaneWave {
        LaneWave { initial: 0b01, steps: vec![(10, 0b11), (20, 0b10), (35, 0b00)] }
    }

    #[test]
    fn word_sampling_uses_last_step_at_or_before_t() {
        let w = wave();
        assert_eq!(w.word_at(0), 0b01);
        assert_eq!(w.word_at(9), 0b01);
        assert_eq!(w.word_at(10), 0b11);
        assert_eq!(w.word_at(34), 0b10);
        assert_eq!(w.word_at(1000), 0b00);
        assert_eq!(w.final_word(), 0b00);
        assert_eq!(w.last_change(), Some(35));
    }

    #[test]
    fn lane_waveform_drops_unchanged_steps() {
        let w = wave();
        // Lane 0: 1 -> 1 -> 0 -> 0: one transition at t=20.
        assert_eq!(w.lane_waveform(0), vec![(20, false)]);
        // Lane 1: 0 -> 1 -> 1 -> 0: up at 10, down at 35.
        assert_eq!(w.lane_waveform(1), vec![(10, true), (35, false)]);
        assert!(w.lane_value_at(1, 10));
        assert!(!w.lane_value_at(1, 9));
    }

    #[test]
    fn grid_sampling_matches_pointwise() {
        let w = wave();
        let ts = [0u64, 10, 15, 20, 35, 99];
        let grid = w.sample_grid(&ts);
        for (i, &t) in ts.iter().enumerate() {
            assert_eq!(grid[i], w.word_at(t));
        }
    }

    #[test]
    fn constant_wave_never_steps() {
        let w = LaneWave::constant(0xFF);
        assert_eq!(w.word_at(12345), 0xFF);
        assert_eq!(w.final_word(), 0xFF);
        assert_eq!(w.last_change(), None);
        assert!(w.lane_waveform(3).is_empty());
    }
}
