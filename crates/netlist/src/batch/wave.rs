//! The lane-word waveform store.
//!
//! One [`Wave`] is the settling history of one net for an entire lane word
//! of input vectors at once: bit `l` of every word belongs to lane
//! (vector) `l`. A waveform is an initial word plus a strictly
//! time-ordered list of `(time, word)` steps, each step differing from its
//! predecessor — the batch counterpart of the event-driven simulator's
//! per-net `Vec<(u64, bool)>` transition list.
//!
//! The word type is any [`LaneWord`]: [`LaneWave`] (= `Wave<u64>`) is the
//! legacy 64-lane waveform, `Wave<LaneBlock<W>>` carries `64·W` lanes.

use crate::batch::block::{LaneBlock, LaneWord};

/// The settling waveform of one net across one lane word of vectors.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Wave<B: LaneWord = u64> {
    /// Lane word before `t = 0` (the settled previous-input state).
    pub(crate) initial: B,
    /// Strictly increasing `(time, word)` steps; every word differs from
    /// the one before it.
    pub(crate) steps: Vec<(u64, B)>,
}

/// The legacy 64-lane waveform: one `u64` word per step.
pub type LaneWave = Wave<u64>;

/// A multi-word waveform carrying `64·W` lanes per step.
pub type WideWave<const W: usize> = Wave<LaneBlock<W>>;

impl<B: LaneWord> Wave<B> {
    /// A constant waveform.
    pub(crate) fn constant(word: B) -> Wave<B> {
        Wave { initial: word, steps: Vec::new() }
    }

    /// The lane word before the inputs switched.
    #[must_use]
    pub fn initial(&self) -> B {
        self.initial
    }

    /// The `(time, word)` steps.
    #[must_use]
    pub fn steps(&self) -> &[(u64, B)] {
        &self.steps
    }

    /// The lane word a register clocked `t` time units after the input
    /// switch would capture.
    #[must_use]
    pub fn word_at(&self, t: u64) -> B {
        match self.steps.partition_point(|&(time, _)| time <= t) {
            0 => self.initial,
            k => self.steps[k - 1].1,
        }
    }

    /// The fully settled lane word.
    #[must_use]
    pub fn final_word(&self) -> B {
        self.steps.last().map_or(self.initial, |&(_, w)| w)
    }

    /// Time of the last change in any lane (`None` if the net never
    /// transitions).
    #[must_use]
    pub fn last_change(&self) -> Option<u64> {
        self.steps.last().map(|&(t, _)| t)
    }

    /// Samples a whole (ascending or not) `ts` grid in one pass per point.
    #[must_use]
    pub fn sample_grid(&self, ts: &[u64]) -> Vec<B> {
        ts.iter().map(|&t| self.word_at(t)).collect()
    }

    /// Extracts the scalar transition history of one lane, in the
    /// event-driven simulator's `(time, new_value)` format, dropping steps
    /// that do not change this lane's bit.
    #[must_use]
    pub fn lane_waveform(&self, lane: u32) -> Vec<(u64, bool)> {
        let mut out = Vec::new();
        let mut cur = self.initial.bit(lane);
        for &(t, w) in &self.steps {
            let bit = w.bit(lane);
            if bit != cur {
                cur = bit;
                out.push((t, bit));
            }
        }
        out
    }

    /// The value of one lane at time `t`.
    #[must_use]
    pub fn lane_value_at(&self, lane: u32, t: u64) -> bool {
        self.word_at(t).bit(lane)
    }

    /// Number of word-level steps (engine work, not per-lane transitions).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave() -> LaneWave {
        LaneWave { initial: 0b01, steps: vec![(10, 0b11), (20, 0b10), (35, 0b00)] }
    }

    #[test]
    fn word_sampling_uses_last_step_at_or_before_t() {
        let w = wave();
        assert_eq!(w.word_at(0), 0b01);
        assert_eq!(w.word_at(9), 0b01);
        assert_eq!(w.word_at(10), 0b11);
        assert_eq!(w.word_at(34), 0b10);
        assert_eq!(w.word_at(1000), 0b00);
        assert_eq!(w.final_word(), 0b00);
        assert_eq!(w.last_change(), Some(35));
    }

    #[test]
    fn lane_waveform_drops_unchanged_steps() {
        let w = wave();
        // Lane 0: 1 -> 1 -> 0 -> 0: one transition at t=20.
        assert_eq!(w.lane_waveform(0), vec![(20, false)]);
        // Lane 1: 0 -> 1 -> 1 -> 0: up at 10, down at 35.
        assert_eq!(w.lane_waveform(1), vec![(10, true), (35, false)]);
        assert!(w.lane_value_at(1, 10));
        assert!(!w.lane_value_at(1, 9));
    }

    #[test]
    fn grid_sampling_matches_pointwise() {
        let w = wave();
        let ts = [0u64, 10, 15, 20, 35, 99];
        let grid = w.sample_grid(&ts);
        for (i, &t) in ts.iter().enumerate() {
            assert_eq!(grid[i], w.word_at(t));
        }
    }

    #[test]
    fn constant_wave_never_steps() {
        let w = LaneWave::constant(0xFF);
        assert_eq!(w.word_at(12345), 0xFF);
        assert_eq!(w.final_word(), 0xFF);
        assert_eq!(w.last_change(), None);
        assert!(w.lane_waveform(3).is_empty());
    }

    #[test]
    fn wide_waves_track_lanes_past_word_boundaries() {
        use crate::batch::block::LaneBlock;
        let hi = |l: u32| <LaneBlock<2> as LaneWord>::lane_bit(l);
        let w = WideWave::<2> { initial: hi(70), steps: vec![(5, hi(70).or(hi(3))), (9, hi(3))] };
        assert_eq!(w.lane_waveform(70), vec![(9, false)]);
        assert_eq!(w.lane_waveform(3), vec![(5, true)]);
        assert!(w.lane_value_at(70, 0));
        assert!(!w.lane_value_at(70, 9));
        assert_eq!(w.final_word(), hi(3));
    }
}
