//! Compiling a [`Netlist`] into a flat batch program.
//!
//! [`BatchProgram::compile`] freezes three things once, ahead of any number
//! of simulation runs: the gate structure in struct-of-arrays form, the
//! per-gate delays sampled from a batch-exact [`DelayModel`], and the
//! topological levelization (validated so a single forward pass in net-id
//! order is a correct evaluation order, and exposed as per-net levels plus
//! a depth statistic). [`LaneInputs`] packs input vectors into lane words:
//! bit `l` of word `i` is input `i` of vector `l`. The word type decides
//! the batch width — [`BatchInputs`] (= `LaneInputs<u64>`) carries up to
//! [`MAX_LANES`] vectors, [`WideInputs<W>`] carries up to `64·W`.
//!
//! A compiled program is width-agnostic: the same [`BatchProgram`] runs
//! 64-lane and 512-lane batches, so compile-once memoization (keyed by the
//! netlist digest — see [`BatchProgram::to_bytes`] and
//! `ola_core::memo`) pays off across every width.

use crate::batch::block::{LaneBlock, LaneWord};
use crate::{BatchError, DelayModel, GateKind, NetId, Netlist};

/// A [`Netlist`] compiled into a flat, struct-of-arrays program for the
/// bit-parallel batch engine.
///
/// Compilation is the expensive-once part of batch simulation: it samples
/// every gate's delay from the [`DelayModel`] exactly once (which is why
/// the model must be [batch-exact](DelayModel::batch_exact)), verifies the
/// netlist is a DAG in net-id order, and computes the levelization. The
/// program borrows nothing, so one compile can be shared across threads and
/// reused for any number of [`run`](BatchProgram::run) /
/// [`run_with_faults`](BatchProgram::run_with_faults) calls — at any lane
/// width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchProgram {
    pub(crate) kinds: Vec<GateKind>,
    pub(crate) in0: Vec<u32>,
    pub(crate) in1: Vec<u32>,
    pub(crate) in2: Vec<u32>,
    /// Raw per-gate delay sampled from the model (0 for inputs/constants).
    pub(crate) delays: Vec<u64>,
    /// `true` for `Const` nets driving 1, `false` elsewhere.
    pub(crate) const_ones: Vec<bool>,
    /// Net index of each primary input, in declaration order.
    pub(crate) input_nets: Vec<u32>,
    /// Topological level of each net (inputs/constants are 0, a gate is one
    /// more than its deepest fanin).
    pub(crate) levels: Vec<u32>,
    depth: u32,
}

/// Magic + version tag of the [`BatchProgram::to_bytes`] wire format.
const PROGRAM_MAGIC: &[u8; 8] = b"olabp/1\n";

impl BatchProgram {
    /// Compiles `netlist` under `delay` into a batch program.
    ///
    /// # Errors
    ///
    /// * [`BatchError::DelayNotBatchExact`] if the delay model declines
    ///   batch compilation (e.g. [`JitteredDelay`](crate::JitteredDelay)
    ///   emulating per-run place-and-route variation) — fall back to the
    ///   event-driven simulator;
    /// * [`BatchError::TopologyBroken`] if the netlist is not topologically
    ///   ordered (a combinational cycle was created via
    ///   [`Netlist::rewire_input`]).
    pub fn compile<M: DelayModel + ?Sized>(
        netlist: &Netlist,
        delay: &M,
    ) -> Result<BatchProgram, BatchError> {
        if !delay.batch_exact() {
            return Err(BatchError::DelayNotBatchExact);
        }
        let n = netlist.len();
        let mut kinds = Vec::with_capacity(n);
        let mut in0 = vec![0u32; n];
        let mut in1 = vec![0u32; n];
        let mut in2 = vec![0u32; n];
        let mut delays = vec![0u64; n];
        let mut const_ones = vec![false; n];
        let mut levels = vec![0u32; n];
        let mut depth = 0u32;

        for (i, g) in netlist.gate_nodes().iter().enumerate() {
            kinds.push(g.kind);
            let id = NetId(i as u32);
            delays[i] = delay.gate_delay(g.kind, id);
            match g.kind {
                GateKind::Input => {}
                GateKind::Const => {
                    const_ones[i] = g.const_value;
                }
                _ => {
                    let mut level = 0u32;
                    for (slot, inp) in g.input_slice().iter().enumerate() {
                        if inp.index() >= i {
                            return Err(BatchError::TopologyBroken { net: id });
                        }
                        level = level.max(levels[inp.index()] + 1);
                        match slot {
                            0 => in0[i] = inp.0,
                            1 => in1[i] = inp.0,
                            _ => in2[i] = inp.0,
                        }
                    }
                    levels[i] = level;
                    depth = depth.max(level);
                }
            }
        }

        let input_nets = netlist.inputs().iter().map(|id| id.0).collect();
        crate::obs::with_observer(|o| o.batch_compile(n as u64, u64::from(depth) + 1));
        Ok(BatchProgram { kinds, in0, in1, in2, delays, const_ones, input_nets, levels, depth })
    }

    /// Number of nets in the compiled netlist.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_nets.len()
    }

    /// The topological level of `net` (0 for inputs and constants).
    #[must_use]
    pub fn level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// The logic depth of the netlist in levels.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of logic gates (excluding inputs and constants).
    #[must_use]
    pub fn logic_gate_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_logic()).count()
    }

    /// Serializes the program to a deterministic byte string (the payload
    /// stored by the compile-memoization tier, `ola_core::memo`).
    ///
    /// The format is a private little-endian framing; the only contract is
    /// that [`BatchProgram::from_bytes`] round-trips it exactly and that
    /// equal programs serialize to equal bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.num_nets();
        let mut out = Vec::with_capacity(16 + n * 22);
        out.extend_from_slice(PROGRAM_MAGIC);
        let push_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push_u32(&mut out, n as u32);
        push_u32(&mut out, self.input_nets.len() as u32);
        push_u32(&mut out, self.depth);
        for k in &self.kinds {
            out.push(*k as u8);
        }
        for i in 0..n {
            push_u32(&mut out, self.in0[i]);
            push_u32(&mut out, self.in1[i]);
            push_u32(&mut out, self.in2[i]);
            push_u32(&mut out, self.levels[i]);
            push_u64(&mut out, self.delays[i]);
            out.push(u8::from(self.const_ones[i]));
        }
        for inp in &self.input_nets {
            push_u32(&mut out, *inp);
        }
        out
    }

    /// Deserializes a program produced by [`BatchProgram::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`BatchError::MalformedProgram`] if the bytes are not a valid
    /// serialized program (wrong magic, truncated, or inconsistent counts).
    pub fn from_bytes(bytes: &[u8]) -> Result<BatchProgram, BatchError> {
        let fail = |reason: &'static str| BatchError::MalformedProgram { reason };
        let (magic, mut rest) = bytes
            .split_at_checked(PROGRAM_MAGIC.len())
            .ok_or(fail("shorter than the magic tag"))?;
        if magic != PROGRAM_MAGIC {
            return Err(fail("wrong magic tag"));
        }
        let take_u32 = |rest: &mut &[u8]| -> Result<u32, BatchError> {
            let (head, tail) = rest.split_at_checked(4).ok_or(fail("truncated header field"))?;
            *rest = tail;
            Ok(u32::from_le_bytes(head.try_into().map_err(|_| fail("truncated header field"))?))
        };
        let n = take_u32(&mut rest)? as usize;
        let num_inputs = take_u32(&mut rest)? as usize;
        let depth = take_u32(&mut rest)?;
        let (kind_bytes, mut rest) =
            rest.split_at_checked(n).ok_or(fail("truncated gate-kind table"))?;
        let mut kinds = Vec::with_capacity(n);
        for &b in kind_bytes {
            kinds.push(*GateKind::ALL.get(b as usize).ok_or(fail("unknown gate kind"))?);
        }
        let mut in0 = vec![0u32; n];
        let mut in1 = vec![0u32; n];
        let mut in2 = vec![0u32; n];
        let mut levels = vec![0u32; n];
        let mut delays = vec![0u64; n];
        let mut const_ones = vec![false; n];
        for i in 0..n {
            let (row, tail) = rest.split_at_checked(25).ok_or(fail("truncated net row"))?;
            rest = tail;
            let u32_at = |o: usize| {
                row[o..o + 4].try_into().map(u32::from_le_bytes).map_err(|_| fail("bad net row"))
            };
            in0[i] = u32_at(0)?;
            in1[i] = u32_at(4)?;
            in2[i] = u32_at(8)?;
            levels[i] = u32_at(12)?;
            delays[i] =
                row[16..24].try_into().map(u64::from_le_bytes).map_err(|_| fail("bad net row"))?;
            const_ones[i] = row[24] != 0;
            // Fanin slots must point strictly backwards so the engine's
            // single forward pass stays a valid evaluation order even on a
            // tampered payload.
            if kinds[i].is_logic() && [in0[i], in1[i], in2[i]].iter().any(|&x| x as usize >= i) {
                return Err(fail("fanin does not point strictly backwards"));
            }
        }
        let mut input_nets = Vec::with_capacity(num_inputs);
        for _ in 0..num_inputs {
            let id = take_u32(&mut rest)?;
            if id as usize >= n {
                return Err(fail("input net out of range"));
            }
            input_nets.push(id);
        }
        if !rest.is_empty() {
            return Err(fail("trailing bytes"));
        }
        Ok(BatchProgram { kinds, in0, in1, in2, delays, const_ones, input_nets, levels, depth })
    }
}

/// Input vectors packed into lane words of type `B`.
///
/// Word `i` holds input `i` of every vector: bit `l` of word `i` is input
/// `i` of vector (lane) `l`. Unused high lanes are always zero, so the
/// engine's word-level change detection never sees junk bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneInputs<B: LaneWord = u64> {
    pub(crate) words: Vec<B>,
    pub(crate) lanes: u32,
}

/// The legacy 64-lane input batch (up to [`MAX_LANES`] vectors).
pub type BatchInputs = LaneInputs<u64>;

/// A multi-word input batch carrying up to `64·W` vectors.
pub type WideInputs<const W: usize> = LaneInputs<LaneBlock<W>>;

impl<B: LaneWord> LaneInputs<B> {
    /// Packs `vectors[l]` into lane `l`.
    ///
    /// # Errors
    ///
    /// * [`BatchError::TooManyLanes`] for more than `B::LANES` vectors;
    /// * [`BatchError::InputArity`] if the vectors have differing lengths
    ///   (`expected` reports the first vector's length).
    pub fn pack(vectors: &[Vec<bool>]) -> Result<LaneInputs<B>, BatchError> {
        if vectors.len() > B::LANES as usize {
            return Err(BatchError::TooManyLanes { got: vectors.len(), cap: B::LANES });
        }
        let lanes = vectors.len() as u32;
        let width = vectors.first().map_or(0, Vec::len);
        let mut words = vec![B::ZERO; width];
        for (l, v) in vectors.iter().enumerate() {
            if v.len() != width {
                return Err(BatchError::InputArity { expected: width, got: v.len() });
            }
            for (i, &bit) in v.iter().enumerate() {
                if bit {
                    words[i] = words[i].or(B::lane_bit(l as u32));
                }
            }
        }
        Ok(LaneInputs { words, lanes })
    }

    /// An all-zero batch (the paper's reset assumption) of `num_inputs`
    /// words carrying `lanes` lanes.
    ///
    /// # Errors
    ///
    /// [`BatchError::TooManyLanes`] if `lanes > B::LANES`.
    pub fn zeros(num_inputs: usize, lanes: u32) -> Result<LaneInputs<B>, BatchError> {
        if lanes > B::LANES {
            return Err(BatchError::TooManyLanes { got: lanes as usize, cap: B::LANES });
        }
        Ok(LaneInputs { words: vec![B::ZERO; num_inputs], lanes })
    }

    /// Wraps pre-packed lane words. Bits above `lanes` are cleared.
    ///
    /// # Errors
    ///
    /// [`BatchError::TooManyLanes`] if `lanes > B::LANES`.
    pub fn from_words(mut words: Vec<B>, lanes: u32) -> Result<LaneInputs<B>, BatchError> {
        if lanes > B::LANES {
            return Err(BatchError::TooManyLanes { got: lanes as usize, cap: B::LANES });
        }
        let mask = B::active_mask(lanes);
        for w in &mut words {
            *w = w.and(mask);
        }
        Ok(LaneInputs { words, lanes })
    }

    /// Number of lanes (vectors) carried.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Number of input words (the netlist's input arity).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.words.len()
    }

    /// The packed lane words, one per primary input.
    #[must_use]
    pub fn words(&self) -> &[B] {
        &self.words
    }

    /// Extracts one lane back into a scalar input vector.
    #[must_use]
    pub fn lane(&self, lane: u32) -> Vec<bool> {
        self.words.iter().map(|w| w.bit(lane)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpgaDelay, JitteredDelay, UnitDelay};

    fn chain() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.not(x);
        nl.set_output("z", vec![y]);
        nl
    }

    #[test]
    fn compile_samples_delays_and_levels() {
        let nl = chain();
        let p = BatchProgram::compile(&nl, &FpgaDelay::default()).unwrap();
        assert_eq!(p.num_nets(), 4);
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.level(nl.net(0)), 0);
        assert_eq!(p.level(nl.net(2)), 1);
        assert_eq!(p.level(nl.net(3)), 2);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.logic_gate_count(), 2);
        assert_eq!(p.delays[2], FpgaDelay::default().two_input);
        assert_eq!(p.delays[3], FpgaDelay::default().not);
    }

    #[test]
    fn jittered_models_are_rejected() {
        let nl = chain();
        let err = BatchProgram::compile(&nl, &JitteredDelay::new(UnitDelay, 10, 1)).unwrap_err();
        assert_eq!(err, BatchError::DelayNotBatchExact);
    }

    #[test]
    fn broken_topology_is_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.rewire_input(n1, 0, n2).unwrap();
        let err = BatchProgram::compile(&nl, &UnitDelay).unwrap_err();
        assert!(matches!(err, BatchError::TopologyBroken { net } if net == n1), "{err}");
    }

    #[test]
    fn pack_roundtrips_lanes() {
        let vecs = vec![vec![true, false, true], vec![false, false, true], vec![true, true, false]];
        let b = BatchInputs::pack(&vecs).unwrap();
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.num_inputs(), 3);
        for (l, v) in vecs.iter().enumerate() {
            assert_eq!(&b.lane(l as u32), v);
        }
        // Unused lanes are zero.
        assert_eq!(b.words()[0] >> 3, 0);
    }

    #[test]
    fn wide_pack_roundtrips_past_64_lanes() {
        let vecs: Vec<Vec<bool>> =
            (0..130).map(|l| (0..3).map(|i| (l + i) % 3 == 0).collect()).collect();
        let b = WideInputs::<4>::pack(&vecs).unwrap();
        assert_eq!(b.lanes(), 130);
        for (l, v) in vecs.iter().enumerate() {
            assert_eq!(&b.lane(l as u32), v, "lane {l}");
        }
        assert!(BatchInputs::pack(&vecs).is_err(), "130 vectors exceed u64 words");
    }

    #[test]
    fn pack_validates_shape() {
        let too_many: Vec<Vec<bool>> = (0..65).map(|_| vec![true]).collect();
        assert_eq!(
            BatchInputs::pack(&too_many).unwrap_err(),
            BatchError::TooManyLanes { got: 65, cap: 64 }
        );
        let ragged = vec![vec![true, false], vec![true]];
        assert_eq!(
            BatchInputs::pack(&ragged).unwrap_err(),
            BatchError::InputArity { expected: 2, got: 1 }
        );
        assert!(BatchInputs::zeros(4, 65).is_err());
        assert!(WideInputs::<2>::zeros(4, 128).is_ok());
        assert!(WideInputs::<2>::zeros(4, 129).is_err());
    }

    #[test]
    fn from_words_masks_unused_lanes() {
        let b = BatchInputs::from_words(vec![u64::MAX], 4).unwrap();
        assert_eq!(b.words()[0], 0b1111);
    }

    #[test]
    fn program_bytes_roundtrip() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.input("s");
        let t = nl.constant(true);
        let x = nl.xor(a, b);
        let m = nl.mux(s, x, t);
        let z = nl.nand(m, a);
        nl.set_output("z", vec![z]);
        let p = BatchProgram::compile(&nl, &FpgaDelay::default()).unwrap();
        let bytes = p.to_bytes();
        let q = BatchProgram::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        assert_eq!(bytes, q.to_bytes(), "serialization is deterministic");
    }

    #[test]
    fn malformed_program_bytes_are_rejected() {
        let nl = chain();
        let p = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let bytes = p.to_bytes();
        let is_malformed = |r: Result<BatchProgram, BatchError>| {
            matches!(r.unwrap_err(), BatchError::MalformedProgram { .. })
        };
        assert!(is_malformed(BatchProgram::from_bytes(&[])));
        assert!(is_malformed(BatchProgram::from_bytes(&bytes[..bytes.len() - 1])));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'x';
        assert!(is_malformed(BatchProgram::from_bytes(&wrong_magic)));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(is_malformed(BatchProgram::from_bytes(&trailing)));
    }
}
