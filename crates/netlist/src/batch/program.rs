//! Compiling a [`Netlist`] into a flat batch program.
//!
//! [`BatchProgram::compile`] freezes three things once, ahead of any number
//! of simulation runs: the gate structure in struct-of-arrays form, the
//! per-gate delays sampled from a batch-exact [`DelayModel`], and the
//! topological levelization (validated so a single forward pass in net-id
//! order is a correct evaluation order, and exposed as per-net levels plus
//! a depth statistic). [`BatchInputs`] packs up to [`MAX_LANES`] input
//! vectors into lane words: bit `l` of word `i` is input `i` of vector `l`.

use crate::batch::MAX_LANES;
use crate::{BatchError, DelayModel, GateKind, NetId, Netlist};

/// The lane word with the low `lanes` bits set.
pub(crate) fn active_mask(lanes: u32) -> u64 {
    if lanes >= MAX_LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// A [`Netlist`] compiled into a flat, struct-of-arrays program for the
/// bit-parallel batch engine.
///
/// Compilation is the expensive-once part of batch simulation: it samples
/// every gate's delay from the [`DelayModel`] exactly once (which is why
/// the model must be [batch-exact](DelayModel::batch_exact)), verifies the
/// netlist is a DAG in net-id order, and computes the levelization. The
/// program borrows nothing, so one compile can be shared across threads and
/// reused for any number of [`run`](BatchProgram::run) /
/// [`run_with_faults`](BatchProgram::run_with_faults) calls.
#[derive(Clone, Debug)]
pub struct BatchProgram {
    pub(crate) kinds: Vec<GateKind>,
    pub(crate) in0: Vec<u32>,
    pub(crate) in1: Vec<u32>,
    pub(crate) in2: Vec<u32>,
    /// Raw per-gate delay sampled from the model (0 for inputs/constants).
    pub(crate) delays: Vec<u64>,
    /// All-ones / all-zeros lane word for `Const` nets, 0 elsewhere.
    pub(crate) const_words: Vec<u64>,
    /// Net index of each primary input, in declaration order.
    pub(crate) input_nets: Vec<u32>,
    /// Topological level of each net (inputs/constants are 0, a gate is one
    /// more than its deepest fanin).
    pub(crate) levels: Vec<u32>,
    depth: u32,
}

impl BatchProgram {
    /// Compiles `netlist` under `delay` into a batch program.
    ///
    /// # Errors
    ///
    /// * [`BatchError::DelayNotBatchExact`] if the delay model declines
    ///   batch compilation (e.g. [`JitteredDelay`](crate::JitteredDelay)
    ///   emulating per-run place-and-route variation) — fall back to the
    ///   event-driven simulator;
    /// * [`BatchError::TopologyBroken`] if the netlist is not topologically
    ///   ordered (a combinational cycle was created via
    ///   [`Netlist::rewire_input`]).
    pub fn compile<M: DelayModel + ?Sized>(
        netlist: &Netlist,
        delay: &M,
    ) -> Result<BatchProgram, BatchError> {
        if !delay.batch_exact() {
            return Err(BatchError::DelayNotBatchExact);
        }
        let n = netlist.len();
        let mut kinds = Vec::with_capacity(n);
        let mut in0 = vec![0u32; n];
        let mut in1 = vec![0u32; n];
        let mut in2 = vec![0u32; n];
        let mut delays = vec![0u64; n];
        let mut const_words = vec![0u64; n];
        let mut levels = vec![0u32; n];
        let mut depth = 0u32;

        for (i, g) in netlist.gate_nodes().iter().enumerate() {
            kinds.push(g.kind);
            let id = NetId(i as u32);
            delays[i] = delay.gate_delay(g.kind, id);
            match g.kind {
                GateKind::Input => {}
                GateKind::Const => {
                    const_words[i] = if g.const_value { u64::MAX } else { 0 };
                }
                _ => {
                    let mut level = 0u32;
                    for (slot, inp) in g.input_slice().iter().enumerate() {
                        if inp.index() >= i {
                            return Err(BatchError::TopologyBroken { net: id });
                        }
                        level = level.max(levels[inp.index()] + 1);
                        match slot {
                            0 => in0[i] = inp.0,
                            1 => in1[i] = inp.0,
                            _ => in2[i] = inp.0,
                        }
                    }
                    levels[i] = level;
                    depth = depth.max(level);
                }
            }
        }

        let input_nets = netlist.inputs().iter().map(|id| id.0).collect();
        crate::obs::with_observer(|o| o.batch_compile(n as u64, u64::from(depth) + 1));
        Ok(BatchProgram { kinds, in0, in1, in2, delays, const_words, input_nets, levels, depth })
    }

    /// Number of nets in the compiled netlist.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.kinds.len()
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.input_nets.len()
    }

    /// The topological level of `net` (0 for inputs and constants).
    #[must_use]
    pub fn level(&self, net: NetId) -> u32 {
        self.levels[net.index()]
    }

    /// The logic depth of the netlist in levels.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of logic gates (excluding inputs and constants).
    #[must_use]
    pub fn logic_gate_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_logic()).count()
    }
}

/// Up to [`MAX_LANES`] input vectors packed into lane words.
///
/// Word `i` holds input `i` of every vector: bit `l` of word `i` is input
/// `i` of vector (lane) `l`. Unused high lanes are always zero, so the
/// engine's word-level change detection never sees junk bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchInputs {
    pub(crate) words: Vec<u64>,
    pub(crate) lanes: u32,
}

impl BatchInputs {
    /// Packs `vectors[l]` into lane `l`.
    ///
    /// # Errors
    ///
    /// * [`BatchError::TooManyLanes`] for more than [`MAX_LANES`] vectors;
    /// * [`BatchError::InputArity`] if the vectors have differing lengths
    ///   (`expected` reports the first vector's length).
    pub fn pack(vectors: &[Vec<bool>]) -> Result<BatchInputs, BatchError> {
        if vectors.len() > MAX_LANES as usize {
            return Err(BatchError::TooManyLanes { got: vectors.len() });
        }
        let lanes = vectors.len() as u32;
        let width = vectors.first().map_or(0, Vec::len);
        let mut words = vec![0u64; width];
        for (l, v) in vectors.iter().enumerate() {
            if v.len() != width {
                return Err(BatchError::InputArity { expected: width, got: v.len() });
            }
            for (i, &bit) in v.iter().enumerate() {
                words[i] |= u64::from(bit) << l;
            }
        }
        Ok(BatchInputs { words, lanes })
    }

    /// An all-zero batch (the paper's reset assumption) of `num_inputs`
    /// words carrying `lanes` lanes.
    ///
    /// # Errors
    ///
    /// [`BatchError::TooManyLanes`] if `lanes > MAX_LANES`.
    pub fn zeros(num_inputs: usize, lanes: u32) -> Result<BatchInputs, BatchError> {
        if lanes > MAX_LANES {
            return Err(BatchError::TooManyLanes { got: lanes as usize });
        }
        Ok(BatchInputs { words: vec![0; num_inputs], lanes })
    }

    /// Wraps pre-packed lane words. Bits above `lanes` are cleared.
    ///
    /// # Errors
    ///
    /// [`BatchError::TooManyLanes`] if `lanes > MAX_LANES`.
    pub fn from_words(mut words: Vec<u64>, lanes: u32) -> Result<BatchInputs, BatchError> {
        if lanes > MAX_LANES {
            return Err(BatchError::TooManyLanes { got: lanes as usize });
        }
        let mask = active_mask(lanes);
        for w in &mut words {
            *w &= mask;
        }
        Ok(BatchInputs { words, lanes })
    }

    /// Number of lanes (vectors) carried.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Number of input words (the netlist's input arity).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.words.len()
    }

    /// The packed lane words, one per primary input.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Extracts one lane back into a scalar input vector.
    #[must_use]
    pub fn lane(&self, lane: u32) -> Vec<bool> {
        self.words.iter().map(|&w| w >> lane & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpgaDelay, JitteredDelay, UnitDelay};

    fn chain() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.not(x);
        nl.set_output("z", vec![y]);
        nl
    }

    #[test]
    fn compile_samples_delays_and_levels() {
        let nl = chain();
        let p = BatchProgram::compile(&nl, &FpgaDelay::default()).unwrap();
        assert_eq!(p.num_nets(), 4);
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.level(nl.net(0)), 0);
        assert_eq!(p.level(nl.net(2)), 1);
        assert_eq!(p.level(nl.net(3)), 2);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.logic_gate_count(), 2);
        assert_eq!(p.delays[2], FpgaDelay::default().two_input);
        assert_eq!(p.delays[3], FpgaDelay::default().not);
    }

    #[test]
    fn jittered_models_are_rejected() {
        let nl = chain();
        let err = BatchProgram::compile(&nl, &JitteredDelay::new(UnitDelay, 10, 1)).unwrap_err();
        assert_eq!(err, BatchError::DelayNotBatchExact);
    }

    #[test]
    fn broken_topology_is_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.rewire_input(n1, 0, n2).unwrap();
        let err = BatchProgram::compile(&nl, &UnitDelay).unwrap_err();
        assert!(matches!(err, BatchError::TopologyBroken { net } if net == n1), "{err}");
    }

    #[test]
    fn pack_roundtrips_lanes() {
        let vecs = vec![vec![true, false, true], vec![false, false, true], vec![true, true, false]];
        let b = BatchInputs::pack(&vecs).unwrap();
        assert_eq!(b.lanes(), 3);
        assert_eq!(b.num_inputs(), 3);
        for (l, v) in vecs.iter().enumerate() {
            assert_eq!(&b.lane(l as u32), v);
        }
        // Unused lanes are zero.
        assert_eq!(b.words()[0] >> 3, 0);
    }

    #[test]
    fn pack_validates_shape() {
        let too_many: Vec<Vec<bool>> = (0..65).map(|_| vec![true]).collect();
        assert_eq!(BatchInputs::pack(&too_many).unwrap_err(), BatchError::TooManyLanes { got: 65 });
        let ragged = vec![vec![true, false], vec![true]];
        assert_eq!(
            BatchInputs::pack(&ragged).unwrap_err(),
            BatchError::InputArity { expected: 2, got: 1 }
        );
        assert!(BatchInputs::zeros(4, 65).is_err());
    }

    #[test]
    fn from_words_masks_unused_lanes() {
        let b = BatchInputs::from_words(vec![u64::MAX], 4).unwrap();
        assert_eq!(b.words()[0], 0b1111);
        assert_eq!(active_mask(64), u64::MAX);
        assert_eq!(active_mask(0), 0);
    }
}
