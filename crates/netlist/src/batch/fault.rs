//! Per-lane fault divergence for the batch engine.
//!
//! A [`LaneFaultSet`] compiles one [`FaultPlan`] per lane into dense
//! per-net *lane words*: a stuck mask/value pair, transient windows
//! annotated with the lanes they flip, and delay pushes grouped into
//! `(push, lane-mask)` partitions. The engine then evaluates that many
//! *different* fault scenarios in one pass over the netlist, which is what
//! turns fault campaigns from `sites × vectors` event-driven runs into
//! `sites × vectors / lanes` batch runs. [`BatchFaultSet`]
//! (= `LaneFaultSet<u64>`) carries up to 64 plans, [`WideFaultSet<W>`] up
//! to `64·W`.
//!
//! The merge semantics per lane are exactly those of
//! [`FaultPlan`]'s overlay: later stuck-at / transient entries on the same
//! net replace earlier ones, delay pushes accumulate (saturating).

use crate::batch::block::{LaneBlock, LaneWord};
use crate::fault::{FaultKind, FaultPlan};
use crate::{BatchError, NetlistError};
use std::collections::BTreeMap;

/// The aggregated fault state of one net across all lanes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct LaneFaults<B: LaneWord> {
    /// Lanes whose plan sticks this net.
    pub(crate) stuck_mask: B,
    /// The stuck values on those lanes (subset of `stuck_mask`).
    pub(crate) stuck_vals: B,
    /// Transient windows `(start, end, lane_mask)`: the listed lanes read
    /// inverted during `[start, end)`.
    pub(crate) windows: Vec<(u64, u64, B)>,
    /// Non-zero delay pushes `(push, lane_mask)`; lanes not covered here
    /// have push 0. Masks are disjoint, pushes distinct.
    pub(crate) pushes: Vec<(u64, B)>,
}

impl<B: LaneWord> Default for LaneFaults<B> {
    fn default() -> Self {
        LaneFaults {
            stuck_mask: B::ZERO,
            stuck_vals: B::ZERO,
            windows: Vec::new(),
            pushes: Vec::new(),
        }
    }
}

impl<B: LaneWord> LaneFaults<B> {
    /// True if observation is the identity on this net (no stuck bits, no
    /// windows) — delay pushes do not change the observation transform.
    pub(crate) fn observe_is_identity(&self) -> bool {
        self.stuck_mask.is_zero() && self.windows.is_empty()
    }

    /// True if this net carries no fault of any kind on any lane.
    pub(crate) fn is_identity(&self) -> bool {
        self.observe_is_identity() && self.pushes.is_empty()
    }

    /// The delay-group partition of the full lane word: `(push, mask)`
    /// pairs whose masks are disjoint and together cover every lane, sorted
    /// by push (so the zero-push group comes first).
    pub(crate) fn delay_groups(&self) -> Vec<(u64, B)> {
        let mut covered = B::ZERO;
        let mut groups = Vec::with_capacity(self.pushes.len() + 1);
        for &(push, mask) in &self.pushes {
            covered = covered.or(mask);
            groups.push((push, mask));
        }
        if covered != B::ONES {
            groups.push((0, covered.not()));
        }
        groups.sort_unstable_by_key(|&(push, _)| push);
        groups
    }
}

/// Merged per-lane fault state of one net while compiling one plan.
#[derive(Clone, Copy, Default)]
struct OneLaneFault {
    stuck: Option<bool>,
    window: Option<(u64, u64)>,
    push: u64,
}

/// One per-lane [`FaultPlan`] per lane word bit, compiled for one netlist.
///
/// Lane `l` runs under `plans[l]`; lanes beyond `plans.len()` are
/// fault-free. An empty slice (or all-empty plans) is the identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneFaultSet<B: LaneWord = u64> {
    pub(crate) nets: Vec<LaneFaults<B>>,
    lanes: u32,
    any: bool,
}

/// The legacy 64-lane fault set (up to 64 plans).
pub type BatchFaultSet = LaneFaultSet<u64>;

/// A multi-word fault set carrying up to `64·W` plans.
pub type WideFaultSet<const W: usize> = LaneFaultSet<LaneBlock<W>>;

impl<B: LaneWord> LaneFaultSet<B> {
    /// Compiles one plan per lane against a netlist with `num_nets` nets.
    ///
    /// # Errors
    ///
    /// * [`BatchError::TooManyLanes`] for more than `B::LANES` plans;
    /// * [`BatchError::InvalidFault`] if any plan references a net outside
    ///   the netlist.
    pub fn compile(plans: &[FaultPlan], num_nets: usize) -> Result<LaneFaultSet<B>, BatchError> {
        if plans.len() > B::LANES as usize {
            return Err(BatchError::TooManyLanes { got: plans.len(), cap: B::LANES });
        }
        let mut nets: Vec<LaneFaults<B>> = vec![LaneFaults::default(); num_nets];
        let mut any = false;
        for (lane, plan) in plans.iter().enumerate() {
            let bit = B::lane_bit(lane as u32);
            // Merge this lane's faults per net with the overlay semantics:
            // last stuck/window wins, pushes accumulate.
            let mut merged: BTreeMap<u32, OneLaneFault> = BTreeMap::new();
            for f in plan.faults() {
                if f.net.index() >= num_nets {
                    return Err(BatchError::InvalidFault(NetlistError::NetOutOfRange {
                        index: f.net.index(),
                        len: num_nets,
                    }));
                }
                let slot = merged.entry(f.net.0).or_default();
                match f.kind {
                    FaultKind::StuckAt(v) => slot.stuck = Some(v),
                    FaultKind::Transient { at, duration } => {
                        slot.window = (duration > 0).then(|| (at, at.saturating_add(duration)));
                    }
                    FaultKind::DelayPush(extra) => slot.push = slot.push.saturating_add(extra),
                }
            }
            for (net, f) in merged {
                let slot = &mut nets[net as usize];
                if let Some(v) = f.stuck {
                    slot.stuck_mask = slot.stuck_mask.or(bit);
                    if v {
                        slot.stuck_vals = slot.stuck_vals.or(bit);
                    }
                    any = true;
                }
                if let Some((start, end)) = f.window {
                    match slot.windows.iter_mut().find(|w| w.0 == start && w.1 == end) {
                        Some(w) => w.2 = w.2.or(bit),
                        None => slot.windows.push((start, end, bit)),
                    }
                    any = true;
                }
                if f.push > 0 {
                    match slot.pushes.iter_mut().find(|p| p.0 == f.push) {
                        Some(p) => p.1 = p.1.or(bit),
                        None => slot.pushes.push((f.push, bit)),
                    }
                    any = true;
                }
            }
        }
        Ok(LaneFaultSet { nets, lanes: plans.len() as u32, any })
    }

    /// Number of nets this set was compiled against.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of lanes that carry a plan (possibly empty).
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// True if no lane carries any fault (identity set).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        !self.any
    }

    /// The nets touched by at least one lane's plan, ascending — the dirty
    /// seeds of an incremental rerun against a fault-free base.
    #[must_use]
    pub fn touched_nets(&self) -> Vec<usize> {
        self.nets.iter().enumerate().filter(|(_, f)| !f.is_identity()).map(|(i, _)| i).collect()
    }

    /// The observed initial lane word of net `idx` given its raw word
    /// (before `t = 0`: transients inactive, only stuck bits apply).
    pub(crate) fn observe_initial(&self, idx: usize, raw: B) -> B {
        let f = &self.nets[idx];
        raw.and(f.stuck_mask.not()).or(f.stuck_vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetId;

    #[test]
    fn per_lane_merge_matches_overlay_semantics() {
        let z = NetId(2);
        let plans = vec![
            FaultPlan::new().stuck_at(z, false).stuck_at(z, true),
            FaultPlan::new().delay_push(z, 10).delay_push(z, 5),
            FaultPlan::new().transient(z, 10, 5).transient(z, 20, 0),
        ];
        let fs = BatchFaultSet::compile(&plans, 3).unwrap();
        assert_eq!(fs.lanes(), 3);
        assert!(!fs.is_identity());
        let f = &fs.nets[2];
        assert_eq!(f.stuck_mask, 0b001, "only lane 0 sticks");
        assert_eq!(f.stuck_vals, 0b001, "last stuck-at wins");
        assert_eq!(f.pushes, vec![(15, 0b010)], "pushes accumulate");
        assert!(f.windows.is_empty(), "later zero-duration transient clears the window");
        assert_eq!(fs.observe_initial(2, 0b110), 0b111);
        assert_eq!(fs.touched_nets(), vec![2]);
    }

    #[test]
    fn windows_group_by_span_and_pushes_by_amount() {
        let z = NetId(0);
        let plans = vec![
            FaultPlan::new().transient(z, 5, 5).delay_push(z, 7),
            FaultPlan::new().transient(z, 5, 5).delay_push(z, 7),
            FaultPlan::new().transient(z, 9, 1),
        ];
        let fs = BatchFaultSet::compile(&plans, 1).unwrap();
        let f = &fs.nets[0];
        assert_eq!(f.windows, vec![(5, 10, 0b011), (9, 10, 0b100)]);
        assert_eq!(f.pushes, vec![(7, 0b011)]);
        let groups = f.delay_groups();
        assert_eq!(groups, vec![(0, !0b011u64), (7, 0b011)]);
        let union = groups.iter().fold(0u64, |a, &(_, m)| a | m);
        assert_eq!(union, u64::MAX, "groups partition the lane word");
    }

    #[test]
    fn empty_and_identity_sets() {
        let fs = BatchFaultSet::compile(&[], 4).unwrap();
        assert!(fs.is_identity());
        assert_eq!(fs.lanes(), 0);
        let fs2 = BatchFaultSet::compile(&[FaultPlan::new()], 4).unwrap();
        assert!(fs2.is_identity());
        assert!(fs2.nets[0].observe_is_identity());
        assert_eq!(fs2.nets[0].delay_groups(), vec![(0, u64::MAX)]);
        assert!(fs2.touched_nets().is_empty());
    }

    #[test]
    fn wide_sets_address_lanes_past_64() {
        let z = NetId(1);
        let mut plans = vec![FaultPlan::new(); 70];
        plans[69] = FaultPlan::new().stuck_at(z, true);
        let fs = WideFaultSet::<2>::compile(&plans, 2).unwrap();
        assert_eq!(fs.lanes(), 70);
        assert!(!fs.is_identity());
        assert!(fs.nets[1].stuck_mask.bit(69));
        assert_eq!(fs.nets[1].stuck_mask.count_ones(), 1);
        assert_eq!(fs.touched_nets(), vec![1]);
        // The same plans exceed the 64-lane set's capacity.
        assert_eq!(
            BatchFaultSet::compile(&plans, 2).unwrap_err(),
            BatchError::TooManyLanes { got: 70, cap: 64 }
        );
    }

    #[test]
    fn compile_validates_nets_and_lane_count() {
        let bad = FaultPlan::new().stuck_at(NetId(9), true);
        let err = BatchFaultSet::compile(&[bad], 3).unwrap_err();
        assert!(matches!(
            err,
            BatchError::InvalidFault(NetlistError::NetOutOfRange { index: 9, len: 3 })
        ));
        let many: Vec<FaultPlan> = (0..65).map(|_| FaultPlan::new()).collect();
        assert_eq!(
            BatchFaultSet::compile(&many, 3).unwrap_err(),
            BatchError::TooManyLanes { got: 65, cap: 64 }
        );
    }
}
