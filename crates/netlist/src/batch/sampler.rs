//! Multi-`Ts` sampling of batch waveforms.
//!
//! The paper's experiments all ask the same question of a settled run:
//! *what does a register clocked at period `Ts` capture?* — for an entire
//! grid of `Ts` values. [`BatchBusWaves`] detaches one output bus's lane
//! waveforms from a [`BatchSimResult`](crate::batch::BatchSimResult) and
//! [`BatchBusWaves::sweep`] extracts the captured words for every grid
//! point in a single cursor pass per net (ascending grids cost
//! `O(steps + |Ts|)` instead of `O(|Ts| · log steps)`), turning the
//! `(vector × Ts)` product loop into one sweep over one simulation.

use crate::batch::wave::LaneWave;
use crate::batch::BatchSimResult;
use crate::{NetId, NetlistError};

/// One output bus's lane waveforms, detached from the simulation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchBusWaves {
    lanes: u32,
    waves: Vec<LaneWave>,
}

impl BatchSimResult {
    /// Detaches the waveforms of a bus (in the given net order) for
    /// sampling.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] naming the first invalid net.
    pub fn bus_waves(&self, nets: &[NetId]) -> Result<BatchBusWaves, NetlistError> {
        let waves =
            nets.iter().map(|&n| self.try_wave(n).cloned()).collect::<Result<Vec<_>, _>>()?;
        Ok(BatchBusWaves { lanes: self.lanes(), waves })
    }
}

impl BatchBusWaves {
    /// Number of nets in the bus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// True if the bus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The lane words of every bus net at time `t`.
    #[must_use]
    pub fn sample_words(&self, t: u64) -> Vec<u64> {
        self.waves.iter().map(|w| w.word_at(t)).collect()
    }

    /// The bus bits one lane's register would capture at period `t`.
    #[must_use]
    pub fn sample_lane(&self, lane: u32, t: u64) -> Vec<bool> {
        self.waves.iter().map(|w| w.lane_value_at(lane, t)).collect()
    }

    /// The settled bus bits of one lane.
    #[must_use]
    pub fn settled_lane(&self, lane: u32) -> Vec<bool> {
        self.waves.iter().map(|w| w.final_word() >> lane & 1 == 1).collect()
    }

    /// Samples the whole `Ts` grid: entry `[ti][net]` of the result is the
    /// lane word of bus net `net` at time `ts[ti]`. Ascending grids are
    /// swept with one cursor pass per net; arbitrary grids fall back to
    /// per-point binary search.
    #[must_use]
    pub fn sweep(&self, ts: &[u64]) -> TsSweep {
        let ascending = ts.windows(2).all(|w| w[0] <= w[1]);
        let mut words = vec![0u64; ts.len() * self.waves.len()];
        if ascending {
            for (ni, w) in self.waves.iter().enumerate() {
                let mut cur = w.initial();
                let steps = w.steps();
                let mut si = 0usize;
                for (ti, &t) in ts.iter().enumerate() {
                    while let Some(&(st, sw)) = steps.get(si) {
                        if st <= t {
                            cur = sw;
                            si += 1;
                        } else {
                            break;
                        }
                    }
                    words[ti * self.waves.len() + ni] = cur;
                }
            }
        } else {
            for (ni, w) in self.waves.iter().enumerate() {
                for (ti, &t) in ts.iter().enumerate() {
                    words[ti * self.waves.len() + ni] = w.word_at(t);
                }
            }
        }
        TsSweep { num_nets: self.waves.len(), lanes: self.lanes, ts: ts.to_vec(), words }
    }
}

/// The result of sampling a bus over a whole `Ts` grid: for every grid
/// point, the captured lane word of every bus net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TsSweep {
    num_nets: usize,
    lanes: u32,
    ts: Vec<u64>,
    /// Row-major `[ts.len()][num_nets]`.
    words: Vec<u64>,
}

impl TsSweep {
    /// The sampled grid.
    #[must_use]
    pub fn ts(&self) -> &[u64] {
        &self.ts
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Number of bus nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// The lane words of the whole bus at grid point `ti`.
    #[must_use]
    pub fn words_at(&self, ti: usize) -> &[u64] {
        &self.words[ti * self.num_nets..(ti + 1) * self.num_nets]
    }

    /// The bus bits lane `lane` captures at grid point `ti`.
    #[must_use]
    pub fn lane_bits(&self, ti: usize, lane: u32) -> Vec<bool> {
        self.words_at(ti).iter().map(|&w| w >> lane & 1 == 1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchInputs, BatchProgram};
    use crate::{Netlist, UnitDelay};

    fn run() -> (Netlist, BatchSimResult) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.xor(a, b);
        let c = nl.and(a, b);
        nl.set_output("z", vec![s, c]);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::pack(&[vec![false, false], vec![false, false]]).unwrap();
        let new = BatchInputs::pack(&[vec![true, false], vec![true, true]]).unwrap();
        let res = prog.run(&prev, &new).unwrap();
        (nl, res)
    }

    #[test]
    fn bus_waves_validate_nets() {
        let (nl, res) = run();
        assert!(res.bus_waves(nl.output("z")).is_ok());
        assert!(matches!(
            res.bus_waves(&[NetId::from_index(99)]),
            Err(NetlistError::NetOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn sweep_matches_pointwise_sampling() {
        let (nl, res) = run();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        let grid = [0u64, 50, 100, 150, 1000];
        let sweep = bus.sweep(&grid);
        assert_eq!(sweep.lanes(), 2);
        assert_eq!(sweep.num_nets(), 2);
        for (ti, &t) in grid.iter().enumerate() {
            assert_eq!(sweep.words_at(ti), bus.sample_words(t).as_slice(), "t = {t}");
            for lane in 0..2 {
                assert_eq!(sweep.lane_bits(ti, lane), bus.sample_lane(lane, t));
            }
        }
        // Settled values: lane 0 = (1,0) -> sum 1, carry 0; lane 1 = (1,1).
        assert_eq!(bus.settled_lane(0), vec![true, false]);
        assert_eq!(bus.settled_lane(1), vec![false, true]);
    }

    #[test]
    fn unsorted_grids_fall_back_to_pointwise() {
        let (nl, res) = run();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        let grid = [150u64, 0, 100, 50];
        let sweep = bus.sweep(&grid);
        for (ti, &t) in grid.iter().enumerate() {
            assert_eq!(sweep.words_at(ti), bus.sample_words(t).as_slice(), "t = {t}");
        }
    }
}
