//! Multi-`Ts` sampling of batch waveforms.
//!
//! The paper's experiments all ask the same question of a settled run:
//! *what does a register clocked at period `Ts` capture?* — for an entire
//! grid of `Ts` values. [`LaneBusWaves`] detaches one output bus's lane
//! waveforms from a [`LaneSimResult`](crate::batch::LaneSimResult) and
//! [`LaneBusWaves::sweep`] extracts the captured words for every grid
//! point in a single cursor pass per net (ascending grids cost
//! `O(steps + |Ts|)` instead of `O(|Ts| · log steps)`), turning the
//! `(vector × Ts)` product loop into one sweep over one simulation.
//!
//! [`LaneBusWaves::try_sweep`] additionally rejects grids that name the
//! same observation time twice ([`BatchError::DuplicateTs`]): a duplicated
//! grid point would be counted twice by every violation-rate and
//! mean-error reduction downstream, silently biasing the sweep. Grid
//! *producers* should deduplicate; `try_sweep` is the backstop that turns
//! the remaining cases into a typed error instead of a wrong statistic.

use crate::batch::block::{LaneBlock, LaneWord};
use crate::batch::engine::LaneSimResult;
use crate::{BatchError, NetId, NetlistError};

/// One output bus's lane waveforms, detached from the simulation result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneBusWaves<B: LaneWord = u64> {
    lanes: u32,
    waves: Vec<crate::batch::Wave<B>>,
}

/// The legacy 64-lane bus view.
pub type BatchBusWaves = LaneBusWaves<u64>;

/// A multi-word bus view carrying `64·W` lanes.
pub type WideBusWaves<const W: usize> = LaneBusWaves<LaneBlock<W>>;

impl<B: LaneWord> LaneSimResult<B> {
    /// Detaches the waveforms of a bus (in the given net order) for
    /// sampling.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] naming the first invalid net.
    pub fn bus_waves(&self, nets: &[NetId]) -> Result<LaneBusWaves<B>, NetlistError> {
        let waves =
            nets.iter().map(|&n| self.try_wave(n).cloned()).collect::<Result<Vec<_>, _>>()?;
        Ok(LaneBusWaves { lanes: self.lanes(), waves })
    }
}

impl<B: LaneWord> LaneBusWaves<B> {
    /// Number of nets in the bus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// True if the bus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The lane words of every bus net at time `t`.
    #[must_use]
    pub fn sample_words(&self, t: u64) -> Vec<B> {
        self.waves.iter().map(|w| w.word_at(t)).collect()
    }

    /// The bus bits one lane's register would capture at period `t`.
    #[must_use]
    pub fn sample_lane(&self, lane: u32, t: u64) -> Vec<bool> {
        self.waves.iter().map(|w| w.lane_value_at(lane, t)).collect()
    }

    /// The settled bus bits of one lane.
    #[must_use]
    pub fn settled_lane(&self, lane: u32) -> Vec<bool> {
        self.waves.iter().map(|w| w.final_word().bit(lane)).collect()
    }

    /// Samples the whole `Ts` grid: entry `[ti][net]` of the result is the
    /// lane word of bus net `net` at time `ts[ti]`. Ascending grids are
    /// swept with one cursor pass per net; arbitrary grids fall back to
    /// per-point binary search. Duplicate grid points are sampled as
    /// given — use [`LaneBusWaves::try_sweep`] to reject them instead.
    #[must_use]
    pub fn sweep(&self, ts: &[u64]) -> LaneTsSweep<B> {
        let ascending = ts.windows(2).all(|w| w[0] <= w[1]);
        let mut words = vec![B::ZERO; ts.len() * self.waves.len()];
        if ascending {
            for (ni, w) in self.waves.iter().enumerate() {
                let mut cur = w.initial();
                let steps = w.steps();
                let mut si = 0usize;
                for (ti, &t) in ts.iter().enumerate() {
                    while let Some(&(st, sw)) = steps.get(si) {
                        if st <= t {
                            cur = sw;
                            si += 1;
                        } else {
                            break;
                        }
                    }
                    words[ti * self.waves.len() + ni] = cur;
                }
            }
        } else {
            for (ni, w) in self.waves.iter().enumerate() {
                for (ti, &t) in ts.iter().enumerate() {
                    words[ti * self.waves.len() + ni] = w.word_at(t);
                }
            }
        }
        LaneTsSweep { num_nets: self.waves.len(), lanes: self.lanes, ts: ts.to_vec(), words }
    }

    /// Like [`LaneBusWaves::sweep`], but rejects grids containing the same
    /// observation time more than once (in any order) — the typed guard
    /// against silently double-counting a `Ts` point in downstream
    /// violation-rate and error statistics.
    ///
    /// # Errors
    ///
    /// [`BatchError::DuplicateTs`] naming the first duplicated time.
    pub fn try_sweep(&self, ts: &[u64]) -> Result<LaneTsSweep<B>, BatchError> {
        let mut sorted = ts.to_vec();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(BatchError::DuplicateTs { ts: w[0] });
        }
        Ok(self.sweep(ts))
    }
}

/// The result of sampling a bus over a whole `Ts` grid: for every grid
/// point, the captured lane word of every bus net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneTsSweep<B: LaneWord = u64> {
    num_nets: usize,
    lanes: u32,
    ts: Vec<u64>,
    /// Row-major `[ts.len()][num_nets]`.
    words: Vec<B>,
}

/// The legacy 64-lane sweep result.
pub type TsSweep = LaneTsSweep<u64>;

/// A multi-word sweep result carrying `64·W` lanes.
pub type WideTsSweep<const W: usize> = LaneTsSweep<LaneBlock<W>>;

impl<B: LaneWord> LaneTsSweep<B> {
    /// The sampled grid.
    #[must_use]
    pub fn ts(&self) -> &[u64] {
        &self.ts
    }

    /// Number of active lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Number of bus nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// The lane words of the whole bus at grid point `ti`.
    #[must_use]
    pub fn words_at(&self, ti: usize) -> &[B] {
        &self.words[ti * self.num_nets..(ti + 1) * self.num_nets]
    }

    /// The bus bits lane `lane` captures at grid point `ti`.
    #[must_use]
    pub fn lane_bits(&self, ti: usize, lane: u32) -> Vec<bool> {
        self.words_at(ti).iter().map(|w| w.bit(lane)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchInputs, BatchProgram, BatchSimResult, WideInputs};
    use crate::{Netlist, UnitDelay};

    fn run() -> (Netlist, BatchSimResult) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.xor(a, b);
        let c = nl.and(a, b);
        nl.set_output("z", vec![s, c]);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::pack(&[vec![false, false], vec![false, false]]).unwrap();
        let new = BatchInputs::pack(&[vec![true, false], vec![true, true]]).unwrap();
        let res = prog.run(&prev, &new).unwrap();
        (nl, res)
    }

    #[test]
    fn bus_waves_validate_nets() {
        let (nl, res) = run();
        assert!(res.bus_waves(nl.output("z")).is_ok());
        assert!(matches!(
            res.bus_waves(&[NetId::from_index(99)]),
            Err(NetlistError::NetOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn sweep_matches_pointwise_sampling() {
        let (nl, res) = run();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        let grid = [0u64, 50, 100, 150, 1000];
        let sweep = bus.sweep(&grid);
        assert_eq!(sweep.lanes(), 2);
        assert_eq!(sweep.num_nets(), 2);
        for (ti, &t) in grid.iter().enumerate() {
            assert_eq!(sweep.words_at(ti), bus.sample_words(t).as_slice(), "t = {t}");
            for lane in 0..2 {
                assert_eq!(sweep.lane_bits(ti, lane), bus.sample_lane(lane, t));
            }
        }
        // Settled values: lane 0 = (1,0) -> sum 1, carry 0; lane 1 = (1,1).
        assert_eq!(bus.settled_lane(0), vec![true, false]);
        assert_eq!(bus.settled_lane(1), vec![false, true]);
    }

    #[test]
    fn unsorted_grids_fall_back_to_pointwise() {
        let (nl, res) = run();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        let grid = [150u64, 0, 100, 50];
        let sweep = bus.sweep(&grid);
        for (ti, &t) in grid.iter().enumerate() {
            assert_eq!(sweep.words_at(ti), bus.sample_words(t).as_slice(), "t = {t}");
        }
    }

    #[test]
    fn try_sweep_rejects_duplicate_grid_points() {
        let (nl, res) = run();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        // Ascending duplicates and shuffled duplicates are both caught.
        assert_eq!(
            bus.try_sweep(&[0, 50, 50, 100]).unwrap_err(),
            BatchError::DuplicateTs { ts: 50 }
        );
        assert_eq!(
            bus.try_sweep(&[100, 0, 50, 100]).unwrap_err(),
            BatchError::DuplicateTs { ts: 100 }
        );
        // A duplicate-free grid passes through identically to `sweep`.
        let grid = [0u64, 50, 100, 150];
        assert_eq!(bus.try_sweep(&grid).unwrap(), bus.sweep(&grid));
    }

    #[test]
    fn wide_sweeps_sample_lanes_past_64() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let z = nl.not(a);
        nl.set_output("z", vec![z]);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let vecs: Vec<Vec<bool>> = (0..100).map(|l| vec![l % 2 == 0]).collect();
        let prev = WideInputs::<2>::zeros(1, 100).unwrap();
        let new = WideInputs::<2>::pack(&vecs).unwrap();
        let res = prog.run(&prev, &new).unwrap();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        assert_eq!(bus.lanes(), 100);
        let sweep = bus.try_sweep(&[0, UnitDelay::UNIT, 10 * UnitDelay::UNIT]).unwrap();
        for lane in [0u32, 63, 64, 99] {
            // Before the gate delay the NOT still shows !prev = true; after
            // settling it shows !new.
            assert!(sweep.lane_bits(0, lane)[0]);
            assert_eq!(sweep.lane_bits(2, lane)[0], lane % 2 != 0);
        }
    }
}
