//! The lane-word batch execution engine.
//!
//! One [`BatchProgram::run`] replays the event-driven simulator's
//! transport-delay semantics for a whole lane word of input vectors at
//! once, *without an event queue*: because the program is a levelized DAG
//! and every gate's delay is a compile-time constant, each net's settling
//! waveform is a pure function of its fanin waveforms —
//! `out(t + d) = f(inputs(t))` — so a single pass in topological order
//! produces the exact waveform of every net. Word-level change detection
//! (a step is recorded only when some lane's bit changes) is the batch
//! counterpart of the event simulator's schedule-equal-value cancellation.
//! The word type is any [`LaneWord`]: `u64` is the legacy 64-lane path,
//! [`LaneBlock<W>`](crate::batch::LaneBlock) runs `64·W` lanes per pass.
//!
//! With faults ([`BatchProgram::run_with_faults`]) each lane may carry a
//! *different* [`FaultPlan`](crate::FaultPlan): stuck bits and transient
//! windows transform the observed waveform per lane, and per-lane delay
//! pushes split a gate's output into delay groups that are shifted
//! independently and re-merged.
//!
//! # Dirty-cone incremental resimulation
//!
//! [`BatchProgram::run_incremental`] reruns against a *base* result when
//! only a few inputs or fault sites changed: a net is **dirty** iff its own
//! stimulus changed (an input whose packed words differ from the base run,
//! or a net whose per-lane fault state differs) or any fanin is dirty.
//! Only dirty nets recompute their waveforms; clean nets share the base
//! run's waveform by reference counting. An equality cutoff re-marks a
//! recomputed net clean when its new waveform equals the base one (a fault
//! that does not change behaviour, or a cone that reconverges), which
//! prunes the fanout cone early. Setting `OLA_BATCH_CHECK_INCREMENTAL=1`
//! cross-checks every incremental run against a full recompute.

use crate::batch::block::{LaneBlock, LaneWord};
use crate::batch::fault::{LaneFaultSet, LaneFaults};
use crate::batch::program::{BatchProgram, LaneInputs};
use crate::batch::wave::Wave;
use crate::cancel::CancelToken;
use crate::{BatchError, GateKind, NetId, NetlistError};
use std::sync::Arc;

/// How many nets the settling pass evaluates between cancellation polls.
/// A net's waveform merge is much heavier than one event-simulator event,
/// so the batch engine polls more often than
/// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) counts events.
const NET_CHECK_INTERVAL: usize = 256;

/// Word-parallel gate evaluation: every bit position is one lane.
pub(crate) fn eval_word<B: LaneWord>(kind: GateKind, a: B, b: B, c: B) -> B {
    match kind {
        GateKind::Not => a.not(),
        GateKind::And => a.and(b),
        GateKind::Or => a.or(b),
        GateKind::Xor => a.xor(b),
        GateKind::Nand => a.and(b).not(),
        GateKind::Nor => a.or(b).not(),
        GateKind::Xnor => a.xor(b).not(),
        GateKind::Mux => a.and(b).or(a.not().and(c)),
        GateKind::Input | GateKind::Const => unreachable!("not a logic gate"),
    }
}

fn gate_arity(kind: GateKind) -> usize {
    match kind {
        GateKind::Not => 1,
        GateKind::Mux => 3,
        _ => 2,
    }
}

/// The input waveform: lanes switch from their previous to their new bit at
/// their delay-push time (0 without faults). Groups are sorted by push.
fn input_wave<B: LaneWord>(prev: B, new: B, groups: &[(u64, B)]) -> Wave<B> {
    let mut steps = Vec::new();
    let mut word = prev;
    let mut i = 0;
    while i < groups.len() {
        let t = groups[i].0;
        let mut mask = B::ZERO;
        while i < groups.len() && groups[i].0 == t {
            mask = mask.or(groups[i].1);
            i += 1;
        }
        let next = word.and(mask.not()).or(new.and(mask));
        if next != word {
            word = next;
            steps.push((t, word));
        }
    }
    Wave { initial: prev, steps }
}

/// One gate's raw output waveform from its fanin waveforms.
///
/// First the deduplicated *function stream* — `f(inputs(t))` at every time
/// any fanin changes — then each delay group `g` shifts that stream by its
/// effective delay `(base + push_g).max(1)` and contributes its lanes; the
/// group streams are k-way merged back into one waveform.
fn gate_wave<B: LaneWord>(
    kind: GateKind,
    ins: &[&Wave<B>],
    init: B,
    base_delay: u64,
    groups: &[(u64, B)],
) -> Wave<B> {
    // Function stream.
    let mut cur = [B::ZERO; 3];
    let mut idx = [0usize; 3];
    for (j, w) in ins.iter().enumerate() {
        cur[j] = w.initial;
    }
    let mut f_prev = init;
    let mut fstream: Vec<(u64, B)> = Vec::new();
    loop {
        let mut t_next = u64::MAX;
        let mut any = false;
        for (j, w) in ins.iter().enumerate() {
            if let Some(&(t, _)) = w.steps.get(idx[j]) {
                t_next = t_next.min(t);
                any = true;
            }
        }
        if !any {
            break;
        }
        for (j, w) in ins.iter().enumerate() {
            if let Some(&(t, word)) = w.steps.get(idx[j]) {
                if t == t_next {
                    cur[j] = word;
                    idx[j] += 1;
                }
            }
        }
        let f = eval_word(kind, cur[0], cur[1], cur[2]);
        if f != f_prev {
            f_prev = f;
            fstream.push((t_next, f));
        }
    }

    if let [(push, _mask)] = groups {
        // Fast path: one delay for every lane (the fault-free case).
        let d = base_delay.saturating_add(*push).max(1);
        let steps = fstream.into_iter().map(|(t, f)| (t.saturating_add(d), f)).collect();
        return Wave { initial: init, steps };
    }

    // Per-lane delays: merge the per-group shifted streams.
    let ds: Vec<u64> =
        groups.iter().map(|&(push, _)| base_delay.saturating_add(push).max(1)).collect();
    let mut cursors = vec![0usize; groups.len()];
    let mut words: Vec<B> = groups.iter().map(|&(_, mask)| init.and(mask)).collect();
    let mut last = init;
    let mut steps = Vec::new();
    loop {
        let mut t_next = u64::MAX;
        let mut any = false;
        for (g, &d) in ds.iter().enumerate() {
            if let Some(&(t, _)) = fstream.get(cursors[g]) {
                t_next = t_next.min(t.saturating_add(d));
                any = true;
            }
        }
        if !any {
            break;
        }
        for (g, &d) in ds.iter().enumerate() {
            while let Some(&(t, f)) = fstream.get(cursors[g]) {
                if t.saturating_add(d) == t_next {
                    words[g] = f.and(groups[g].1);
                    cursors[g] += 1;
                } else {
                    break;
                }
            }
        }
        let word = words.iter().fold(B::ZERO, |acc, &w| acc.or(w));
        if word != last {
            last = word;
            steps.push((t_next, word));
        }
    }
    Wave { initial: init, steps }
}

/// Applies the per-lane observation transform (stuck bits, transient
/// windows) to a raw waveform: candidate change times are the raw step
/// times plus the window boundaries, and at each the observed word is
/// `((raw ^ flips) & !stuck_mask) | stuck_vals`.
fn observe_wave<B: LaneWord>(raw: &Wave<B>, f: &LaneFaults<B>) -> Wave<B> {
    let init = raw.initial.and(f.stuck_mask.not()).or(f.stuck_vals);
    let mut times: Vec<u64> = raw.steps.iter().map(|&(t, _)| t).collect();
    for &(start, end, _) in &f.windows {
        times.push(start);
        times.push(end);
    }
    times.sort_unstable();
    times.dedup();

    let mut steps = Vec::new();
    let mut last = init;
    let mut cur_raw = raw.initial;
    let mut ci = 0usize;
    for &t in &times {
        while let Some(&(ts, w)) = raw.steps.get(ci) {
            if ts <= t {
                cur_raw = w;
                ci += 1;
            } else {
                break;
            }
        }
        let mut flips = B::ZERO;
        for &(start, end, mask) in &f.windows {
            if t >= start && t < end {
                flips = flips.or(mask);
            }
        }
        let word = cur_raw.xor(flips).and(f.stuck_mask.not()).or(f.stuck_vals);
        if word != last {
            last = word;
            steps.push((t, word));
        }
    }
    Wave { initial: init, steps }
}

/// True when `OLA_BATCH_CHECK_INCREMENTAL=1` asks every incremental run to
/// be cross-checked against a full recompute.
fn incremental_check_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("OLA_BATCH_CHECK_INCREMENTAL")
            .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
    })
}

/// Per-net scan products cached in a result so an incremental rerun can
/// fold a clean (`Arc`-shared) net's contribution into its counters and
/// settle times without rescanning the waveform: the masked transition
/// count, and the "retire list" — backward-ordered `(t, lanes)` entries
/// recording each lane's *last* transition time, the compressed form of
/// this net's per-lane settle contribution.
#[derive(Clone, Debug)]
struct NetStats<B: LaneWord> {
    transitions: u64,
    retire: Vec<(u64, B)>,
}

/// The settling history of one batch run: lane-word waveforms for every
/// net, per-lane settle times, and engine-work counters.
///
/// The per-lane view ([`LaneSimResult::value_at`],
/// [`LaneSimResult::lane_waveform`](Self::lane_waveform)) is bit-identical
/// to the event-driven [`SimResult`](crate::SimResult) of the same
/// (vector, fault-plan) pair — the equivalence the proptest suite pins
/// down. Waveforms are reference-counted so an incremental rerun
/// ([`BatchProgram::run_incremental`]) can share every clean net's
/// waveform with its base instead of copying it — per-net scan products
/// ([`NetStats`]) ride along so counters need no rescan either.
#[derive(Clone, Debug)]
pub struct LaneSimResult<B: LaneWord = u64> {
    lanes: u32,
    waves: Vec<Arc<Wave<B>>>,
    net_stats: Vec<Arc<NetStats<B>>>,
    settle: Vec<u64>,
    word_steps: u64,
    lane_transitions: u64,
    /// The stimulus this run was produced from, kept so an incremental
    /// rerun can seed its dirty set from the delta against it.
    prev_words: Vec<B>,
    new_words: Vec<B>,
    faults: Option<LaneFaultSet<B>>,
}

/// The legacy 64-lane simulation result.
pub type BatchSimResult = LaneSimResult<u64>;

/// A multi-word simulation result carrying `64·W` lanes.
pub type WideSimResult<const W: usize> = LaneSimResult<LaneBlock<W>>;

impl<B: LaneWord> LaneSimResult<B> {
    /// Number of active lanes (input vectors).
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The lane-word waveform of `net`.
    #[must_use]
    pub fn wave(&self, net: NetId) -> &Wave<B> {
        &self.waves[net.index()]
    }

    /// Like [`LaneSimResult::wave`], validating the net index.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] if `net` is not a net of the
    /// simulated netlist.
    pub fn try_wave(&self, net: NetId) -> Result<&Wave<B>, NetlistError> {
        self.waves
            .get(net.index())
            .map(Arc::as_ref)
            .ok_or(NetlistError::NetOutOfRange { index: net.index(), len: self.waves.len() })
    }

    /// The value of `net` in `lane` at time `t` — what a register clocked
    /// `t` time units after the input switch would capture.
    #[must_use]
    pub fn value_at(&self, net: NetId, lane: u32, t: u64) -> bool {
        self.waves[net.index()].lane_value_at(lane, t)
    }

    /// The transition history of one lane of one net, in the event-driven
    /// simulator's `(time, new_value)` format.
    #[must_use]
    pub fn lane_waveform(&self, net: NetId, lane: u32) -> Vec<(u64, bool)> {
        self.waves[net.index()].lane_waveform(lane)
    }

    /// Samples a bus in one lane at time `t`.
    #[must_use]
    pub fn sample_bus(&self, nets: &[NetId], lane: u32, t: u64) -> Vec<bool> {
        nets.iter().map(|&n| self.value_at(n, lane, t)).collect()
    }

    /// The settled values of a bus in one lane.
    #[must_use]
    pub fn final_bus(&self, nets: &[NetId], lane: u32) -> Vec<bool> {
        nets.iter().map(|&n| self.waves[n.index()].final_word().bit(lane)).collect()
    }

    /// Time of the last observed transition in `lane` across all nets.
    #[must_use]
    pub fn settle_time(&self, lane: u32) -> u64 {
        self.settle[lane as usize]
    }

    /// Per-lane settle times (index = lane).
    #[must_use]
    pub fn settle_times(&self) -> &[u64] {
        &self.settle
    }

    /// The latest settle time of any lane.
    #[must_use]
    pub fn max_settle_time(&self) -> u64 {
        self.settle.iter().copied().max().unwrap_or(0)
    }

    /// Total word-level steps stored (engine work: one step covers a whole
    /// lane word).
    #[must_use]
    pub fn word_steps(&self) -> u64 {
        self.word_steps
    }

    /// Total per-lane transitions across active lanes (the work an
    /// event-driven simulator would have performed net-value-wise).
    #[must_use]
    pub fn lane_transitions(&self) -> u64 {
        self.lane_transitions
    }

    /// How many nets of this result share their waveform with an
    /// incremental base (reference count > 1) — a diagnostic for the
    /// dirty-cone cutoff, not a semantic property.
    #[must_use]
    pub fn shared_waves(&self) -> usize {
        self.waves.iter().filter(|w| Arc::strong_count(w) > 1).count()
    }
}

impl BatchProgram {
    /// Runs the batch engine for the input switch `prev → new` (applied at
    /// `t = 0`), fault-free. Generic over the lane word: `u64` batches run
    /// 64 lanes, [`LaneBlock<W>`](crate::batch::LaneBlock) batches run
    /// `64·W`.
    ///
    /// # Errors
    ///
    /// * [`BatchError::InputArity`] if either batch's word count differs
    ///   from the netlist's input count;
    /// * [`BatchError::LaneMismatch`] if the batches carry different lane
    ///   counts.
    pub fn run<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.run_inner(prev, new, None, None)
    }

    /// [`BatchProgram::run`] with a cooperative
    /// [`CancelToken`](crate::CancelToken): the settling pass polls the
    /// token every [`NET_CHECK_INTERVAL`] nets and returns
    /// [`BatchError::Cancelled`] once it is set.
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run`], plus [`BatchError::Cancelled`] when
    /// `cancel` fires before the pass finishes.
    pub fn run_cancellable<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        cancel: &CancelToken,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.run_inner(prev, new, None, Some(cancel))
    }

    /// Runs the batch engine with one [`FaultPlan`](crate::FaultPlan) per
    /// lane (lane `l` runs under plan `l`; lanes beyond the set's plans are
    /// fault-free).
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run`], plus [`BatchError::InvalidFault`] if
    /// `faults` was compiled against a different netlist size.
    pub fn run_with_faults<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: &LaneFaultSet<B>,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.check_faults(faults)?;
        self.run_inner(prev, new, Some(faults), None)
    }

    /// [`BatchProgram::run_with_faults`] with a cooperative
    /// [`CancelToken`](crate::CancelToken) (see
    /// [`BatchProgram::run_cancellable`]).
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run_with_faults`], plus
    /// [`BatchError::Cancelled`] when `cancel` fires before the pass
    /// finishes.
    pub fn run_with_faults_cancellable<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: &LaneFaultSet<B>,
        cancel: &CancelToken,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.check_faults(faults)?;
        self.run_inner(prev, new, Some(faults), Some(cancel))
    }

    /// Reruns the engine against `base`, recomputing only the fanout cone
    /// of what changed (see the [module docs](self) for the dirty-cone
    /// algorithm). `base` must come from this program; `faults` is the
    /// *complete* fault set of the new run (not a delta), compared
    /// per net against the base run's. The result is bit-identical to a
    /// full [`BatchProgram::run`] / [`run_with_faults`]
    /// ([`BatchProgram::run_with_faults`]) with the same arguments —
    /// property-tested, and cross-checked on every call when
    /// `OLA_BATCH_CHECK_INCREMENTAL=1`.
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run_with_faults`], plus
    /// [`BatchError::IncrementalBaseMismatch`] if `base` was not produced
    /// by a program of this shape.
    pub fn run_incremental<B: LaneWord>(
        &self,
        base: &LaneSimResult<B>,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.run_incremental_inner(base, prev, new, faults, None)
    }

    /// [`BatchProgram::run_incremental`] with a cooperative
    /// [`CancelToken`](crate::CancelToken) (see
    /// [`BatchProgram::run_cancellable`]).
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run_incremental`], plus
    /// [`BatchError::Cancelled`] when `cancel` fires before the pass
    /// finishes.
    pub fn run_incremental_cancellable<B: LaneWord>(
        &self,
        base: &LaneSimResult<B>,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
        cancel: &CancelToken,
    ) -> Result<LaneSimResult<B>, BatchError> {
        self.run_incremental_inner(base, prev, new, faults, Some(cancel))
    }

    fn check_faults<B: LaneWord>(&self, faults: &LaneFaultSet<B>) -> Result<(), BatchError> {
        if faults.num_nets() != self.num_nets() {
            return Err(BatchError::InvalidFault(NetlistError::NetOutOfRange {
                index: faults.num_nets(),
                len: self.num_nets(),
            }));
        }
        Ok(())
    }

    fn check_shapes<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
    ) -> Result<u32, BatchError> {
        let expected = self.num_inputs();
        for got in [new.num_inputs(), prev.num_inputs()] {
            if got != expected {
                return Err(BatchError::InputArity { expected, got });
            }
        }
        if prev.lanes != new.lanes {
            return Err(BatchError::LaneMismatch { prev: prev.lanes, new: new.lanes });
        }
        Ok(prev.lanes)
    }

    /// The settled-previous-state pass: raw driver outputs and observed
    /// values of every net, word-parallel, in topological order.
    fn initial_state<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
    ) -> (Vec<B>, Vec<B>) {
        let n = self.num_nets();
        let mut raw_init = vec![B::ZERO; n];
        let mut obs_init = vec![B::ZERO; n];
        let mut next_input = 0usize;
        for i in 0..n {
            let r = match self.kinds[i] {
                GateKind::Input => {
                    let w = prev.words[next_input];
                    next_input += 1;
                    w
                }
                GateKind::Const => B::splat(self.const_ones[i]),
                kind => eval_word(
                    kind,
                    obs_init[self.in0[i] as usize],
                    obs_init[self.in1[i] as usize],
                    obs_init[self.in2[i] as usize],
                ),
            };
            raw_init[i] = r;
            obs_init[i] = match faults {
                Some(fs) => fs.observe_initial(i, r),
                None => r,
            };
        }
        (raw_init, obs_init)
    }

    /// Computes the waveform of net `i` from already-settled fanin waves.
    #[allow(clippy::too_many_arguments)]
    fn net_wave<B: LaneWord>(
        &self,
        i: usize,
        input_slot: usize,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
        raw_init: &[B],
        waves: &[Arc<Wave<B>>],
    ) -> Wave<B> {
        let lane_faults = faults.map(|fs| &fs.nets[i]);
        let no_fault_groups = [(0u64, B::ONES)];
        let groups_storage;
        let groups: &[(u64, B)] = match lane_faults {
            Some(f) if !f.pushes.is_empty() => {
                groups_storage = f.delay_groups();
                &groups_storage
            }
            _ => &no_fault_groups,
        };
        let raw = match self.kinds[i] {
            GateKind::Input => input_wave(prev.words[input_slot], new.words[input_slot], groups),
            GateKind::Const => Wave::constant(B::splat(self.const_ones[i])),
            kind => {
                // Unused slots default to net 0 — valid (any logic gate
                // has index > 0 in a validated DAG) and ignored by
                // `eval_word` for the gate's actual arity.
                let ins = [
                    waves[self.in0[i] as usize].as_ref(),
                    waves[self.in1[i] as usize].as_ref(),
                    waves[self.in2[i] as usize].as_ref(),
                ];
                gate_wave(kind, &ins[..gate_arity(kind)], raw_init[i], self.delays[i], groups)
            }
        };
        match lane_faults {
            Some(f) if !f.observe_is_identity() => observe_wave(&raw, f),
            _ => raw,
        }
    }

    fn run_inner<B: LaneWord>(
        &self,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
        cancel: Option<&CancelToken>,
    ) -> Result<LaneSimResult<B>, BatchError> {
        if let Some(tok) = cancel {
            if tok.is_cancelled() {
                return Err(BatchError::Cancelled);
            }
        }
        let n = self.num_nets();
        let lanes = self.check_shapes(prev, new)?;
        let (raw_init, obs_init) = self.initial_state(prev, faults);

        // Settling pass: one waveform per net, in topological order.
        let mut waves: Vec<Arc<Wave<B>>> = Vec::with_capacity(n);
        let mut next_input = 0usize;
        #[allow(clippy::needless_range_loop)] // indexes several program arrays, not just one slice
        for i in 0..n {
            if i > 0 && i % NET_CHECK_INTERVAL == 0 {
                if let Some(tok) = cancel {
                    if tok.is_cancelled() {
                        return Err(BatchError::Cancelled);
                    }
                }
            }
            let slot = next_input;
            if self.kinds[i] == GateKind::Input {
                next_input += 1;
            }
            let wave = self.net_wave(i, slot, prev, new, faults, &raw_init, &waves);
            debug_assert_eq!(wave.initial, obs_init[i], "net {i}");
            waves.push(Arc::new(wave));
        }

        Ok(finish_run(lanes, waves, prev, new, faults, None))
    }

    fn run_incremental_inner<B: LaneWord>(
        &self,
        base: &LaneSimResult<B>,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
        cancel: Option<&CancelToken>,
    ) -> Result<LaneSimResult<B>, BatchError> {
        if let Some(tok) = cancel {
            if tok.is_cancelled() {
                return Err(BatchError::Cancelled);
            }
        }
        let n = self.num_nets();
        let lanes = self.check_shapes(prev, new)?;
        if let Some(fs) = faults {
            self.check_faults(fs)?;
        }
        if base.waves.len() != n || base.prev_words.len() != self.num_inputs() {
            return Err(BatchError::IncrementalBaseMismatch { expected: n, got: base.waves.len() });
        }
        if base.lanes != lanes {
            return Err(BatchError::LaneMismatch { prev: base.lanes, new: lanes });
        }
        let (raw_init, obs_init) = self.initial_state(prev, faults);

        let default_faults = LaneFaults::default();
        fn fault_of<'a, B: LaneWord>(
            set: Option<&'a LaneFaultSet<B>>,
            i: usize,
            default: &'a LaneFaults<B>,
        ) -> &'a LaneFaults<B> {
            set.map_or(default, |fs| &fs.nets[i])
        }

        // Dirty-cone pass: one topological sweep that seeds dirtiness from
        // the stimulus delta, propagates it through fanin edges, recomputes
        // only dirty nets, and un-dirties a net whose recomputed waveform
        // equals the base one (equality cutoff).
        let mut dirty = vec![false; n];
        let mut waves: Vec<Arc<Wave<B>>> = Vec::with_capacity(n);
        let mut next_input = 0usize;
        for i in 0..n {
            if i > 0 && i % NET_CHECK_INTERVAL == 0 {
                if let Some(tok) = cancel {
                    if tok.is_cancelled() {
                        return Err(BatchError::Cancelled);
                    }
                }
            }
            let slot = next_input;
            let mut is_dirty = fault_of(base.faults.as_ref(), i, &default_faults)
                != fault_of(faults, i, &default_faults);
            match self.kinds[i] {
                GateKind::Input => {
                    next_input += 1;
                    is_dirty |= prev.words[slot] != base.prev_words[slot]
                        || new.words[slot] != base.new_words[slot];
                }
                GateKind::Const => {}
                kind => {
                    for &inp in &[self.in0[i], self.in1[i], self.in2[i]][..gate_arity(kind)] {
                        is_dirty |= dirty[inp as usize];
                    }
                }
            }
            if !is_dirty {
                waves.push(Arc::clone(&base.waves[i]));
                continue;
            }
            let wave = self.net_wave(i, slot, prev, new, faults, &raw_init, &waves);
            debug_assert_eq!(wave.initial, obs_init[i]);
            if wave == *base.waves[i] {
                // The cone reconverged: downstream nets see the base
                // waveform, so they need not recompute because of net `i`.
                waves.push(Arc::clone(&base.waves[i]));
            } else {
                dirty[i] = true;
                waves.push(Arc::new(wave));
            }
        }

        let result = finish_run(lanes, waves, prev, new, faults, Some(base));
        if incremental_check_enabled() {
            let full = self.run_inner(prev, new, faults, cancel)?;
            for i in 0..n {
                assert_eq!(
                    *result.waves[i], *full.waves[i],
                    "incremental/full divergence on net {i} (OLA_BATCH_CHECK_INCREMENTAL)"
                );
            }
        }
        Ok(result)
    }
}

/// One net's scan products: the masked transition count (a forward scan
/// of word ops only) and the retire list for settle times. The retire
/// list comes from a backward scan that retires each lane at its first
/// hit — every lane is touched at most once per net, where a forward
/// per-transition update would make the per-lane loop scale with total
/// lane transitions and dominate the whole engine on glitchy waves.
fn scan_wave<B: LaneWord>(w: &Wave<B>, mask: B) -> NetStats<B> {
    let mut transitions = 0u64;
    let mut prev_word = w.initial;
    for &(_, word) in &w.steps {
        transitions += u64::from(prev_word.xor(word).and(mask).count_ones());
        prev_word = word;
    }
    let mut retire = Vec::new();
    let mut remaining = mask;
    for k in (0..w.steps.len()).rev() {
        if remaining.is_zero() {
            break;
        }
        let before = if k == 0 { w.initial } else { w.steps[k - 1].1 };
        let (t, word) = w.steps[k];
        let changed = before.xor(word).and(remaining);
        if !changed.is_zero() {
            retire.push((t, changed));
            remaining = remaining.and(changed.not());
        }
    }
    NetStats { transitions, retire }
}

/// Derives the per-lane settle times and work counters from a finished
/// wave set and assembles the result (shared by the full and incremental
/// paths so both stay bit-identical, counters included).
fn finish_run<B: LaneWord>(
    lanes: u32,
    waves: Vec<Arc<Wave<B>>>,
    prev: &LaneInputs<B>,
    new: &LaneInputs<B>,
    faults: Option<&LaneFaultSet<B>>,
    base: Option<&LaneSimResult<B>>,
) -> LaneSimResult<B> {
    // Per-lane settle times and transition counts (active lanes only: the
    // mask keeps unused high lanes out of every reduction, so garbage in
    // inactive lanes of an inverter's output can never leak into settle
    // times, transition counts, or anything derived from them).
    //
    // The forward pass only counts transitions (word ops, no per-lane
    // work). Settle times come from a backward pass per wave: a lane's
    // contribution is its *last* transition in that wave, so scanning
    // from the end and retiring each lane at its first hit touches every
    // lane at most once per net — glitchy waves would otherwise make the
    // per-lane update the hottest loop in the engine by a wide margin.
    let mask = B::active_mask(lanes);
    let mut settle = vec![0u64; lanes as usize];
    let mut word_steps = 0u64;
    let mut lane_transitions = 0u64;
    let mut net_stats: Vec<Arc<NetStats<B>>> = Vec::with_capacity(waves.len());
    for (i, w) in waves.iter().enumerate() {
        word_steps += w.steps.len() as u64;
        // An incremental rerun's clean nets share the base waveform by
        // pointer; their cached scan products are valid verbatim (the
        // active mask is identical — lane counts are checked upfront).
        let stats = match base {
            Some(b) if Arc::ptr_eq(w, &b.waves[i]) => Arc::clone(&b.net_stats[i]),
            _ => Arc::new(scan_wave(w, mask)),
        };
        lane_transitions += stats.transitions;
        for &(t, word) in &stats.retire {
            word.for_each_lane(|l| {
                if settle[l as usize] < t {
                    settle[l as usize] = t;
                }
            });
        }
        net_stats.push(stats);
    }

    crate::obs::with_observer(|o| o.batch_run(u64::from(lanes), word_steps, lane_transitions));
    LaneSimResult {
        lanes,
        waves,
        net_stats,
        settle,
        word_steps,
        lane_transitions,
        prev_words: prev.words.clone(),
        new_words: new.words.clone(),
        faults: faults.cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchFaultSet, BatchInputs, WideFaultSet, WideInputs};
    use crate::{
        default_event_budget, simulate_with_faults, FaultPlan, FpgaDelay, Netlist, UnitDelay,
    };

    const U: u64 = UnitDelay::UNIT;

    /// Cross-checks every lane of a batch run against the event-driven
    /// simulator. Without faults the per-lane waveforms must be identical
    /// lists; with faults the *sampled values* must agree at every step
    /// time and its neighbours (the event engine may record same-time
    /// duplicate entries at transient boundaries, so raw lists can differ
    /// in representation while denoting the same waveform).
    fn assert_equiv_generic<B: LaneWord, M: crate::DelayModel>(
        nl: &Netlist,
        delay: &M,
        prev_vecs: &[Vec<bool>],
        new_vecs: &[Vec<bool>],
        plans: &[FaultPlan],
    ) -> LaneSimResult<B> {
        let prog = BatchProgram::compile(nl, delay).unwrap();
        let prev = LaneInputs::<B>::pack(prev_vecs).unwrap();
        let new = LaneInputs::<B>::pack(new_vecs).unwrap();
        let fs = LaneFaultSet::<B>::compile(plans, nl.len()).unwrap();
        let res = if plans.is_empty() {
            prog.run(&prev, &new).unwrap()
        } else {
            prog.run_with_faults(&prev, &new, &fs).unwrap()
        };
        let budget = default_event_budget(nl);
        for lane in 0..prev_vecs.len() {
            let plan = plans.get(lane).cloned().unwrap_or_default();
            let ev =
                simulate_with_faults(nl, delay, &prev_vecs[lane], &new_vecs[lane], &plan, budget)
                    .unwrap();
            for net in nl.nets() {
                let l = lane as u32;
                if plans.is_empty() {
                    assert_eq!(
                        res.lane_waveform(net, l),
                        ev.waveform(net).to_vec(),
                        "net {net:?} lane {lane}"
                    );
                    assert_eq!(res.wave(net).lane_value_at(l, 0), ev.value_at(net, 0));
                } else {
                    let mut ts: Vec<u64> = ev.waveform(net).iter().map(|&(t, _)| t).collect();
                    ts.extend(res.lane_waveform(net, l).iter().map(|&(t, _)| t));
                    ts.push(0);
                    ts.push(ev.settle_time().max(res.settle_time(l)) + 1);
                    for &t in &ts.clone() {
                        ts.push(t.saturating_sub(1));
                        ts.push(t + 1);
                    }
                    for t in ts {
                        assert_eq!(
                            res.value_at(net, l, t),
                            ev.value_at(net, t),
                            "net {net:?} lane {lane} t {t}"
                        );
                    }
                }
            }
            if plans.is_empty() {
                assert_eq!(res.settle_time(lane as u32), ev.settle_time(), "lane {lane}");
            }
        }
        res
    }

    fn assert_equiv<M: crate::DelayModel>(
        nl: &Netlist,
        delay: &M,
        prev_vecs: &[Vec<bool>],
        new_vecs: &[Vec<bool>],
        plans: &[FaultPlan],
    ) -> BatchSimResult {
        assert_equiv_generic::<u64, M>(nl, delay, prev_vecs, new_vecs, plans)
    }

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..n {
            let b = nl.input("b");
            cur = nl.xor(cur, b);
        }
        nl.set_output("z", vec![cur]);
        nl
    }

    fn glitchy() -> Netlist {
        // z = a XOR NOT(NOT(a)): rising edge glitches z.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.xor(a, n2);
        nl.set_output("z", vec![z]);
        nl
    }

    fn all_vectors(width: usize) -> Vec<Vec<bool>> {
        (0..1usize << width).map(|v| (0..width).map(|i| v >> i & 1 == 1).collect()).collect()
    }

    #[test]
    fn fault_free_waveforms_match_event_sim_exactly() {
        let nl = xor_chain(5);
        let news = all_vectors(6);
        let prevs = vec![vec![false; 6]; news.len()];
        let res = assert_equiv(&nl, &UnitDelay, &prevs, &news, &[]);
        assert_eq!(res.lanes(), 64);
        assert!(res.word_steps() > 0);
        assert!(res.lane_transitions() >= res.word_steps());
    }

    #[test]
    fn wide_lanes_match_event_sim_past_64_vectors() {
        let nl = xor_chain(7);
        let news = all_vectors(8);
        let prevs = vec![vec![false; 8]; news.len()];
        let res = assert_equiv_generic::<crate::batch::LaneBlock<4>, _>(
            &nl,
            &UnitDelay,
            &prevs,
            &news,
            &[],
        );
        assert_eq!(res.lanes(), 256);
    }

    #[test]
    fn wide_and_narrow_runs_agree_lane_for_lane() {
        let nl = glitchy();
        let news = all_vectors(1);
        let prevs = vec![vec![true]; news.len()];
        let narrow = assert_equiv(&nl, &FpgaDelay::default(), &prevs, &news, &[]);
        let wide = assert_equiv_generic::<crate::batch::LaneBlock<8>, _>(
            &nl,
            &FpgaDelay::default(),
            &prevs,
            &news,
            &[],
        );
        for net in nl.nets() {
            for lane in 0..news.len() as u32 {
                assert_eq!(narrow.lane_waveform(net, lane), wide.lane_waveform(net, lane));
            }
        }
        assert_eq!(narrow.word_steps(), wide.word_steps());
        assert_eq!(narrow.settle_times(), wide.settle_times());
    }

    #[test]
    fn glitches_survive_lane_packing() {
        let nl = glitchy();
        let res = assert_equiv(
            &nl,
            &UnitDelay,
            &[vec![false], vec![true]],
            &[vec![true], vec![false]],
            &[],
        );
        let z = nl.output("z")[0];
        // Lane 0 (rising a): glitch pulse up at U, down at 3U.
        assert_eq!(res.lane_waveform(z, 0), vec![(U, true), (3 * U, false)]);
    }

    #[test]
    fn fpga_delay_model_matches_event_sim() {
        let nl = glitchy();
        let news = all_vectors(1);
        let prevs = vec![vec![true]; news.len()];
        assert_equiv(&nl, &FpgaDelay::default(), &prevs, &news, &[]);
    }

    #[test]
    fn per_lane_fault_divergence_matches_scalar_plans() {
        let nl = xor_chain(3);
        let out = nl.output("z")[0];
        let mid = nl.net(2);
        let plans = vec![
            FaultPlan::new(),
            FaultPlan::new().stuck_at(out, true),
            FaultPlan::new().stuck_at(mid, false),
            FaultPlan::new().transient(out, U, 2 * U),
            FaultPlan::new().delay_push(mid, 3 * U),
            FaultPlan::new().delay_push(nl.net(0), U).transient(mid, 2 * U, U),
            FaultPlan::new().stuck_at(mid, true).delay_push(out, U),
        ];
        let news: Vec<Vec<bool>> =
            (0..plans.len()).map(|l| (0..4).map(|i| (l + i) % 3 == 0).collect()).collect();
        let prevs: Vec<Vec<bool>> =
            (0..plans.len()).map(|l| (0..4).map(|i| (l * i) % 2 == 1).collect()).collect();
        assert_equiv(&nl, &UnitDelay, &prevs, &news, &plans);
        assert_equiv_generic::<crate::batch::LaneBlock<2>, _>(
            &nl, &UnitDelay, &prevs, &news, &plans,
        );
    }

    #[test]
    fn transient_on_quiet_net_flips_inside_window_only() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let z = nl.not(a);
        nl.set_output("z", vec![z]);
        let plans = vec![FaultPlan::new().transient(z, 5 * U, 2 * U)];
        let res = assert_equiv(&nl, &UnitDelay, &[vec![false]], &[vec![false]], &plans);
        assert_eq!(res.lane_waveform(z, 0), vec![(5 * U, false), (7 * U, true)]);
    }

    #[test]
    fn input_delay_push_models_late_operand() {
        let nl = xor_chain(2);
        let a = nl.net(0);
        let plans = vec![FaultPlan::new().delay_push(a, 4 * U)];
        assert_equiv(&nl, &UnitDelay, &[vec![false; 3]], &[vec![true, true, false]], &plans);
    }

    #[test]
    fn run_validates_shapes() {
        let nl = xor_chain(2);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let ok = BatchInputs::zeros(3, 4).unwrap();
        let short = BatchInputs::zeros(2, 4).unwrap();
        let lanes2 = BatchInputs::zeros(3, 2).unwrap();
        assert_eq!(
            prog.run(&ok, &short).unwrap_err(),
            BatchError::InputArity { expected: 3, got: 2 }
        );
        assert_eq!(
            prog.run(&ok, &lanes2).unwrap_err(),
            BatchError::LaneMismatch { prev: 4, new: 2 }
        );
        let alien = BatchFaultSet::compile(&[], 99).unwrap();
        assert!(matches!(
            prog.run_with_faults(&ok, &ok, &alien).unwrap_err(),
            BatchError::InvalidFault(NetlistError::NetOutOfRange { .. })
        ));
    }

    #[test]
    fn cancellation_is_checked_before_and_during_the_pass() {
        let nl = xor_chain(4);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let b = BatchInputs::zeros(5, 8).unwrap();
        let tok = crate::CancelToken::new();
        // Live token: bit-identical to the plain run.
        let plain = prog.run(&b, &b).unwrap();
        let live = prog.run_cancellable(&b, &b, &tok).unwrap();
        for net in nl.nets() {
            assert_eq!(plain.wave(net), live.wave(net));
        }
        // Cancelled token: typed error from both entry points.
        tok.cancel();
        assert_eq!(prog.run_cancellable(&b, &b, &tok).unwrap_err(), BatchError::Cancelled);
        let fs = BatchFaultSet::compile(&[], nl.len()).unwrap();
        assert_eq!(
            prog.run_with_faults_cancellable(&b, &b, &fs, &tok).unwrap_err(),
            BatchError::Cancelled
        );
        assert_eq!(
            prog.run_incremental_cancellable(&plain, &b, &b, None, &tok).unwrap_err(),
            BatchError::Cancelled
        );
    }

    #[test]
    fn zero_lanes_is_a_valid_degenerate_batch() {
        let nl = xor_chain(2);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let b = BatchInputs::zeros(3, 0).unwrap();
        let res = prog.run(&b, &b).unwrap();
        assert_eq!(res.lanes(), 0);
        assert_eq!(res.lane_transitions(), 0);
        assert_eq!(res.max_settle_time(), 0);
    }

    #[test]
    fn identity_fault_set_equals_fault_free_run() {
        let nl = glitchy();
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::pack(&[vec![false], vec![true]]).unwrap();
        let new = BatchInputs::pack(&[vec![true], vec![true]]).unwrap();
        let clean = prog.run(&prev, &new).unwrap();
        let fs = BatchFaultSet::compile(&[FaultPlan::new(), FaultPlan::new()], nl.len()).unwrap();
        let faulty = prog.run_with_faults(&prev, &new, &fs).unwrap();
        for net in nl.nets() {
            assert_eq!(clean.wave(net), faulty.wave(net));
        }
        assert_eq!(clean.settle_times(), faulty.settle_times());
    }

    /// Asserts an incremental rerun is bit-identical to the full recompute
    /// with the same stimulus, counters and settle times included.
    fn assert_incremental_matches_full<B: LaneWord>(
        nl: &Netlist,
        prog: &BatchProgram,
        base: &LaneSimResult<B>,
        prev: &LaneInputs<B>,
        new: &LaneInputs<B>,
        faults: Option<&LaneFaultSet<B>>,
    ) -> LaneSimResult<B> {
        let inc = prog.run_incremental(base, prev, new, faults).unwrap();
        let full = match faults {
            Some(fs) => prog.run_with_faults(prev, new, fs).unwrap(),
            None => prog.run(prev, new).unwrap(),
        };
        for net in nl.nets() {
            assert_eq!(inc.wave(net), full.wave(net), "net {net:?}");
        }
        assert_eq!(inc.settle_times(), full.settle_times());
        assert_eq!(inc.word_steps(), full.word_steps());
        assert_eq!(inc.lane_transitions(), full.lane_transitions());
        inc
    }

    #[test]
    fn incremental_fault_rerun_shares_the_clean_cone() {
        let nl = xor_chain(5);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let news = all_vectors(6);
        let prev = BatchInputs::zeros(6, news.len() as u32).unwrap();
        let new = BatchInputs::pack(&news).unwrap();
        let clean = prog.run(&prev, &new).unwrap();
        // A fault on the last XOR: only its fanout cone (itself) is dirty.
        let out = nl.output("z")[0];
        let plans = vec![FaultPlan::new().stuck_at(out, true)];
        let fs = BatchFaultSet::compile(&plans, nl.len()).unwrap();
        let inc = assert_incremental_matches_full(&nl, &prog, &clean, &prev, &new, Some(&fs));
        // Every net but the faulted output shares its waveform with the base.
        assert_eq!(inc.shared_waves(), nl.len() - 1);
    }

    #[test]
    fn incremental_input_delta_recomputes_only_the_cone() {
        let nl = xor_chain(6);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let zero = BatchInputs::zeros(7, 8).unwrap();
        let a = BatchInputs::pack(
            &(0..8).map(|l| (0..7).map(|i| (l + i) % 2 == 0).collect()).collect::<Vec<_>>(),
        )
        .unwrap();
        let base = prog.run(&zero, &a).unwrap();
        // Flip only the last input's new words: the cone is the last XOR.
        let mut vecs: Vec<Vec<bool>> = (0..8).map(|l| a.lane(l)).collect();
        for v in &mut vecs {
            let last = v.len() - 1;
            v[last] = !v[last];
        }
        let b = BatchInputs::pack(&vecs).unwrap();
        let inc = assert_incremental_matches_full(&nl, &prog, &base, &zero, &b, None);
        // Untouched inputs and early XORs share with the base: only the
        // flipped input net and the final XOR differ.
        assert!(inc.shared_waves() >= nl.len() - 2, "shared {}", inc.shared_waves());
    }

    #[test]
    fn incremental_noop_delta_shares_everything() {
        let nl = glitchy();
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::pack(&[vec![false], vec![true]]).unwrap();
        let new = BatchInputs::pack(&[vec![true], vec![false]]).unwrap();
        let base = prog.run(&prev, &new).unwrap();
        let inc = assert_incremental_matches_full(&nl, &prog, &base, &prev, &new, None);
        assert_eq!(inc.shared_waves(), nl.len());
    }

    #[test]
    fn incremental_equality_cutoff_stops_masked_faults() {
        // Stuck-at-0 on a net that settles to 0 anyway with these inputs:
        // the recomputed wave may differ mid-flight but the cutoff fires
        // wherever it reconverges; the result must still be exact.
        let nl = xor_chain(4);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::zeros(5, 4).unwrap();
        let new = BatchInputs::pack(&all_vectors(5)[..4]).unwrap();
        let base = prog.run(&prev, &new).unwrap();
        let mid = nl.net(2);
        let plans = vec![FaultPlan::new().stuck_at(mid, false); 4];
        let fs = BatchFaultSet::compile(&plans, nl.len()).unwrap();
        assert_incremental_matches_full(&nl, &prog, &base, &prev, &new, Some(&fs));
    }

    #[test]
    fn incremental_from_faulty_base_back_to_clean() {
        let nl = xor_chain(5);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::zeros(6, 8).unwrap();
        let new = BatchInputs::pack(&all_vectors(6)[..8]).unwrap();
        let mid = nl.net(4);
        let plans = vec![FaultPlan::new().delay_push(mid, 3 * U), FaultPlan::new()];
        let fs = BatchFaultSet::compile(&plans, nl.len()).unwrap();
        let faulty = prog.run_with_faults(&prev, &new, &fs).unwrap();
        // Rerun fault-free against the faulty base.
        assert_incremental_matches_full(&nl, &prog, &faulty, &prev, &new, None);
    }

    #[test]
    fn incremental_wide_matches_full_wide() {
        let nl = xor_chain(6);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let news = all_vectors(7);
        let prev = WideInputs::<2>::zeros(7, news.len() as u32).unwrap();
        let new = WideInputs::<2>::pack(&news).unwrap();
        let clean = prog.run(&prev, &new).unwrap();
        let mid = nl.net(6);
        let mut plans = vec![FaultPlan::new(); 100];
        plans[97] = FaultPlan::new().transient(mid, U, 2 * U);
        let fs = WideFaultSet::<2>::compile(&plans, nl.len()).unwrap();
        assert_incremental_matches_full(&nl, &prog, &clean, &prev, &new, Some(&fs));
    }

    #[test]
    fn incremental_validates_the_base() {
        let nl = xor_chain(2);
        let other = xor_chain(5);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let alien_prog = BatchProgram::compile(&other, &UnitDelay).unwrap();
        let b = BatchInputs::zeros(3, 4).unwrap();
        let ab = BatchInputs::zeros(6, 4).unwrap();
        let alien = alien_prog.run(&ab, &ab).unwrap();
        assert!(matches!(
            prog.run_incremental(&alien, &b, &b, None).unwrap_err(),
            BatchError::IncrementalBaseMismatch { .. }
        ));
        let base = prog.run(&b, &b).unwrap();
        let narrow = BatchInputs::zeros(3, 2).unwrap();
        assert!(matches!(
            prog.run_incremental(&base, &narrow, &narrow, None).unwrap_err(),
            BatchError::LaneMismatch { .. }
        ));
    }
}
