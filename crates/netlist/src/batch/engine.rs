//! The lane-word batch execution engine.
//!
//! One [`BatchProgram::run`] replays the event-driven simulator's
//! transport-delay semantics for 64 input vectors at once, *without an
//! event queue*: because the program is a levelized DAG and every gate's
//! delay is a compile-time constant, each net's settling waveform is a pure
//! function of its fanin waveforms — `out(t + d) = f(inputs(t))` — so a
//! single pass in topological order produces the exact waveform of every
//! net. Word-level change detection (a step is recorded only when some
//! lane's bit changes) is the batch counterpart of the event simulator's
//! schedule-equal-value cancellation.
//!
//! With faults ([`BatchProgram::run_with_faults`]) each lane may carry a
//! *different* [`FaultPlan`](crate::FaultPlan): stuck bits and transient
//! windows transform the observed waveform per lane, and per-lane delay
//! pushes split a gate's output into delay groups that are shifted
//! independently and re-merged.

use crate::batch::fault::{BatchFaultSet, LaneFaults};
use crate::batch::program::{active_mask, BatchInputs, BatchProgram};
use crate::batch::wave::LaneWave;
use crate::cancel::CancelToken;
use crate::{BatchError, GateKind, NetId, NetlistError};

/// How many nets the settling pass evaluates between cancellation polls.
/// A net's waveform merge is much heavier than one event-simulator event,
/// so the batch engine polls more often than
/// [`CHECK_INTERVAL`](crate::cancel::CHECK_INTERVAL) counts events.
const NET_CHECK_INTERVAL: usize = 256;

/// Word-parallel gate evaluation: every bit position is one lane.
pub(crate) fn eval_word(kind: GateKind, a: u64, b: u64, c: u64) -> u64 {
    match kind {
        GateKind::Not => !a,
        GateKind::And => a & b,
        GateKind::Or => a | b,
        GateKind::Xor => a ^ b,
        GateKind::Nand => !(a & b),
        GateKind::Nor => !(a | b),
        GateKind::Xnor => !(a ^ b),
        GateKind::Mux => (a & b) | (!a & c),
        GateKind::Input | GateKind::Const => unreachable!("not a logic gate"),
    }
}

fn gate_arity(kind: GateKind) -> usize {
    match kind {
        GateKind::Not => 1,
        GateKind::Mux => 3,
        _ => 2,
    }
}

/// The input waveform: lanes switch from their previous to their new bit at
/// their delay-push time (0 without faults). Groups are sorted by push.
fn input_wave(prev: u64, new: u64, groups: &[(u64, u64)]) -> LaneWave {
    let mut steps = Vec::new();
    let mut word = prev;
    let mut i = 0;
    while i < groups.len() {
        let t = groups[i].0;
        let mut mask = 0u64;
        while i < groups.len() && groups[i].0 == t {
            mask |= groups[i].1;
            i += 1;
        }
        let next = (word & !mask) | (new & mask);
        if next != word {
            word = next;
            steps.push((t, word));
        }
    }
    LaneWave { initial: prev, steps }
}

/// One gate's raw output waveform from its fanin waveforms.
///
/// First the deduplicated *function stream* — `f(inputs(t))` at every time
/// any fanin changes — then each delay group `g` shifts that stream by its
/// effective delay `(base + push_g).max(1)` and contributes its lanes; the
/// group streams are k-way merged back into one waveform.
fn gate_wave(
    kind: GateKind,
    ins: &[&LaneWave],
    init: u64,
    base_delay: u64,
    groups: &[(u64, u64)],
) -> LaneWave {
    // Function stream.
    let mut cur = [0u64; 3];
    let mut idx = [0usize; 3];
    for (j, w) in ins.iter().enumerate() {
        cur[j] = w.initial;
    }
    let mut f_prev = init;
    let mut fstream: Vec<(u64, u64)> = Vec::new();
    loop {
        let mut t_next = u64::MAX;
        let mut any = false;
        for (j, w) in ins.iter().enumerate() {
            if let Some(&(t, _)) = w.steps.get(idx[j]) {
                t_next = t_next.min(t);
                any = true;
            }
        }
        if !any {
            break;
        }
        for (j, w) in ins.iter().enumerate() {
            if let Some(&(t, word)) = w.steps.get(idx[j]) {
                if t == t_next {
                    cur[j] = word;
                    idx[j] += 1;
                }
            }
        }
        let f = eval_word(kind, cur[0], cur[1], cur[2]);
        if f != f_prev {
            f_prev = f;
            fstream.push((t_next, f));
        }
    }

    if let [(push, _mask)] = groups {
        // Fast path: one delay for every lane (the fault-free case).
        let d = base_delay.saturating_add(*push).max(1);
        let steps = fstream.into_iter().map(|(t, f)| (t.saturating_add(d), f)).collect();
        return LaneWave { initial: init, steps };
    }

    // Per-lane delays: merge the per-group shifted streams.
    let ds: Vec<u64> =
        groups.iter().map(|&(push, _)| base_delay.saturating_add(push).max(1)).collect();
    let mut cursors = vec![0usize; groups.len()];
    let mut words: Vec<u64> = groups.iter().map(|&(_, mask)| init & mask).collect();
    let mut last = init;
    let mut steps = Vec::new();
    loop {
        let mut t_next = u64::MAX;
        let mut any = false;
        for (g, &d) in ds.iter().enumerate() {
            if let Some(&(t, _)) = fstream.get(cursors[g]) {
                t_next = t_next.min(t.saturating_add(d));
                any = true;
            }
        }
        if !any {
            break;
        }
        for (g, &d) in ds.iter().enumerate() {
            while let Some(&(t, f)) = fstream.get(cursors[g]) {
                if t.saturating_add(d) == t_next {
                    words[g] = f & groups[g].1;
                    cursors[g] += 1;
                } else {
                    break;
                }
            }
        }
        let word = words.iter().fold(0u64, |acc, &w| acc | w);
        if word != last {
            last = word;
            steps.push((t_next, word));
        }
    }
    LaneWave { initial: init, steps }
}

/// Applies the per-lane observation transform (stuck bits, transient
/// windows) to a raw waveform: candidate change times are the raw step
/// times plus the window boundaries, and at each the observed word is
/// `((raw ^ flips) & !stuck_mask) | stuck_vals`.
fn observe_wave(raw: &LaneWave, f: &LaneFaults) -> LaneWave {
    let init = (raw.initial & !f.stuck_mask) | f.stuck_vals;
    let mut times: Vec<u64> = raw.steps.iter().map(|&(t, _)| t).collect();
    for &(start, end, _) in &f.windows {
        times.push(start);
        times.push(end);
    }
    times.sort_unstable();
    times.dedup();

    let mut steps = Vec::new();
    let mut last = init;
    let mut cur_raw = raw.initial;
    let mut ci = 0usize;
    for &t in &times {
        while let Some(&(ts, w)) = raw.steps.get(ci) {
            if ts <= t {
                cur_raw = w;
                ci += 1;
            } else {
                break;
            }
        }
        let mut flips = 0u64;
        for &(start, end, mask) in &f.windows {
            if t >= start && t < end {
                flips |= mask;
            }
        }
        let word = ((cur_raw ^ flips) & !f.stuck_mask) | f.stuck_vals;
        if word != last {
            last = word;
            steps.push((t, word));
        }
    }
    LaneWave { initial: init, steps }
}

const NO_FAULT_GROUPS: [(u64, u64); 1] = [(0, u64::MAX)];

/// The settling history of one batch run: 64-lane waveforms for every net,
/// per-lane settle times, and engine-work counters.
///
/// The per-lane view ([`BatchSimResult::value_at`],
/// [`BatchSimResult::lane_waveform`](Self::lane_waveform)) is bit-identical
/// to the event-driven [`SimResult`](crate::SimResult) of the same
/// (vector, fault-plan) pair — the equivalence the proptest suite pins
/// down.
#[derive(Clone, Debug)]
pub struct BatchSimResult {
    lanes: u32,
    waves: Vec<LaneWave>,
    settle: Vec<u64>,
    word_steps: u64,
    lane_transitions: u64,
}

impl BatchSimResult {
    /// Number of active lanes (input vectors).
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// The lane-word waveform of `net`.
    #[must_use]
    pub fn wave(&self, net: NetId) -> &LaneWave {
        &self.waves[net.index()]
    }

    /// Like [`BatchSimResult::wave`], validating the net index.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] if `net` is not a net of the
    /// simulated netlist.
    pub fn try_wave(&self, net: NetId) -> Result<&LaneWave, NetlistError> {
        self.waves
            .get(net.index())
            .ok_or(NetlistError::NetOutOfRange { index: net.index(), len: self.waves.len() })
    }

    /// The value of `net` in `lane` at time `t` — what a register clocked
    /// `t` time units after the input switch would capture.
    #[must_use]
    pub fn value_at(&self, net: NetId, lane: u32, t: u64) -> bool {
        self.waves[net.index()].lane_value_at(lane, t)
    }

    /// The transition history of one lane of one net, in the event-driven
    /// simulator's `(time, new_value)` format.
    #[must_use]
    pub fn lane_waveform(&self, net: NetId, lane: u32) -> Vec<(u64, bool)> {
        self.waves[net.index()].lane_waveform(lane)
    }

    /// Samples a bus in one lane at time `t`.
    #[must_use]
    pub fn sample_bus(&self, nets: &[NetId], lane: u32, t: u64) -> Vec<bool> {
        nets.iter().map(|&n| self.value_at(n, lane, t)).collect()
    }

    /// The settled values of a bus in one lane.
    #[must_use]
    pub fn final_bus(&self, nets: &[NetId], lane: u32) -> Vec<bool> {
        nets.iter().map(|&n| self.waves[n.index()].final_word() >> lane & 1 == 1).collect()
    }

    /// Time of the last observed transition in `lane` across all nets.
    #[must_use]
    pub fn settle_time(&self, lane: u32) -> u64 {
        self.settle[lane as usize]
    }

    /// Per-lane settle times (index = lane).
    #[must_use]
    pub fn settle_times(&self) -> &[u64] {
        &self.settle
    }

    /// The latest settle time of any lane.
    #[must_use]
    pub fn max_settle_time(&self) -> u64 {
        self.settle.iter().copied().max().unwrap_or(0)
    }

    /// Total word-level steps stored (engine work: one step covers up to 64
    /// lanes).
    #[must_use]
    pub fn word_steps(&self) -> u64 {
        self.word_steps
    }

    /// Total per-lane transitions across active lanes (the work an
    /// event-driven simulator would have performed net-value-wise).
    #[must_use]
    pub fn lane_transitions(&self) -> u64 {
        self.lane_transitions
    }
}

impl BatchProgram {
    /// Runs the batch engine for the input switch `prev → new` (applied at
    /// `t = 0`), fault-free.
    ///
    /// # Errors
    ///
    /// * [`BatchError::InputArity`] if either batch's word count differs
    ///   from the netlist's input count;
    /// * [`BatchError::LaneMismatch`] if the batches carry different lane
    ///   counts.
    pub fn run(&self, prev: &BatchInputs, new: &BatchInputs) -> Result<BatchSimResult, BatchError> {
        self.run_inner(prev, new, None, None)
    }

    /// [`BatchProgram::run`] with a cooperative
    /// [`CancelToken`](crate::CancelToken): the settling pass polls the
    /// token every [`NET_CHECK_INTERVAL`] nets and returns
    /// [`BatchError::Cancelled`] once it is set.
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run`], plus [`BatchError::Cancelled`] when
    /// `cancel` fires before the pass finishes.
    pub fn run_cancellable(
        &self,
        prev: &BatchInputs,
        new: &BatchInputs,
        cancel: &CancelToken,
    ) -> Result<BatchSimResult, BatchError> {
        self.run_inner(prev, new, None, Some(cancel))
    }

    /// Runs the batch engine with one [`FaultPlan`](crate::FaultPlan) per
    /// lane (lane `l` runs under plan `l`; lanes beyond the set's plans are
    /// fault-free).
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run`], plus [`BatchError::InvalidFault`] if
    /// `faults` was compiled against a different netlist size.
    pub fn run_with_faults(
        &self,
        prev: &BatchInputs,
        new: &BatchInputs,
        faults: &BatchFaultSet,
    ) -> Result<BatchSimResult, BatchError> {
        if faults.num_nets() != self.num_nets() {
            return Err(BatchError::InvalidFault(NetlistError::NetOutOfRange {
                index: faults.num_nets(),
                len: self.num_nets(),
            }));
        }
        self.run_inner(prev, new, Some(faults), None)
    }

    /// [`BatchProgram::run_with_faults`] with a cooperative
    /// [`CancelToken`](crate::CancelToken) (see
    /// [`BatchProgram::run_cancellable`]).
    ///
    /// # Errors
    ///
    /// As for [`BatchProgram::run_with_faults`], plus
    /// [`BatchError::Cancelled`] when `cancel` fires before the pass
    /// finishes.
    pub fn run_with_faults_cancellable(
        &self,
        prev: &BatchInputs,
        new: &BatchInputs,
        faults: &BatchFaultSet,
        cancel: &CancelToken,
    ) -> Result<BatchSimResult, BatchError> {
        if faults.num_nets() != self.num_nets() {
            return Err(BatchError::InvalidFault(NetlistError::NetOutOfRange {
                index: faults.num_nets(),
                len: self.num_nets(),
            }));
        }
        self.run_inner(prev, new, Some(faults), Some(cancel))
    }

    fn run_inner(
        &self,
        prev: &BatchInputs,
        new: &BatchInputs,
        faults: Option<&BatchFaultSet>,
        cancel: Option<&CancelToken>,
    ) -> Result<BatchSimResult, BatchError> {
        if let Some(tok) = cancel {
            if tok.is_cancelled() {
                return Err(BatchError::Cancelled);
            }
        }
        let n = self.num_nets();
        let expected = self.num_inputs();
        for got in [new.num_inputs(), prev.num_inputs()] {
            if got != expected {
                return Err(BatchError::InputArity { expected, got });
            }
        }
        if prev.lanes != new.lanes {
            return Err(BatchError::LaneMismatch { prev: prev.lanes, new: new.lanes });
        }
        let lanes = prev.lanes;

        // Initial (settled previous-input) state: raw driver outputs and
        // observed values, word-parallel. Net-id order is topological
        // (validated at compile time).
        let mut raw_init = vec![0u64; n];
        let mut obs_init = vec![0u64; n];
        let mut next_input = 0usize;
        for i in 0..n {
            let r = match self.kinds[i] {
                GateKind::Input => {
                    let w = prev.words[next_input];
                    next_input += 1;
                    w
                }
                GateKind::Const => self.const_words[i],
                kind => eval_word(
                    kind,
                    obs_init[self.in0[i] as usize],
                    obs_init[self.in1[i] as usize],
                    obs_init[self.in2[i] as usize],
                ),
            };
            raw_init[i] = r;
            obs_init[i] = match faults {
                Some(fs) => fs.observe_initial(i, r),
                None => r,
            };
        }

        // Settling pass: one waveform per net, in topological order.
        let mut waves: Vec<LaneWave> = Vec::with_capacity(n);
        let mut word_steps = 0u64;
        let mut next_input = 0usize;
        for i in 0..n {
            if i > 0 && i % NET_CHECK_INTERVAL == 0 {
                if let Some(tok) = cancel {
                    if tok.is_cancelled() {
                        return Err(BatchError::Cancelled);
                    }
                }
            }
            let lane_faults = faults.map(|fs| &fs.nets[i]);
            let groups_storage;
            let groups: &[(u64, u64)] = match lane_faults {
                Some(f) if !f.pushes.is_empty() => {
                    groups_storage = f.delay_groups();
                    &groups_storage
                }
                _ => &NO_FAULT_GROUPS,
            };
            let raw = match self.kinds[i] {
                GateKind::Input => {
                    let slot = next_input;
                    next_input += 1;
                    input_wave(prev.words[slot], new.words[slot], groups)
                }
                GateKind::Const => LaneWave::constant(self.const_words[i]),
                kind => {
                    // Unused slots default to net 0 — valid (any logic gate
                    // has index > 0 in a validated DAG) and ignored by
                    // `eval_word` for the gate's actual arity.
                    let ins = [
                        &waves[self.in0[i] as usize],
                        &waves[self.in1[i] as usize],
                        &waves[self.in2[i] as usize],
                    ];
                    gate_wave(kind, &ins[..gate_arity(kind)], raw_init[i], self.delays[i], groups)
                }
            };
            let wave = match lane_faults {
                Some(f) if !f.observe_is_identity() => observe_wave(&raw, f),
                _ => raw,
            };
            debug_assert_eq!(wave.initial, obs_init[i]);
            word_steps += wave.steps.len() as u64;
            waves.push(wave);
        }

        // Per-lane settle times and transition counts (active lanes only).
        let mask = active_mask(lanes);
        let mut settle = vec![0u64; lanes as usize];
        let mut lane_transitions = 0u64;
        for w in &waves {
            let mut prev_word = w.initial;
            for &(t, word) in &w.steps {
                let mut changed = (prev_word ^ word) & mask;
                lane_transitions += u64::from(changed.count_ones());
                while changed != 0 {
                    let l = changed.trailing_zeros() as usize;
                    if settle[l] < t {
                        settle[l] = t;
                    }
                    changed &= changed - 1;
                }
                prev_word = word;
            }
        }

        crate::obs::with_observer(|o| o.batch_run(u64::from(lanes), word_steps, lane_transitions));
        Ok(BatchSimResult { lanes, waves, settle, word_steps, lane_transitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        default_event_budget, simulate_with_faults, FaultPlan, FpgaDelay, Netlist, UnitDelay,
    };

    const U: u64 = UnitDelay::UNIT;

    /// Cross-checks every lane of a batch run against the event-driven
    /// simulator. Without faults the per-lane waveforms must be identical
    /// lists; with faults the *sampled values* must agree at every step
    /// time and its neighbours (the event engine may record same-time
    /// duplicate entries at transient boundaries, so raw lists can differ
    /// in representation while denoting the same waveform).
    fn assert_equiv<M: crate::DelayModel>(
        nl: &Netlist,
        delay: &M,
        prev_vecs: &[Vec<bool>],
        new_vecs: &[Vec<bool>],
        plans: &[FaultPlan],
    ) -> BatchSimResult {
        let prog = BatchProgram::compile(nl, delay).unwrap();
        let prev = BatchInputs::pack(prev_vecs).unwrap();
        let new = BatchInputs::pack(new_vecs).unwrap();
        let fs = BatchFaultSet::compile(plans, nl.len()).unwrap();
        let res = if plans.is_empty() {
            prog.run(&prev, &new).unwrap()
        } else {
            prog.run_with_faults(&prev, &new, &fs).unwrap()
        };
        let budget = default_event_budget(nl);
        for lane in 0..prev_vecs.len() {
            let plan = plans.get(lane).cloned().unwrap_or_default();
            let ev =
                simulate_with_faults(nl, delay, &prev_vecs[lane], &new_vecs[lane], &plan, budget)
                    .unwrap();
            for net in nl.nets() {
                let l = lane as u32;
                if plans.is_empty() {
                    assert_eq!(
                        res.lane_waveform(net, l),
                        ev.waveform(net).to_vec(),
                        "net {net:?} lane {lane}"
                    );
                    assert_eq!(res.wave(net).lane_value_at(l, 0), ev.value_at(net, 0));
                } else {
                    let mut ts: Vec<u64> = ev.waveform(net).iter().map(|&(t, _)| t).collect();
                    ts.extend(res.lane_waveform(net, l).iter().map(|&(t, _)| t));
                    ts.push(0);
                    ts.push(ev.settle_time().max(res.settle_time(l)) + 1);
                    for &t in &ts.clone() {
                        ts.push(t.saturating_sub(1));
                        ts.push(t + 1);
                    }
                    for t in ts {
                        assert_eq!(
                            res.value_at(net, l, t),
                            ev.value_at(net, t),
                            "net {net:?} lane {lane} t {t}"
                        );
                    }
                }
            }
            if plans.is_empty() {
                assert_eq!(res.settle_time(lane as u32), ev.settle_time(), "lane {lane}");
            }
        }
        res
    }

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..n {
            let b = nl.input("b");
            cur = nl.xor(cur, b);
        }
        nl.set_output("z", vec![cur]);
        nl
    }

    fn glitchy() -> Netlist {
        // z = a XOR NOT(NOT(a)): rising edge glitches z.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.xor(a, n2);
        nl.set_output("z", vec![z]);
        nl
    }

    fn all_vectors(width: usize) -> Vec<Vec<bool>> {
        (0..1usize << width).map(|v| (0..width).map(|i| v >> i & 1 == 1).collect()).collect()
    }

    #[test]
    fn fault_free_waveforms_match_event_sim_exactly() {
        let nl = xor_chain(5);
        let news = all_vectors(6);
        let prevs = vec![vec![false; 6]; news.len()];
        let res = assert_equiv(&nl, &UnitDelay, &prevs, &news, &[]);
        assert_eq!(res.lanes(), 64);
        assert!(res.word_steps() > 0);
        assert!(res.lane_transitions() >= res.word_steps());
    }

    #[test]
    fn glitches_survive_lane_packing() {
        let nl = glitchy();
        let res = assert_equiv(
            &nl,
            &UnitDelay,
            &[vec![false], vec![true]],
            &[vec![true], vec![false]],
            &[],
        );
        let z = nl.output("z")[0];
        // Lane 0 (rising a): glitch pulse up at U, down at 3U.
        assert_eq!(res.lane_waveform(z, 0), vec![(U, true), (3 * U, false)]);
    }

    #[test]
    fn fpga_delay_model_matches_event_sim() {
        let nl = glitchy();
        let news = all_vectors(1);
        let prevs = vec![vec![true]; news.len()];
        assert_equiv(&nl, &FpgaDelay::default(), &prevs, &news, &[]);
    }

    #[test]
    fn per_lane_fault_divergence_matches_scalar_plans() {
        let nl = xor_chain(3);
        let out = nl.output("z")[0];
        let mid = nl.net(2);
        let plans = vec![
            FaultPlan::new(),
            FaultPlan::new().stuck_at(out, true),
            FaultPlan::new().stuck_at(mid, false),
            FaultPlan::new().transient(out, U, 2 * U),
            FaultPlan::new().delay_push(mid, 3 * U),
            FaultPlan::new().delay_push(nl.net(0), U).transient(mid, 2 * U, U),
            FaultPlan::new().stuck_at(mid, true).delay_push(out, U),
        ];
        let news: Vec<Vec<bool>> =
            (0..plans.len()).map(|l| (0..4).map(|i| (l + i) % 3 == 0).collect()).collect();
        let prevs: Vec<Vec<bool>> =
            (0..plans.len()).map(|l| (0..4).map(|i| (l * i) % 2 == 1).collect()).collect();
        assert_equiv(&nl, &UnitDelay, &prevs, &news, &plans);
    }

    #[test]
    fn transient_on_quiet_net_flips_inside_window_only() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let z = nl.not(a);
        nl.set_output("z", vec![z]);
        let plans = vec![FaultPlan::new().transient(z, 5 * U, 2 * U)];
        let res = assert_equiv(&nl, &UnitDelay, &[vec![false]], &[vec![false]], &plans);
        assert_eq!(res.lane_waveform(z, 0), vec![(5 * U, false), (7 * U, true)]);
    }

    #[test]
    fn input_delay_push_models_late_operand() {
        let nl = xor_chain(2);
        let a = nl.net(0);
        let plans = vec![FaultPlan::new().delay_push(a, 4 * U)];
        assert_equiv(&nl, &UnitDelay, &[vec![false; 3]], &[vec![true, true, false]], &plans);
    }

    #[test]
    fn run_validates_shapes() {
        let nl = xor_chain(2);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let ok = BatchInputs::zeros(3, 4).unwrap();
        let short = BatchInputs::zeros(2, 4).unwrap();
        let lanes2 = BatchInputs::zeros(3, 2).unwrap();
        assert_eq!(
            prog.run(&ok, &short).unwrap_err(),
            BatchError::InputArity { expected: 3, got: 2 }
        );
        assert_eq!(
            prog.run(&ok, &lanes2).unwrap_err(),
            BatchError::LaneMismatch { prev: 4, new: 2 }
        );
        let alien = BatchFaultSet::compile(&[], 99).unwrap();
        assert!(matches!(
            prog.run_with_faults(&ok, &ok, &alien).unwrap_err(),
            BatchError::InvalidFault(NetlistError::NetOutOfRange { .. })
        ));
    }

    #[test]
    fn cancellation_is_checked_before_and_during_the_pass() {
        let nl = xor_chain(4);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let b = BatchInputs::zeros(5, 8).unwrap();
        let tok = crate::CancelToken::new();
        // Live token: bit-identical to the plain run.
        let plain = prog.run(&b, &b).unwrap();
        let live = prog.run_cancellable(&b, &b, &tok).unwrap();
        for net in nl.nets() {
            assert_eq!(plain.wave(net), live.wave(net));
        }
        // Cancelled token: typed error from both entry points.
        tok.cancel();
        assert_eq!(prog.run_cancellable(&b, &b, &tok).unwrap_err(), BatchError::Cancelled);
        let fs = BatchFaultSet::compile(&[], nl.len()).unwrap();
        assert_eq!(
            prog.run_with_faults_cancellable(&b, &b, &fs, &tok).unwrap_err(),
            BatchError::Cancelled
        );
    }

    #[test]
    fn zero_lanes_is_a_valid_degenerate_batch() {
        let nl = xor_chain(2);
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let b = BatchInputs::zeros(3, 0).unwrap();
        let res = prog.run(&b, &b).unwrap();
        assert_eq!(res.lanes(), 0);
        assert_eq!(res.lane_transitions(), 0);
        assert_eq!(res.max_settle_time(), 0);
    }

    #[test]
    fn identity_fault_set_equals_fault_free_run() {
        let nl = glitchy();
        let prog = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let prev = BatchInputs::pack(&[vec![false], vec![true]]).unwrap();
        let new = BatchInputs::pack(&[vec![true], vec![true]]).unwrap();
        let clean = prog.run(&prev, &new).unwrap();
        let fs = BatchFaultSet::compile(&[FaultPlan::new(), FaultPlan::new()], nl.len()).unwrap();
        let faulty = prog.run_with_faults(&prev, &new, &fs).unwrap();
        for net in nl.nets() {
            assert_eq!(clean.wave(net), faulty.wave(net));
        }
        assert_eq!(clean.settle_times(), faulty.settle_times());
    }
}
