//! FPGA area estimation by greedy LUT covering.
//!
//! Stand-in for the vendor tool's LUT/Slice report (Table 4 of the paper).
//! Gates are covered by K-input LUTs with a simple greedy cone-packing: a
//! LUT absorbs single-fanout fanin gates while its leaf count stays ≤ K.
//! Absolute counts are technology-mapping-dependent; the experiment only
//! uses the *ratio* between the online and the traditional datapath.

use crate::{NetId, Netlist};
use std::collections::BTreeSet;

/// LUT-level area summary of a netlist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AreaReport {
    /// Estimated number of K-input LUTs.
    pub luts: usize,
    /// Estimated number of slices (4 LUTs per slice).
    pub slices: usize,
    /// Raw logic gate count before covering.
    pub gates: usize,
    /// Number of primary inputs.
    pub inputs: usize,
}

impl AreaReport {
    /// The LUT overhead of `self` relative to `baseline` (e.g. online vs
    /// traditional arithmetic — 2.08 in the paper's Table 4).
    #[must_use]
    pub fn lut_overhead(&self, baseline: &AreaReport) -> f64 {
        self.luts as f64 / baseline.luts as f64
    }

    /// The slice overhead of `self` relative to `baseline`.
    #[must_use]
    pub fn slice_overhead(&self, baseline: &AreaReport) -> f64 {
        self.slices as f64 / baseline.slices as f64
    }
}

/// Estimates area when mapped onto `k`-input LUTs (use `k = 4` to mirror the
/// paper's device generation, `k = 6` for modern fabrics).
///
/// # Panics
///
/// Panics if `k < 2`.
#[must_use]
pub fn estimate(netlist: &Netlist, k: usize) -> AreaReport {
    assert!(k >= 2, "LUTs need at least 2 inputs");
    let fanout = netlist.fanout_counts();
    let is_output_root: BTreeSet<NetId> =
        netlist.outputs().flat_map(|(_, nets)| nets.iter().copied()).collect();

    let mut counted = vec![false; netlist.len()];
    let mut luts = 0usize;
    // Roots: every output net that is a logic gate.
    let mut work: Vec<NetId> =
        is_output_root.iter().copied().filter(|&n| netlist.kind(n).is_logic()).collect();

    while let Some(root) = work.pop() {
        if counted[root.index()] {
            continue;
        }
        counted[root.index()] = true;
        luts += 1;

        // Grow the cone rooted at `root`.
        let mut absorbed: BTreeSet<NetId> = BTreeSet::new();
        absorbed.insert(root);
        let mut leaves: BTreeSet<NetId> = netlist.gate_inputs(root).iter().copied().collect();
        loop {
            let candidate = leaves.iter().copied().find(|&leaf| {
                netlist.kind(leaf).is_logic()
                    && fanout[leaf.index()] == 1
                    && !is_output_root.contains(&leaf)
                    && !counted[leaf.index()]
                    && cone_leaf_count_after(netlist, &leaves, leaf) <= k
            });
            match candidate {
                Some(leaf) => {
                    leaves.remove(&leaf);
                    absorbed.insert(leaf);
                    counted[leaf.index()] = true;
                    for &inp in netlist.gate_inputs(leaf) {
                        if !absorbed.contains(&inp) {
                            leaves.insert(inp);
                        }
                    }
                }
                None => break,
            }
        }
        // Remaining logic leaves need their own LUTs.
        for leaf in leaves {
            if netlist.kind(leaf).is_logic() && !counted[leaf.index()] {
                work.push(leaf);
            }
        }
    }

    AreaReport {
        luts,
        slices: luts.div_ceil(4),
        gates: netlist.logic_gate_count(),
        inputs: netlist.inputs().len(),
    }
}

fn cone_leaf_count_after(netlist: &Netlist, leaves: &BTreeSet<NetId>, absorb: NetId) -> usize {
    let mut set: BTreeSet<NetId> = leaves.clone();
    set.remove(&absorb);
    for &inp in netlist.gate_inputs(absorb) {
        set.insert(inp);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder(nl: &mut Netlist) -> (NetId, NetId) {
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let axb = nl.xor(a, b);
        let s = nl.xor(axb, c);
        let ab = nl.and(a, b);
        let cax = nl.and(c, axb);
        let cout = nl.or(ab, cax);
        (s, cout)
    }

    #[test]
    fn single_gate_is_one_lut() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let z = nl.and(a, b);
        nl.set_output("z", vec![z]);
        let rep = estimate(&nl, 4);
        assert_eq!(rep.luts, 1);
        assert_eq!(rep.slices, 1);
        assert_eq!(rep.gates, 1);
    }

    #[test]
    fn full_adder_packs_into_two_4luts() {
        // A full adder has two 3-input functions of (a, b, c): sum and carry.
        let mut nl = Netlist::new();
        let (s, cout) = full_adder(&mut nl);
        nl.set_output("z", vec![s, cout]);
        let rep = estimate(&nl, 4);
        // The shared a^b gate can be absorbed into only one cone (fanout 2),
        // so greedy gives 2 or 3 LUTs; must not exceed gate count (5).
        assert!(rep.luts >= 2 && rep.luts <= 3, "luts = {}", rep.luts);
    }

    #[test]
    fn deep_single_fanout_chain_collapses() {
        // A chain of NOTs has 1 leaf; it all fits in one LUT.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..10 {
            cur = nl.not(cur);
        }
        nl.set_output("z", vec![cur]);
        assert_eq!(estimate(&nl, 4).luts, 1);
    }

    #[test]
    fn wide_xor_tree_obeys_lut_capacity() {
        // 8-input xor tree: with 4-LUTs needs ceil(7 gates / cones of ≤3) ≥ 3;
        // optimal is 3 (two 4-input LUTs + combiner packed with one of them
        // is impossible: combiner has 2 leaves) → greedy should find ≤ 4.
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 8);
        let mut layer: Vec<NetId> = xs;
        while layer.len() > 1 {
            layer = layer.chunks(2).map(|c| nl.xor(c[0], c[1])).collect();
        }
        nl.set_output("z", vec![layer[0]]);
        let rep = estimate(&nl, 4);
        assert!(rep.luts >= 3 && rep.luts <= 4, "luts = {}", rep.luts);
        // With 6-LUTs it should do at least as well.
        assert!(estimate(&nl, 6).luts <= rep.luts);
    }

    #[test]
    fn output_nets_are_never_absorbed() {
        // Intermediate net exposed as an output must keep its own LUT.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.and(a, b);
        let z = nl.not(m);
        nl.set_output("mid", vec![m]);
        nl.set_output("z", vec![z]);
        assert_eq!(estimate(&nl, 4).luts, 2);
    }

    #[test]
    fn overheads_are_ratios() {
        let small = AreaReport { luts: 100, slices: 25, gates: 150, inputs: 8 };
        let big = AreaReport { luts: 208, slices: 52, gates: 400, inputs: 8 };
        assert!((big.lut_overhead(&small) - 2.08).abs() < 1e-12);
        assert!((big.slice_overhead(&small) - 2.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_luts_rejected() {
        let nl = Netlist::new();
        let _ = estimate(&nl, 1);
    }
}
