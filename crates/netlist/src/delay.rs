//! Gate delay models.
//!
//! Delays are in abstract integer *time units* (think picoseconds). Absolute
//! values are uncalibrated — the paper's results are reported against
//! *normalized* frequency, so only ratios matter. The jittered model stands
//! in for place-and-route variation on the FPGA: per-gate deterministic
//! pseudo-random offsets derived from a seed, so runs are reproducible.

use crate::{GateKind, NetId};

/// Maps each gate instance to a propagation delay in time units.
pub trait DelayModel {
    /// Delay of the gate driving `net`. Inputs and constants must be 0.
    fn gate_delay(&self, kind: GateKind, net: NetId) -> u64;

    /// True if this model is a pure per-gate function that the batch
    /// compiler ([`crate::batch::BatchProgram::compile`]) may sample once
    /// per gate and bake into a flat program. Models that emulate
    /// place-and-route variation ([`JitteredDelay`]) return `false`, which
    /// makes batch compilation fail with
    /// [`BatchError::DelayNotBatchExact`](crate::BatchError::DelayNotBatchExact)
    /// so callers transparently fall back to the event-driven engine.
    fn batch_exact(&self) -> bool {
        true
    }

    /// A string that, combined with a netlist digest, uniquely identifies
    /// the batch program this model compiles to — the memoization key
    /// component for compile caching. `None` (the default) opts out:
    /// compiled programs for this model are never cached. Only return
    /// `Some` if equal keys *guarantee* equal `gate_delay` functions.
    fn cache_key(&self) -> Option<String> {
        None
    }
}

impl<M: DelayModel + ?Sized> DelayModel for &M {
    fn gate_delay(&self, kind: GateKind, net: NetId) -> u64 {
        (**self).gate_delay(kind, net)
    }

    fn batch_exact(&self) -> bool {
        (**self).batch_exact()
    }

    fn cache_key(&self) -> Option<String> {
        (**self).cache_key()
    }
}

/// Every logic gate takes exactly [`UnitDelay::UNIT`] time units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitDelay;

impl UnitDelay {
    /// The delay of one gate, in time units.
    pub const UNIT: u64 = 100;
}

impl DelayModel for UnitDelay {
    fn gate_delay(&self, kind: GateKind, _net: NetId) -> u64 {
        if kind.is_logic() {
            Self::UNIT
        } else {
            0
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("unit/{}", Self::UNIT))
    }
}

/// An FPGA-flavoured table: inverters are cheap (absorbed into LUT inputs),
/// 2-input gates cost one LUT traversal, muxes slightly more.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FpgaDelay {
    /// Delay of an inverter.
    pub not: u64,
    /// Delay of a 2-input gate.
    pub two_input: u64,
    /// Delay of a 2:1 mux.
    pub mux: u64,
}

impl Default for FpgaDelay {
    fn default() -> Self {
        FpgaDelay { not: 20, two_input: 100, mux: 120 }
    }
}

impl DelayModel for FpgaDelay {
    fn gate_delay(&self, kind: GateKind, _net: NetId) -> u64 {
        match kind {
            GateKind::Input | GateKind::Const => 0,
            GateKind::Not => self.not,
            GateKind::Mux => self.mux,
            _ => self.two_input,
        }
    }

    fn cache_key(&self) -> Option<String> {
        Some(format!("fpga/{}/{}/{}", self.not, self.two_input, self.mux))
    }
}

/// Wraps another model, adding a deterministic per-gate pseudo-random offset
/// in `[-amplitude, +amplitude]` (clamped so delays stay ≥ 1 for logic).
///
/// This emulates routing-induced delay variation after place-and-route: two
/// structurally identical gates sit on different fabric paths. The offset
/// depends only on `(seed, net)`, so experiments are reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JitteredDelay<M> {
    inner: M,
    amplitude: u64,
    seed: u64,
}

impl<M: DelayModel> JitteredDelay<M> {
    /// Wraps `inner`, jittering each gate by at most `amplitude` time units.
    #[must_use]
    pub fn new(inner: M, amplitude: u64, seed: u64) -> Self {
        JitteredDelay { inner, amplitude, seed }
    }

    /// The wrapped model.
    #[must_use]
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: DelayModel> DelayModel for JitteredDelay<M> {
    /// Jitter stands in for fresh place-and-route variation, so batch
    /// programs must not bake it in: jittered configs take the event-driven
    /// path (see [`DelayModel::batch_exact`]).
    fn batch_exact(&self) -> bool {
        false
    }

    fn gate_delay(&self, kind: GateKind, net: NetId) -> u64 {
        let base = self.inner.gate_delay(kind, net);
        if base == 0 || self.amplitude == 0 {
            return base;
        }
        let h = splitmix64(self.seed ^ (net.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let span = 2 * self.amplitude + 1;
        let offset = (h % span) as i64 - self.amplitude as i64;
        let jittered = base as i64 + offset;
        jittered.max(1) as u64
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delay_is_uniform_for_logic() {
        let m = UnitDelay;
        assert_eq!(m.gate_delay(GateKind::And, NetId(3)), UnitDelay::UNIT);
        assert_eq!(m.gate_delay(GateKind::Mux, NetId(9)), UnitDelay::UNIT);
        assert_eq!(m.gate_delay(GateKind::Input, NetId(0)), 0);
        assert_eq!(m.gate_delay(GateKind::Const, NetId(0)), 0);
    }

    #[test]
    fn fpga_delay_distinguishes_kinds() {
        let m = FpgaDelay::default();
        assert!(m.gate_delay(GateKind::Not, NetId(0)) < m.gate_delay(GateKind::And, NetId(0)));
        assert!(m.gate_delay(GateKind::Mux, NetId(0)) > m.gate_delay(GateKind::Xor, NetId(0)));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = JitteredDelay::new(UnitDelay, 30, 42);
        for i in 0..200u32 {
            let d1 = m.gate_delay(GateKind::And, NetId(i));
            let d2 = m.gate_delay(GateKind::And, NetId(i));
            assert_eq!(d1, d2, "same gate must get the same delay");
            assert!((UnitDelay::UNIT - 30..=UnitDelay::UNIT + 30).contains(&d1));
        }
    }

    #[test]
    fn jitter_varies_across_gates() {
        let m = JitteredDelay::new(UnitDelay, 30, 42);
        let delays: Vec<u64> = (0..50u32).map(|i| m.gate_delay(GateKind::And, NetId(i))).collect();
        assert!(delays.iter().any(|&d| d != delays[0]), "jitter should vary");
    }

    #[test]
    fn jitter_depends_on_seed() {
        let m1 = JitteredDelay::new(UnitDelay, 30, 1);
        let m2 = JitteredDelay::new(UnitDelay, 30, 2);
        let diff = (0..100u32)
            .filter(|&i| {
                m1.gate_delay(GateKind::And, NetId(i)) != m2.gate_delay(GateKind::And, NetId(i))
            })
            .count();
        assert!(diff > 50, "different seeds should give different jitter");
    }

    #[test]
    fn zero_base_delay_stays_zero() {
        let m = JitteredDelay::new(UnitDelay, 30, 7);
        assert_eq!(m.gate_delay(GateKind::Input, NetId(5)), 0);
    }

    #[test]
    fn cache_keys_distinguish_models_and_jitter_opts_out() {
        assert_eq!(UnitDelay.cache_key().unwrap(), "unit/100");
        let fpga = FpgaDelay::default();
        assert_ne!(fpga.cache_key(), UnitDelay.cache_key());
        let slow = FpgaDelay { two_input: 200, ..fpga };
        assert_ne!(slow.cache_key(), fpga.cache_key());
        // Jitter emulates per-run variation; memoizing it would be unsound.
        assert_eq!(JitteredDelay::new(UnitDelay, 1, 1).cache_key(), None);
        // The blanket &M impl forwards.
        assert_eq!(UnitDelay.cache_key().unwrap(), "unit/100");
    }
}
