//! Observability hooks for the simulation engines.
//!
//! `ola-netlist` deliberately has no dependency on the `ola-core`
//! observability layer (or any other consumer). Instead it exposes a tiny
//! [`SimObserver`] trait plus a process-global registration point
//! ([`install_observer`]): a downstream crate installs one observer and the
//! engines report coarse, *deterministic* facts about their work — one call
//! per simulation run / batch pass / compile, never per event.
//!
//! Design constraints:
//!
//! * **Near-free when uninstalled.** The fast path is a single relaxed
//!   atomic load (see [`with_observer`]); no observer means no virtual
//!   call, no allocation, nothing.
//! * **Deterministic payloads.** Every quantity handed to the observer is
//!   simulation-domain (event counts, settle times in time units, lane
//!   counts) — never wall-clock time — so an observer that sums them gets
//!   totals independent of thread interleaving and thread count.
//! * **Hot-loop free.** Hooks fire at run granularity. The event
//!   simulator's settle loop is *summarized* (`events`, `settle_time`)
//!   rather than instrumented per event; the batch engine reports per
//!   pass, not per level.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Coarse-grained observer of the simulation engines.
///
/// All methods have no-op defaults; implement only what you consume. Every
/// argument is deterministic simulation-domain data (see the module docs).
pub trait SimObserver: Sync {
    /// One event-driven simulation run settled: `events` net transitions
    /// were recorded and the last one happened at `settle_time`.
    fn event_run(&self, events: u64, settle_time: u64) {
        let _ = (events, settle_time);
    }

    /// One event-driven run aborted via [`SimError::Unsettled`]
    /// (combinational cycle / runaway oscillation): `processed` scheduled
    /// events exhausted the `budget`.
    ///
    /// [`SimError::Unsettled`]: crate::SimError::Unsettled
    fn event_unsettled(&self, processed: u64, budget: u64) {
        let _ = (processed, budget);
    }

    /// One batch program was compiled: `nets` nets levelized into `depth`
    /// topological levels.
    fn batch_compile(&self, nets: u64, depth: u64) {
        let _ = (nets, depth);
    }

    /// One batch pass completed over `lanes` active lanes, storing
    /// `word_steps` word-level waveform steps that represent
    /// `lane_transitions` per-lane transitions.
    fn batch_run(&self, lanes: u64, word_steps: u64, lane_transitions: u64) {
        let _ = (lanes, word_steps, lane_transitions);
    }
}

static INSTALLED: AtomicBool = AtomicBool::new(false);
static OBSERVER: OnceLock<&'static dyn SimObserver> = OnceLock::new();

/// Installs the process-global simulation observer.
///
/// Only the first installation wins (the slot is write-once); returns
/// `true` when `observer` was installed, `false` when another observer was
/// already in place. The observer must be `'static` — typically a
/// `&'static` to a lazily-initialized singleton.
pub fn install_observer(observer: &'static dyn SimObserver) -> bool {
    let won = OBSERVER.set(observer).is_ok();
    if won {
        INSTALLED.store(true, Ordering::Release);
    }
    won
}

/// True once an observer has been installed.
#[must_use]
pub fn observer_installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Runs `f` with the installed observer, if any.
///
/// The uninstalled fast path is a single relaxed atomic load.
#[inline]
pub(crate) fn with_observer<F: FnOnce(&dyn SimObserver)>(f: F) {
    if INSTALLED.load(Ordering::Relaxed) {
        if let Some(obs) = OBSERVER.get() {
            f(*obs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    struct CountingObserver {
        runs: AtomicU64,
    }

    impl SimObserver for CountingObserver {
        fn event_run(&self, _events: u64, _settle_time: u64) {
            self.runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    static TEST_OBSERVER: CountingObserver = CountingObserver { runs: AtomicU64::new(0) };

    #[test]
    fn install_is_write_once_and_hooks_fire() {
        // This test binary installs exactly one observer; whether this
        // particular call wins depends on test ordering, but afterwards an
        // observer is definitely installed.
        let _ = install_observer(&TEST_OBSERVER);
        assert!(observer_installed());
        // Second install is rejected.
        assert!(!install_observer(&TEST_OBSERVER));

        // Run a tiny simulation; if our observer won the race, its counter
        // moves.
        let before = TEST_OBSERVER.runs.load(Ordering::Relaxed);
        let mut nl = crate::Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        nl.set_output("z", vec![b]);
        let _ = crate::simulate_from_zero(&nl, &crate::UnitDelay, &[true]);
        let after = TEST_OBSERVER.runs.load(Ordering::Relaxed);
        assert!(after >= before, "counter never goes backwards");
        assert_eq!(after, before + 1, "one run, one hook call");
    }

    #[test]
    fn default_methods_are_no_ops() {
        struct Inert;
        impl SimObserver for Inert {}
        let inert = Inert;
        inert.event_run(1, 2);
        inert.event_unsettled(3, 4);
        inert.batch_compile(5, 6);
        inert.batch_run(7, 8, 9);
    }
}
