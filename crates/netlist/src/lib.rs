//! # ola-netlist — gate-level netlists with overclocked timing simulation
//!
//! Substrate crate for the `ola` workspace. The paper's empirical results
//! come from post-place-and-route FPGA timing simulation; this crate is the
//! software stand-in:
//!
//! * [`Netlist`] — structural combinational netlists (DAG by construction);
//! * [`simulate`] — event-driven transport-delay simulation recording every
//!   net's settling waveform, with [`SimResult::value_at`] answering *what
//!   does a register clocked at period `Ts` capture?* — the overclocking
//!   primitive;
//! * [`sta`] — the static-analysis subsystem: [`analyze`] arrival times
//!   (the "rated" frequency a tool would report), per-net slack, top-K
//!   critical paths, per-digit settlement certification, and a structural
//!   lint pass with dead-cone pruning;
//! * [`equiv`] — staged combinational equivalence checking (structural
//!   hashing → ROBDD → exhaustive/random 64-lane evaluation) returning
//!   typed [`EquivVerdict`]s with replayable counterexamples — the
//!   safety net under every semantics-preserving rewrite;
//! * [`DelayModel`]s — [`UnitDelay`], [`FpgaDelay`], and [`JitteredDelay`]
//!   standing in for place-and-route delay variation;
//! * [`fault`] — stuck-at / transient-SEU / delay-push fault overlays
//!   ([`FaultPlan`]) injected via [`simulate_with_faults`], with an event
//!   budget so cyclic netlists return [`SimError::Unsettled`] instead of
//!   hanging;
//! * [`batch`] — the levelized bit-parallel batch engine: 64 input vectors
//!   (and 64 per-lane fault plans) per pass, with multi-`Ts` sampling,
//!   bit-identical per lane to [`simulate`] for batch-exact delay models;
//! * [`area::estimate`] — greedy LUT covering for Table-4-style area
//!   comparisons;
//! * [`obs`] — coarse, deterministic observability hooks
//!   ([`obs::SimObserver`]) that a downstream tracing/metrics layer (e.g.
//!   `ola-core::obs`) installs once per process; near-free when
//!   uninstalled;
//! * [`cells`] — full adders and the PPM/MMP cells of borrow-save
//!   arithmetic.
//!
//! # Example: observing a timing violation
//!
//! ```
//! use ola_netlist::{simulate, Netlist, UnitDelay};
//!
//! // A 3-deep inverter chain; flipping the input reaches the output after
//! // three gate delays.
//! let mut nl = Netlist::new();
//! let a = nl.input("a");
//! let b = nl.not(a);
//! let c = nl.not(b);
//! let z = nl.not(c);
//!
//! let res = simulate(&nl, &UnitDelay, &[false], &[true]);
//! let settled = res.final_value(z);
//! let overclocked = res.value_at(z, 150); // sampled too early!
//! assert_ne!(settled, overclocked);
//! ```

pub mod area;
pub mod batch;
pub mod cancel;
pub mod cells;
mod delay;
pub mod equiv;
mod error;
pub mod fault;
mod netlist;
pub mod obs;
mod pipeline;
mod sim;
pub mod sta;
pub mod vcd;

pub use area::AreaReport;
pub use cancel::{CancelToken, Cancelled};
pub use delay::{DelayModel, FpgaDelay, JitteredDelay, UnitDelay};
pub use equiv::{
    check_equiv, check_equiv_with, Counterexample, EquivError, EquivMethod, EquivOptions,
    EquivVerdict,
};
pub use error::{BatchError, NetlistError, SimError, StaError};
pub use fault::{Fault, FaultKind, FaultPlan};
pub use netlist::{GateKind, NetId, Netlist};
pub use pipeline::{Pipeline, PipelineStage};
pub use sim::{
    default_event_budget, simulate, simulate_budgeted, simulate_budgeted_cancellable,
    simulate_from_zero, simulate_from_zero_with_faults, simulate_with_faults,
    simulate_with_faults_cancellable, BusWaveforms, SimResult,
};
pub use sta::{analyze, try_analyze, TimingReport};
