//! Event-driven timing simulation with overclocked sampling.
//!
//! This is the workspace's substitute for post-place-and-route FPGA timing
//! simulation. Given the input vector of the *previous* clock cycle and the
//! new input vector applied at `t = 0`, the simulator propagates changes
//! through the netlist under a [`DelayModel`] (transport-delay semantics)
//! and records the full settling waveform of every net.
//! [`SimResult::value_at`] then answers the overclocking question: *what
//! would a register clocked with period `Ts` capture?*

use crate::{DelayModel, NetId, Netlist};
use crate::netlist::eval_gate;

/// The settling history of one simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    initial: Vec<bool>,
    waveforms: Vec<Vec<(u64, bool)>>,
    settle_time: u64,
    events: usize,
}

impl SimResult {
    /// The value of `net` at time `t` — what a register clocked `t` time
    /// units after the inputs switched would capture.
    #[must_use]
    pub fn value_at(&self, net: NetId, t: u64) -> bool {
        let wf = &self.waveforms[net.index()];
        match wf.partition_point(|&(time, _)| time <= t) {
            0 => self.initial[net.index()],
            k => wf[k - 1].1,
        }
    }

    /// The fully settled (correct) value of `net`.
    #[must_use]
    pub fn final_value(&self, net: NetId) -> bool {
        match self.waveforms[net.index()].last() {
            Some(&(_, v)) => v,
            None => self.initial[net.index()],
        }
    }

    /// Samples a bus at time `t`.
    #[must_use]
    pub fn sample_bus(&self, nets: &[NetId], t: u64) -> Vec<bool> {
        nets.iter().map(|&n| self.value_at(n, t)).collect()
    }

    /// Samples the settled values of a bus.
    #[must_use]
    pub fn final_bus(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.final_value(n)).collect()
    }

    /// Time of the last transition anywhere in the netlist. Sampling at or
    /// after this time is guaranteed error-free *for this input pair*.
    #[must_use]
    pub fn settle_time(&self) -> u64 {
        self.settle_time
    }

    /// Time of the last transition on any of `nets` (settling time of an
    /// output bus).
    #[must_use]
    pub fn settle_time_of(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .filter_map(|&n| self.waveforms[n.index()].last().map(|&(t, _)| t))
            .max()
            .unwrap_or(0)
    }

    /// Number of applied transitions (simulator work; useful for benches).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events
    }

    /// The transition history `(time, new_value)` of one net.
    #[must_use]
    pub fn waveform(&self, net: NetId) -> &[(u64, bool)] {
        &self.waveforms[net.index()]
    }

    /// The value of `net` before the inputs switched.
    #[must_use]
    pub fn initial_value(&self, net: NetId) -> bool {
        self.initial[net.index()]
    }

    /// Extracts a compact, re-sampleable copy of one bus's waveforms.
    #[must_use]
    pub fn bus_waveforms(&self, nets: &[NetId]) -> BusWaveforms {
        BusWaveforms {
            initial: nets.iter().map(|&n| self.initial_value(n)).collect(),
            waveforms: nets.iter().map(|&n| self.waveform(n).to_vec()).collect(),
        }
    }
}

/// The settling history of one output bus, detached from its simulation —
/// small enough to memoize, sampleable at any time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusWaveforms {
    initial: Vec<bool>,
    waveforms: Vec<Vec<(u64, bool)>>,
}

impl BusWaveforms {
    /// Number of nets in the bus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// True if the bus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }

    /// The bus values a register clocked at period `t` would capture.
    #[must_use]
    pub fn sample(&self, t: u64) -> Vec<bool> {
        (0..self.len())
            .map(|i| {
                let wf = &self.waveforms[i];
                match wf.partition_point(|&(time, _)| time <= t) {
                    0 => self.initial[i],
                    k => wf[k - 1].1,
                }
            })
            .collect()
    }

    /// The settled bus values.
    #[must_use]
    pub fn settled(&self) -> Vec<bool> {
        (0..self.len())
            .map(|i| self.waveforms[i].last().map_or(self.initial[i], |&(_, v)| v))
            .collect()
    }
}

/// Simulates the transition from `prev_inputs` (settled before `t = 0`) to
/// `new_inputs` (applied at `t = 0`).
///
/// All internal nets start at their settled value under `prev_inputs` —
/// pass all-`false` as `prev_inputs` for the paper's "all internal signals
/// reset to 0 initially" scenario.
///
/// # Panics
///
/// Panics if either input slice length differs from the netlist's input
/// count.
#[must_use]
pub fn simulate<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
) -> SimResult {
    assert_eq!(new_inputs.len(), netlist.inputs().len(), "new input arity");
    let initial = netlist.eval(prev_inputs);
    let mut current = initial.clone();
    let fanout = netlist.fanout_lists();
    let n = netlist.len();
    let mut waveforms: Vec<Vec<(u64, bool)>> = vec![Vec::new(); n];

    // Time-indexed bucket queue: delays are small integers, so a calendar
    // of per-tick event lists beats a binary heap by a wide margin.
    let mut buckets: Vec<Vec<(u32, bool)>> = vec![Vec::new()];
    let mut pending = 0usize;

    for (net, (&prev, &new)) in netlist
        .inputs()
        .iter()
        .zip(prev_inputs.iter().zip(new_inputs))
    {
        if prev != new {
            buckets[0].push((net.0, new));
            pending += 1;
        }
    }

    let mut settle_time = 0;
    let mut events = 0usize;
    let mut dirty: Vec<u32> = Vec::new();
    let mut dirty_flag = vec![false; n];

    let mut t = 0usize;
    while pending > 0 {
        debug_assert!(t < buckets.len(), "pending events must exist");
        if buckets[t].is_empty() {
            t += 1;
            continue;
        }
        // Apply every event scheduled for time `t`.
        dirty.clear();
        let batch = std::mem::take(&mut buckets[t]);
        pending -= batch.len();
        for (net, val) in batch {
            let idx = net as usize;
            if current[idx] != val {
                current[idx] = val;
                waveforms[idx].push((t as u64, val));
                settle_time = settle_time.max(t as u64);
                events += 1;
                for &g in &fanout[idx] {
                    if !dirty_flag[g.index()] {
                        dirty_flag[g.index()] = true;
                        dirty.push(g.0);
                    }
                }
            }
        }
        // Re-evaluate affected gates and schedule their (possibly unchanged)
        // outputs: scheduling equal values cancels stale in-flight events.
        for &g in &dirty {
            dirty_flag[g as usize] = false;
            let gid = NetId(g);
            let kind = netlist.kind(gid);
            debug_assert!(kind.is_logic(), "inputs/constants have no fanin");
            let newv = eval_gate(kind, netlist.gate_inputs(gid), &current);
            let d = delay.gate_delay(kind, gid).max(1) as usize;
            if t + d >= buckets.len() {
                buckets.resize(t + d + 1, Vec::new());
            }
            buckets[t + d].push((g, newv));
            pending += 1;
        }
    }

    SimResult { initial, waveforms, settle_time, events }
}

/// Convenience wrapper: simulate from the all-zero previous input vector
/// (the paper's reset assumption).
#[must_use]
pub fn simulate_from_zero<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    new_inputs: &[bool],
) -> SimResult {
    let zeros = vec![false; netlist.inputs().len()];
    simulate(netlist, delay, &zeros, new_inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;

    const U: u64 = UnitDelay::UNIT;

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..n {
            let b = nl.input("b");
            cur = nl.xor(cur, b);
        }
        nl.set_output("z", vec![cur]);
        nl
    }

    #[test]
    fn final_values_match_functional_eval() {
        let nl = xor_chain(5);
        let inputs = [true, false, true, true, false, true];
        let res = simulate_from_zero(&nl, &UnitDelay, &inputs);
        let evald = nl.eval(&inputs);
        let out = nl.output("z")[0];
        assert_eq!(res.final_value(out), evald[out.index()]);
    }

    #[test]
    fn settle_time_tracks_logic_depth() {
        // Flipping the head input of an n-deep xor chain ripples through all
        // n gates: settle time = n * unit delay.
        let nl = xor_chain(6);
        let mut prev = vec![false; 7];
        let mut next = prev.clone();
        next[0] = true;
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        assert_eq!(res.settle_time(), 6 * U);
        // Flipping only the last input touches one gate.
        prev = vec![false; 7];
        let mut next2 = prev.clone();
        next2[6] = true;
        let res2 = simulate(&nl, &UnitDelay, &prev, &next2);
        assert_eq!(res2.settle_time(), U);
    }

    #[test]
    fn early_sampling_reads_stale_values() {
        let nl = xor_chain(4);
        let prev = vec![false; 5];
        let mut next = prev.clone();
        next[0] = true; // output will become 1 after 4 gate delays
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let out = nl.output("z")[0];
        assert!(!res.value_at(out, 0), "before propagation: old value");
        assert!(!res.value_at(out, 4 * U - 1), "one tick early: still old");
        assert!(res.value_at(out, 4 * U), "at arrival: new value");
        assert!(res.final_value(out));
    }

    #[test]
    fn no_input_change_means_no_events() {
        let nl = xor_chain(3);
        let inputs = [true, false, true, false];
        let res = simulate(&nl, &UnitDelay, &inputs, &inputs);
        assert_eq!(res.settle_time(), 0);
        assert_eq!(res.event_count(), 0);
        let out = nl.output("z")[0];
        assert_eq!(res.value_at(out, 0), nl.eval(&inputs)[out.index()]);
    }

    #[test]
    fn glitches_are_recorded() {
        // z = a XOR a' where a' = NOT(NOT(a)): a rising edge causes a glitch
        // on z because the inverter path is slower.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.xor(a, n2);
        nl.set_output("z", vec![z]);
        let res = simulate(&nl, &UnitDelay, &[false], &[true]);
        // a flips at 0; z sees a at U (goes 0^0=0 -> 1^0=1), n2 catches up at
        // 2U, z returns to 0 at 3U.
        assert!(!res.value_at(z, 0));
        assert!(res.value_at(z, U));
        assert!(res.value_at(z, 3 * U - 1));
        assert!(!res.value_at(z, 3 * U));
        assert!(!res.final_value(z));
        assert_eq!(res.waveform(z).len(), 2, "one glitch pulse: up then down");
    }

    #[test]
    fn cancelled_events_do_not_corrupt_state() {
        // Same circuit; verify the settled value equals functional eval for
        // both edges (exercises the schedule-equal-value cancellation path).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.and(a, n2);
        nl.set_output("z", vec![z]);
        for (p, q) in [(false, true), (true, false)] {
            let res = simulate(&nl, &UnitDelay, &[p], &[q]);
            assert_eq!(res.final_value(z), nl.eval(&[q])[z.index()]);
        }
    }

    #[test]
    fn sample_bus_orders_like_input() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.not(a);
        let y = nl.not(b);
        nl.set_output("z", vec![x, y]);
        let res = simulate_from_zero(&nl, &UnitDelay, &[true, false]);
        assert_eq!(res.sample_bus(&[x, y], U), vec![false, true]);
        assert_eq!(res.final_bus(&[x, y]), vec![false, true]);
    }

    #[test]
    fn settle_time_of_bus_subset() {
        let nl = xor_chain(5);
        let prev = vec![false; 6];
        let mut next = prev.clone();
        next[0] = true;
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let out = nl.output("z");
        assert_eq!(res.settle_time_of(out), 5 * U);
        // The first xor settles earlier than the chain output. Nets are
        // created interleaved: a=0, then (b=1, xor=2), (b=3, xor=4), ...
        let first_gate = NetId(2);
        assert_eq!(res.settle_time_of(&[first_gate]), U);
    }
}
