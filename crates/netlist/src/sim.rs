//! Event-driven timing simulation with overclocked sampling.
//!
//! This is the workspace's substitute for post-place-and-route FPGA timing
//! simulation. Given the input vector of the *previous* clock cycle and the
//! new input vector applied at `t = 0`, the simulator propagates changes
//! through the netlist under a [`DelayModel`] (transport-delay semantics)
//! and records the full settling waveform of every net.
//! [`SimResult::value_at`] then answers the overclocking question: *what
//! would a register clocked with period `Ts` capture?*

use crate::cancel::{CancelToken, CHECK_INTERVAL};
use crate::fault::{FaultOverlay, FaultPlan};
use crate::netlist::eval_gate;
use crate::{DelayModel, GateKind, NetId, Netlist, NetlistError, SimError};

/// The settling history of one simulation run.
///
/// `PartialEq`/`Eq` compare the full recorded waveforms, so two results are
/// equal only if the simulations were *bit-identical at every time step* —
/// the property the fault-injection equivalence tests rely on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimResult {
    initial: Vec<bool>,
    waveforms: Vec<Vec<(u64, bool)>>,
    settle_time: u64,
    events: usize,
}

impl SimResult {
    /// The value of `net` at time `t` — what a register clocked `t` time
    /// units after the inputs switched would capture.
    #[must_use]
    pub fn value_at(&self, net: NetId, t: u64) -> bool {
        let wf = &self.waveforms[net.index()];
        match wf.partition_point(|&(time, _)| time <= t) {
            0 => self.initial[net.index()],
            k => wf[k - 1].1,
        }
    }

    /// Like [`SimResult::value_at`], but validates the net reference (for
    /// sampling paths driven by external/untrusted net indices).
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] if `net` is not a net of the
    /// simulated netlist.
    pub fn try_value_at(&self, net: NetId, t: u64) -> Result<bool, NetlistError> {
        if net.index() >= self.waveforms.len() {
            return Err(NetlistError::NetOutOfRange {
                index: net.index(),
                len: self.waveforms.len(),
            });
        }
        Ok(self.value_at(net, t))
    }

    /// Like [`SimResult::sample_bus`], but validates every net reference.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] naming the first invalid net.
    pub fn try_sample_bus(&self, nets: &[NetId], t: u64) -> Result<Vec<bool>, NetlistError> {
        nets.iter().map(|&n| self.try_value_at(n, t)).collect()
    }

    /// The fully settled (correct) value of `net`.
    #[must_use]
    pub fn final_value(&self, net: NetId) -> bool {
        match self.waveforms[net.index()].last() {
            Some(&(_, v)) => v,
            None => self.initial[net.index()],
        }
    }

    /// Samples a bus at time `t`.
    #[must_use]
    pub fn sample_bus(&self, nets: &[NetId], t: u64) -> Vec<bool> {
        nets.iter().map(|&n| self.value_at(n, t)).collect()
    }

    /// Samples the settled values of a bus.
    #[must_use]
    pub fn final_bus(&self, nets: &[NetId]) -> Vec<bool> {
        nets.iter().map(|&n| self.final_value(n)).collect()
    }

    /// Time of the last transition anywhere in the netlist. Sampling at or
    /// after this time is guaranteed error-free *for this input pair*.
    #[must_use]
    pub fn settle_time(&self) -> u64 {
        self.settle_time
    }

    /// Time of the last transition on any of `nets` (settling time of an
    /// output bus).
    #[must_use]
    pub fn settle_time_of(&self, nets: &[NetId]) -> u64 {
        nets.iter()
            .filter_map(|&n| self.waveforms[n.index()].last().map(|&(t, _)| t))
            .max()
            .unwrap_or(0)
    }

    /// Number of applied transitions (simulator work; useful for benches).
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.events
    }

    /// The transition history `(time, new_value)` of one net.
    #[must_use]
    pub fn waveform(&self, net: NetId) -> &[(u64, bool)] {
        &self.waveforms[net.index()]
    }

    /// The value of `net` before the inputs switched.
    #[must_use]
    pub fn initial_value(&self, net: NetId) -> bool {
        self.initial[net.index()]
    }

    /// Extracts a compact, re-sampleable copy of one bus's waveforms.
    #[must_use]
    pub fn bus_waveforms(&self, nets: &[NetId]) -> BusWaveforms {
        BusWaveforms {
            initial: nets.iter().map(|&n| self.initial_value(n)).collect(),
            waveforms: nets.iter().map(|&n| self.waveform(n).to_vec()).collect(),
        }
    }
}

/// The settling history of one output bus, detached from its simulation —
/// small enough to memoize, sampleable at any time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusWaveforms {
    initial: Vec<bool>,
    waveforms: Vec<Vec<(u64, bool)>>,
}

impl BusWaveforms {
    /// Number of nets in the bus.
    #[must_use]
    pub fn len(&self) -> usize {
        self.initial.len()
    }

    /// True if the bus is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.initial.is_empty()
    }

    /// The bus values a register clocked at period `t` would capture.
    #[must_use]
    pub fn sample(&self, t: u64) -> Vec<bool> {
        (0..self.len())
            .map(|i| {
                let wf = &self.waveforms[i];
                match wf.partition_point(|&(time, _)| time <= t) {
                    0 => self.initial[i],
                    k => wf[k - 1].1,
                }
            })
            .collect()
    }

    /// The settled bus values.
    #[must_use]
    pub fn settled(&self) -> Vec<bool> {
        (0..self.len())
            .map(|i| self.waveforms[i].last().map_or(self.initial[i], |&(_, v)| v))
            .collect()
    }
}

/// A generous event budget for well-formed (acyclic) netlists: large
/// enough that no legitimate settling run comes anywhere near it, small
/// enough to stop a combinational cycle in bounded time.
///
/// Glitch activity under de-aligned (jittered) path delays grows
/// *superlinearly* with netlist depth — a few-thousand-gate multiplier
/// under 30% jitter legitimately processes thousands of events per net —
/// so the budget is quadratic in netlist size with a constant floor for
/// tiny circuits.
#[must_use]
pub fn default_event_budget(netlist: &Netlist) -> usize {
    let n = netlist.len();
    n.saturating_mul(n).saturating_mul(16).saturating_add(1 << 20)
}

/// Functional (zero-delay) evaluation under a fault overlay: returns
/// `(raw, observed)` values for every net, where `raw` is what each driver
/// computes from the *observed* (possibly faulted) values of its fanin and
/// `observed` applies the net's own permanent faults. Transients are not
/// active before `t = 0`.
fn eval_with_overlay(
    netlist: &Netlist,
    inputs: &[bool],
    overlay: &FaultOverlay,
) -> (Vec<bool>, Vec<bool>) {
    let n = netlist.len();
    let mut raw = vec![false; n];
    let mut observed = vec![false; n];
    let mut next_input = 0;
    for (i, g) in netlist.gate_nodes().iter().enumerate() {
        let r = match g.kind {
            GateKind::Input => {
                let v = inputs[next_input];
                next_input += 1;
                v
            }
            GateKind::Const => g.const_value,
            _ => eval_gate(g.kind, g.input_slice(), &observed),
        };
        raw[i] = r;
        observed[i] = overlay.observe(i, None, r);
    }
    (raw, observed)
}

/// The shared event-driven core. `overlay` injects faults (`None` = the
/// fault-free fast path), `budget` bounds the number of *processed*
/// scheduled events so oscillating (cyclic) netlists terminate with
/// [`SimError::Unsettled`] instead of looping forever, and `cancel`
/// (when supplied) is polled every [`CHECK_INTERVAL`] processed events
/// so a budget-owning driver can stop a run mid-flight.
fn simulate_core<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
    overlay: Option<&FaultOverlay>,
    budget: usize,
    cancel: Option<&CancelToken>,
) -> Result<SimResult, SimError> {
    if let Some(tok) = cancel {
        if tok.is_cancelled() {
            return Err(SimError::Cancelled);
        }
    }
    let arity = netlist.inputs().len();
    for got in [new_inputs.len(), prev_inputs.len()] {
        if got != arity {
            return Err(SimError::InputArity { expected: arity, got });
        }
    }

    let n = netlist.len();
    // `raw` holds driver outputs, `current` the observed (post-fault)
    // values downstream gates actually see; without faults they coincide.
    let (mut raw, initial) = match overlay {
        Some(ov) => eval_with_overlay(netlist, prev_inputs, ov),
        None => {
            let vals = netlist.try_eval(prev_inputs).expect("arity checked above");
            (vals.clone(), vals)
        }
    };
    let mut current = initial.clone();
    let fanout = netlist.fanout_lists();
    let mut waveforms: Vec<Vec<(u64, bool)>> = vec![Vec::new(); n];

    // Time-indexed bucket queue: delays are small integers, so a calendar
    // of per-tick event lists beats a binary heap by a wide margin.
    // `None` payloads re-apply the stored raw value (used at transient
    // fault window boundaries, where the observed value changes without
    // any driver event).
    let mut buckets: Vec<Vec<(u32, Option<bool>)>> = vec![Vec::new()];
    let mut pending = 0usize;
    let schedule = |buckets: &mut Vec<Vec<(u32, Option<bool>)>>,
                    pending: &mut usize,
                    t: usize,
                    ev: (u32, Option<bool>)| {
        if t >= buckets.len() {
            buckets.resize(t + 1, Vec::new());
        }
        buckets[t].push(ev);
        *pending += 1;
    };

    for (net, (&prev, &new)) in netlist.inputs().iter().zip(prev_inputs.iter().zip(new_inputs)) {
        if prev != new {
            // A delay push on an input net models a late-arriving operand.
            let t0 = overlay.map_or(0, |ov| ov.push(net.index())) as usize;
            schedule(&mut buckets, &mut pending, t0, (net.0, Some(new)));
        }
    }
    if let Some(ov) = overlay {
        for (net, t) in ov.boundary_events() {
            schedule(&mut buckets, &mut pending, t as usize, (net, None));
        }
    }

    let mut settle_time = 0;
    let mut events = 0usize;
    let mut processed = 0usize;
    let mut next_cancel_poll = CHECK_INTERVAL;
    let mut dirty: Vec<u32> = Vec::new();
    let mut dirty_flag = vec![false; n];

    let mut t = 0usize;
    while pending > 0 {
        debug_assert!(t < buckets.len(), "pending events must exist");
        if buckets[t].is_empty() {
            t += 1;
            continue;
        }
        // Apply every event scheduled for time `t`.
        dirty.clear();
        let batch = std::mem::take(&mut buckets[t]);
        pending -= batch.len();
        processed += batch.len();
        if processed > budget {
            crate::obs::with_observer(|o| o.event_unsettled(processed as u64, budget as u64));
            return Err(SimError::Unsettled { events: processed, budget });
        }
        if processed >= next_cancel_poll {
            next_cancel_poll = processed + CHECK_INTERVAL;
            if let Some(tok) = cancel {
                if tok.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
        }
        for (net, val) in batch {
            let idx = net as usize;
            if let Some(v) = val {
                raw[idx] = v;
            }
            let obs = match overlay {
                Some(ov) => ov.observe(idx, Some(t as u64), raw[idx]),
                None => raw[idx],
            };
            if current[idx] != obs {
                current[idx] = obs;
                waveforms[idx].push((t as u64, obs));
                settle_time = settle_time.max(t as u64);
                events += 1;
                for &g in &fanout[idx] {
                    if !dirty_flag[g.index()] {
                        dirty_flag[g.index()] = true;
                        dirty.push(g.0);
                    }
                }
            }
        }
        // Re-evaluate affected gates and schedule their (possibly unchanged)
        // outputs: scheduling equal values cancels stale in-flight events.
        for &g in &dirty {
            dirty_flag[g as usize] = false;
            let gid = NetId(g);
            let kind = netlist.kind(gid);
            debug_assert!(kind.is_logic(), "inputs/constants have no fanin");
            let newv = eval_gate(kind, netlist.gate_inputs(gid), &current);
            let push = overlay.map_or(0, |ov| ov.push(g as usize));
            let d = (delay.gate_delay(kind, gid) + push).max(1) as usize;
            schedule(&mut buckets, &mut pending, t + d, (g, Some(newv)));
        }
    }

    crate::obs::with_observer(|o| o.event_run(events as u64, settle_time));
    Ok(SimResult { initial, waveforms, settle_time, events })
}

/// Simulates the transition from `prev_inputs` (settled before `t = 0`) to
/// `new_inputs` (applied at `t = 0`).
///
/// All internal nets start at their settled value under `prev_inputs` —
/// pass all-`false` as `prev_inputs` for the paper's "all internal signals
/// reset to 0 initially" scenario.
///
/// # Panics
///
/// Panics if either input slice length differs from the netlist's input
/// count, or if the netlist oscillates past [`default_event_budget`] (only
/// possible after [`Netlist::rewire_input`] broke the DAG invariant — use
/// [`simulate_budgeted`] for such netlists).
#[must_use]
pub fn simulate<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
) -> SimResult {
    simulate_budgeted(netlist, delay, prev_inputs, new_inputs, default_event_budget(netlist))
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`simulate`] with an explicit event budget.
///
/// # Errors
///
/// * [`SimError::InputArity`] on input-slice length mismatch;
/// * [`SimError::Unsettled`] if more than `budget` scheduled events are
///   processed before the netlist settles (a combinational cycle created
///   via [`Netlist::rewire_input`], or a budget far too small).
pub fn simulate_budgeted<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
    budget: usize,
) -> Result<SimResult, SimError> {
    simulate_core(netlist, delay, prev_inputs, new_inputs, None, budget, None)
}

/// [`simulate_budgeted`] with a cooperative [`CancelToken`]: the event
/// loop polls the token every [`CHECK_INTERVAL`] processed events and
/// returns [`SimError::Cancelled`] once it is set, so a driver enforcing
/// a wall-clock budget can stop a long settling run instead of waiting
/// for it.
///
/// # Errors
///
/// As for [`simulate_budgeted`], plus [`SimError::Cancelled`] when
/// `cancel` fires before the netlist settles.
pub fn simulate_budgeted_cancellable<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
    budget: usize,
    cancel: &CancelToken,
) -> Result<SimResult, SimError> {
    simulate_core(netlist, delay, prev_inputs, new_inputs, None, budget, Some(cancel))
}

/// Simulates with a [`FaultPlan`] overlay and an event budget.
///
/// The plan transforms the observed value of faulted nets (stuck-at,
/// transient bit-flip windows) and the scheduling delay of pushed gates;
/// the netlist itself is untouched. An empty plan is bit-identical to
/// [`simulate_budgeted`].
///
/// # Errors
///
/// * [`SimError::InvalidFault`] if the plan references nets outside the
///   netlist;
/// * [`SimError::InputArity`] / [`SimError::Unsettled`] as for
///   [`simulate_budgeted`].
pub fn simulate_with_faults<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
    plan: &FaultPlan,
    budget: usize,
) -> Result<SimResult, SimError> {
    plan.validate(netlist)?;
    let overlay = plan.compile(netlist.len());
    simulate_core(netlist, delay, prev_inputs, new_inputs, Some(&overlay), budget, None)
}

/// [`simulate_with_faults`] with a cooperative [`CancelToken`] (see
/// [`simulate_budgeted_cancellable`]).
///
/// # Errors
///
/// As for [`simulate_with_faults`], plus [`SimError::Cancelled`] when
/// `cancel` fires before the netlist settles.
pub fn simulate_with_faults_cancellable<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    prev_inputs: &[bool],
    new_inputs: &[bool],
    plan: &FaultPlan,
    budget: usize,
    cancel: &CancelToken,
) -> Result<SimResult, SimError> {
    plan.validate(netlist)?;
    let overlay = plan.compile(netlist.len());
    simulate_core(netlist, delay, prev_inputs, new_inputs, Some(&overlay), budget, Some(cancel))
}

/// Convenience wrapper: simulate from the all-zero previous input vector
/// (the paper's reset assumption).
#[must_use]
pub fn simulate_from_zero<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    new_inputs: &[bool],
) -> SimResult {
    let zeros = vec![false; netlist.inputs().len()];
    simulate(netlist, delay, &zeros, new_inputs)
}

/// [`simulate_with_faults`] from the all-zero previous input vector.
///
/// # Errors
///
/// As for [`simulate_with_faults`].
pub fn simulate_from_zero_with_faults<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    new_inputs: &[bool],
    plan: &FaultPlan,
    budget: usize,
) -> Result<SimResult, SimError> {
    let zeros = vec![false; netlist.inputs().len()];
    simulate_with_faults(netlist, delay, &zeros, new_inputs, plan, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;

    const U: u64 = UnitDelay::UNIT;

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..n {
            let b = nl.input("b");
            cur = nl.xor(cur, b);
        }
        nl.set_output("z", vec![cur]);
        nl
    }

    #[test]
    fn final_values_match_functional_eval() {
        let nl = xor_chain(5);
        let inputs = [true, false, true, true, false, true];
        let res = simulate_from_zero(&nl, &UnitDelay, &inputs);
        let evald = nl.eval(&inputs);
        let out = nl.output("z")[0];
        assert_eq!(res.final_value(out), evald[out.index()]);
    }

    #[test]
    fn settle_time_tracks_logic_depth() {
        // Flipping the head input of an n-deep xor chain ripples through all
        // n gates: settle time = n * unit delay.
        let nl = xor_chain(6);
        let mut prev = vec![false; 7];
        let mut next = prev.clone();
        next[0] = true;
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        assert_eq!(res.settle_time(), 6 * U);
        // Flipping only the last input touches one gate.
        prev = vec![false; 7];
        let mut next2 = prev.clone();
        next2[6] = true;
        let res2 = simulate(&nl, &UnitDelay, &prev, &next2);
        assert_eq!(res2.settle_time(), U);
    }

    #[test]
    fn early_sampling_reads_stale_values() {
        let nl = xor_chain(4);
        let prev = vec![false; 5];
        let mut next = prev.clone();
        next[0] = true; // output will become 1 after 4 gate delays
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let out = nl.output("z")[0];
        assert!(!res.value_at(out, 0), "before propagation: old value");
        assert!(!res.value_at(out, 4 * U - 1), "one tick early: still old");
        assert!(res.value_at(out, 4 * U), "at arrival: new value");
        assert!(res.final_value(out));
    }

    #[test]
    fn no_input_change_means_no_events() {
        let nl = xor_chain(3);
        let inputs = [true, false, true, false];
        let res = simulate(&nl, &UnitDelay, &inputs, &inputs);
        assert_eq!(res.settle_time(), 0);
        assert_eq!(res.event_count(), 0);
        let out = nl.output("z")[0];
        assert_eq!(res.value_at(out, 0), nl.eval(&inputs)[out.index()]);
    }

    #[test]
    fn glitches_are_recorded() {
        // z = a XOR a' where a' = NOT(NOT(a)): a rising edge causes a glitch
        // on z because the inverter path is slower.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.xor(a, n2);
        nl.set_output("z", vec![z]);
        let res = simulate(&nl, &UnitDelay, &[false], &[true]);
        // a flips at 0; z sees a at U (goes 0^0=0 -> 1^0=1), n2 catches up at
        // 2U, z returns to 0 at 3U.
        assert!(!res.value_at(z, 0));
        assert!(res.value_at(z, U));
        assert!(res.value_at(z, 3 * U - 1));
        assert!(!res.value_at(z, 3 * U));
        assert!(!res.final_value(z));
        assert_eq!(res.waveform(z).len(), 2, "one glitch pulse: up then down");
    }

    #[test]
    fn cancelled_events_do_not_corrupt_state() {
        // Same circuit; verify the settled value equals functional eval for
        // both edges (exercises the schedule-equal-value cancellation path).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let z = nl.and(a, n2);
        nl.set_output("z", vec![z]);
        for (p, q) in [(false, true), (true, false)] {
            let res = simulate(&nl, &UnitDelay, &[p], &[q]);
            assert_eq!(res.final_value(z), nl.eval(&[q])[z.index()]);
        }
    }

    #[test]
    fn sample_bus_orders_like_input() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.not(a);
        let y = nl.not(b);
        nl.set_output("z", vec![x, y]);
        let res = simulate_from_zero(&nl, &UnitDelay, &[true, false]);
        assert_eq!(res.sample_bus(&[x, y], U), vec![false, true]);
        assert_eq!(res.final_bus(&[x, y]), vec![false, true]);
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let nl = xor_chain(5);
        let prev = vec![false; 6];
        let next = vec![true, false, true, true, false, true];
        let clean = simulate(&nl, &UnitDelay, &prev, &next);
        let faulty = simulate_with_faults(
            &nl,
            &UnitDelay,
            &prev,
            &next,
            &FaultPlan::new(),
            default_event_budget(&nl),
        )
        .unwrap();
        for net in nl.nets() {
            assert_eq!(clean.waveform(net), faulty.waveform(net));
            assert_eq!(clean.initial_value(net), faulty.initial_value(net));
        }
        assert_eq!(clean.settle_time(), faulty.settle_time());
        assert_eq!(clean.event_count(), faulty.event_count());
    }

    #[test]
    fn stuck_at_overrides_driver_and_initial_state() {
        let nl = xor_chain(3);
        let out = nl.output("z")[0];
        let plan = FaultPlan::new().stuck_at(out, true);
        // Even with all-zero inputs (fault-free output 0), the stuck net
        // reads 1 from the very start.
        let res =
            simulate_with_faults(&nl, &UnitDelay, &[false; 4], &[false; 4], &plan, 10_000).unwrap();
        assert!(res.initial_value(out));
        assert!(res.final_value(out));
        assert_eq!(res.event_count(), 0, "stuck net never transitions");
    }

    #[test]
    fn stuck_at_propagates_downstream() {
        // z = NOT(m), m = AND(a, b): stuck-at-1 on m forces z low.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.and(a, b);
        let z = nl.not(m);
        nl.set_output("z", vec![z]);
        let plan = FaultPlan::new().stuck_at(m, true);
        let res =
            simulate_with_faults(&nl, &UnitDelay, &[false, false], &[true, false], &plan, 10_000)
                .unwrap();
        assert!(res.initial_value(m) && !res.initial_value(z));
        assert!(!res.final_value(z), "downstream sees the stuck value");
    }

    #[test]
    fn transient_flips_value_inside_window_only() {
        // A single buffer-ish circuit: z = NOT(a), constant input.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let z = nl.not(a);
        nl.set_output("z", vec![z]);
        let plan = FaultPlan::new().transient(z, 5 * U, 2 * U);
        let res = simulate_with_faults(&nl, &UnitDelay, &[false], &[false], &plan, 10_000).unwrap();
        assert!(res.final_value(z), "settled back after the upset");
        assert!(res.value_at(z, 5 * U - 1));
        assert!(!res.value_at(z, 5 * U), "flipped inside the window");
        assert!(!res.value_at(z, 7 * U - 1));
        assert!(res.value_at(z, 7 * U), "recovered at window end");
        assert_eq!(res.event_count(), 2, "one down flank, one up flank");
    }

    #[test]
    fn delay_push_slows_one_gate() {
        let nl = xor_chain(4);
        let out = nl.output("z")[0];
        let prev = vec![false; 5];
        let mut next = prev.clone();
        next[0] = true;
        let clean = simulate(&nl, &UnitDelay, &prev, &next);
        let plan = FaultPlan::new().delay_push(out, 3 * U);
        let slow = simulate_with_faults(&nl, &UnitDelay, &prev, &next, &plan, 100_000).unwrap();
        assert_eq!(slow.settle_time_of(&[out]), clean.settle_time_of(&[out]) + 3 * U);
        assert_eq!(slow.final_value(out), clean.final_value(out));
    }

    #[test]
    fn cyclic_netlist_returns_unsettled() {
        // Gated ring oscillator: n1 = NAND(a, n3), n2 = NOT(n1),
        // n3 = NOT(n2) — built as a DAG, then rewired into a loop. With
        // a = 1 the loop has three inversions and oscillates forever.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.nand(a, a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        nl.set_output("z", vec![n3]);
        nl.rewire_input(n1, 1, n3).unwrap();
        let err = simulate_budgeted(&nl, &UnitDelay, &[false], &[true], 500).unwrap_err();
        assert!(matches!(err, SimError::Unsettled { budget: 500, .. }), "{err}");
        // The faulty path hits the same guard: an SEU kicks the (enabled)
        // ring even without any input edge.
        let plan = FaultPlan::new().transient(n2, 0, U);
        let err2 = simulate_with_faults(&nl, &UnitDelay, &[true], &[true], &plan, 500).unwrap_err();
        assert!(matches!(err2, SimError::Unsettled { .. }), "{err2}");
    }

    #[test]
    fn arity_and_fault_validation_errors_are_typed() {
        let nl = xor_chain(2);
        let err = simulate_budgeted(&nl, &UnitDelay, &[false; 3], &[false; 2], 100).unwrap_err();
        assert!(matches!(err, SimError::InputArity { expected: 3, got: 2 }));
        let plan = FaultPlan::new().stuck_at(NetId(999), false);
        let err = simulate_with_faults(&nl, &UnitDelay, &[false; 3], &[false; 3], &plan, 100)
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::InvalidFault(NetlistError::NetOutOfRange { index: 999, .. })
        ));
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_work() {
        let nl = xor_chain(4);
        let tok = crate::CancelToken::new();
        tok.cancel();
        let err =
            simulate_budgeted_cancellable(&nl, &UnitDelay, &[false; 5], &[true; 5], 1000, &tok)
                .unwrap_err();
        assert_eq!(err, SimError::Cancelled);
        let err2 = simulate_with_faults_cancellable(
            &nl,
            &UnitDelay,
            &[false; 5],
            &[true; 5],
            &FaultPlan::new(),
            1000,
            &tok,
        )
        .unwrap_err();
        assert_eq!(err2, SimError::Cancelled);
    }

    #[test]
    fn live_token_is_bit_identical_to_plain_simulation() {
        let nl = xor_chain(5);
        let prev = vec![false; 6];
        let next = vec![true, false, true, true, false, true];
        let tok = crate::CancelToken::new();
        let plain = simulate(&nl, &UnitDelay, &prev, &next);
        let cancellable = simulate_budgeted_cancellable(
            &nl,
            &UnitDelay,
            &prev,
            &next,
            default_event_budget(&nl),
            &tok,
        )
        .unwrap();
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn oscillating_netlist_stops_on_mid_run_cancellation() {
        // The ring oscillator from `cyclic_netlist_returns_unsettled`, but
        // with a deadline token and a budget large enough that the poll at
        // CHECK_INTERVAL fires first: the run ends Cancelled, not Unsettled.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.nand(a, a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        nl.set_output("z", vec![n3]);
        nl.rewire_input(n1, 1, n3).unwrap();
        let tok = crate::CancelToken::with_deadline(std::time::Duration::from_millis(10));
        assert!(!tok.is_cancelled(), "deadline lies in the future at entry");
        let err =
            simulate_budgeted_cancellable(&nl, &UnitDelay, &[false], &[true], usize::MAX, &tok)
                .unwrap_err();
        assert_eq!(err, SimError::Cancelled);
    }

    #[test]
    fn try_sampling_validates_net_indices() {
        let nl = xor_chain(2);
        let res = simulate_from_zero(&nl, &UnitDelay, &[true, false, true]);
        let out = nl.output("z")[0];
        assert_eq!(res.try_value_at(out, 0).unwrap(), res.value_at(out, 0));
        assert!(res.try_value_at(NetId(500), 0).is_err());
        assert!(res.try_sample_bus(&[out, NetId(500)], 0).is_err());
    }

    #[test]
    fn settle_time_of_bus_subset() {
        let nl = xor_chain(5);
        let prev = vec![false; 6];
        let mut next = prev.clone();
        next[0] = true;
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let out = nl.output("z");
        assert_eq!(res.settle_time_of(out), 5 * U);
        // The first xor settles earlier than the chain output. Nets are
        // created interleaved: a=0, then (b=1, xor=2), (b=3, xor=4), ...
        let first_gate = NetId(2);
        assert_eq!(res.settle_time_of(&[first_gate]), U);
    }
}
