//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a
//! controller (a driver enforcing a wall-clock budget, a Ctrl-C handler)
//! and workers (the event-driven and batch simulation loops, sweep
//! searches, Monte-Carlo folds). The controller calls
//! [`CancelToken::cancel`]; workers poll [`CancelToken::is_cancelled`] at
//! bounded intervals and unwind with a typed error
//! ([`SimError::Cancelled`](crate::SimError::Cancelled),
//! [`BatchError::Cancelled`](crate::BatchError::Cancelled)) instead of
//! running to completion on cores nobody is waiting for.
//!
//! Tokens may carry a deadline ([`CancelToken::with_deadline`]): once the
//! deadline passes, the token reports cancelled without anyone calling
//! [`CancelToken::cancel`] — the polling thread latches the flag itself,
//! so the `Instant` comparison happens at most once per poll site until
//! the latch sticks.
//!
//! Cancellation is *cooperative and lossless*: a worker observing the
//! flag stops at the next check point (every [`CHECK_INTERVAL`] processed
//! events in the event simulator, every [`CHECK_INTERVAL`] nets in the
//! batch engine), never mid-write, so any state it already published
//! (checkpoint frames, completed folds) remains valid.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many units of work (processed events, evaluated nets) a
/// simulation loop may run between cancellation polls. Small enough that
/// cancellation latency is microseconds, large enough that the atomic
/// load is invisible in profiles.
pub const CHECK_INTERVAL: usize = 4096;

/// The typed payload of a cancelled operation.
///
/// Doubles as a panic payload: layers whose signatures are infallible
/// propagate cancellation by `std::panic::panic_any(Cancelled)`, and the
/// guard thread that owns the token downcasts the payload back to this
/// type to distinguish an orderly stop from a genuine panic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation flag with an optional deadline.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same flag.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A fresh token that only cancels when [`CancelToken::cancel`] is
    /// called.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken { inner: Arc::new(Inner { flag: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that self-cancels once `budget` wall-clock time has
    /// elapsed (measured from construction). [`CancelToken::cancel`]
    /// still works for early cancellation.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
            }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline (if
    /// any) has passed. A passed deadline latches the flag, so later
    /// polls skip the clock read.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.flag.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// `Err(Cancelled)` once the token is cancelled — the `?`-friendly
    /// form of [`CancelToken::is_cancelled`].
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token is cancelled.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live_and_cancel_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(t.check().is_ok());
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
        assert_eq!(clone.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_latches_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "zero budget is immediately expired");
        let slow = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!slow.is_cancelled());
    }

    #[test]
    fn cancelled_displays_and_errors() {
        assert_eq!(Cancelled.to_string(), "operation cancelled");
        let e: Box<dyn std::error::Error> = Box::new(Cancelled);
        assert!(e.to_string().contains("cancelled"));
    }
}
