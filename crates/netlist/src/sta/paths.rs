//! Top-K critical-path enumeration with named endpoints.
//!
//! A single scalar critical path says *how slow* a netlist is; the ranked
//! path list says *why*: which output digit the deep logic terminates in,
//! and which gate chain builds the depth. For online operators the ranked
//! list makes the paper's structural claim inspectable — the longest
//! chains all end in the least-significant output digits.
//!
//! The enumeration is exact: a per-net dynamic program keeps the `K`
//! longest suffix-disjoint path delays (with predecessor links), merged in
//! topological order, so reconstruction is a simple backward walk.

use super::arrival::check_topological;
use crate::{DelayModel, GateKind, NetId, Netlist, StaError};

/// One gate (or source net) on a reported path, in source→endpoint order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// The net/gate.
    pub net: NetId,
    /// Its gate kind (sources report [`GateKind::Input`] /
    /// [`GateKind::Const`]).
    pub kind: GateKind,
    /// The gate's own delay contribution.
    pub delay: u64,
    /// Cumulative delay after this step along *this* path (not the net's
    /// global worst-case arrival).
    pub path_arrival: u64,
}

/// A ranked critical path ending at a named output-bus bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Endpoint net (a member of an output bus).
    pub endpoint: NetId,
    /// `bus[bit]` label of the endpoint (first bus containing the net, in
    /// bus-name order).
    pub endpoint_label: String,
    /// Total path delay.
    pub delay: u64,
    /// Source→endpoint gate chain.
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// Number of logic gates on the path.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.steps.iter().filter(|s| s.kind.is_logic()).count()
    }

    /// A compact one-line rendering: `src → Kind → … = delay` (long chains
    /// keep every step; callers can truncate for terminals).
    #[must_use]
    pub fn render(&self) -> String {
        let chain: Vec<String> =
            self.steps.iter().map(|s| format!("{:?}{:?}", s.kind, s.net)).collect();
        format!("{} = {} via {}", self.endpoint_label, self.delay, chain.join(" > "))
    }
}

/// Per-net top-K entry: best path delay into this net and the predecessor
/// `(input net, rank within that input's list)` that produced it.
#[derive(Clone, Copy, Debug)]
struct Cand {
    delay: u64,
    pred: Option<(NetId, usize)>,
}

/// Enumerates the `k` longest structural paths ending at output-bus nets,
/// globally ranked by total delay (ties broken by endpoint id then rank,
/// so the order is deterministic).
///
/// # Errors
///
/// [`StaError::NotTopological`] if the netlist was rewired out of
/// topological order (path enumeration on a cyclic graph is unbounded).
pub fn critical_paths<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    k: usize,
) -> Result<Vec<CriticalPath>, StaError> {
    check_topological(netlist)?;
    if k == 0 || netlist.is_empty() {
        return Ok(Vec::new());
    }

    // Forward DP: per net, the top-k path delays with predecessor links.
    let mut tops: Vec<Vec<Cand>> = Vec::with_capacity(netlist.len());
    for net in netlist.nets() {
        let kind = netlist.kind(net);
        if !kind.is_logic() {
            tops.push(vec![Cand { delay: 0, pred: None }]);
            continue;
        }
        let d = delay.gate_delay(kind, net);
        let mut merged: Vec<Cand> = Vec::new();
        for &inp in netlist.gate_inputs(net) {
            for (rank, c) in tops[inp.index()].iter().enumerate() {
                merged.push(Cand { delay: c.delay + d, pred: Some((inp, rank)) });
            }
        }
        // Deterministic order: delay desc, then predecessor net asc.
        merged.sort_by(|a, b| {
            b.delay.cmp(&a.delay).then_with(|| a.pred.map(|p| p.0).cmp(&b.pred.map(|p| p.0)))
        });
        merged.truncate(k);
        tops.push(merged);
    }

    // Endpoint labels: first bus (bus-name order) containing each net.
    let mut label: Vec<Option<String>> = vec![None; netlist.len()];
    for (bus, nets) in netlist.outputs() {
        for (bit, &net) in nets.iter().enumerate() {
            let slot = &mut label[net.index()];
            if slot.is_none() {
                *slot = Some(format!("{bus}[{bit}]"));
            }
        }
    }

    // Global ranking across all endpoints.
    let mut ranked: Vec<(u64, NetId, usize)> = Vec::new();
    for net in netlist.nets() {
        if label[net.index()].is_none() {
            continue;
        }
        for (rank, c) in tops[net.index()].iter().enumerate() {
            ranked.push((c.delay, net, rank));
        }
    }
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)).then_with(|| a.2.cmp(&b.2)));
    ranked.truncate(k);

    let mut out = Vec::with_capacity(ranked.len());
    for (total, endpoint, mut rank) in ranked {
        // Backward walk endpoint → source, then reverse.
        let mut rev: Vec<(NetId, u64)> = Vec::new();
        let mut net = endpoint;
        loop {
            let c = tops[net.index()][rank];
            rev.push((net, c.delay));
            match c.pred {
                Some((p, r)) => {
                    net = p;
                    rank = r;
                }
                None => break,
            }
        }
        rev.reverse();
        let steps = rev
            .into_iter()
            .map(|(n, path_arrival)| {
                let kind = netlist.kind(n);
                PathStep { net: n, kind, delay: delay.gate_delay(kind, n), path_arrival }
            })
            .collect();
        out.push(CriticalPath {
            endpoint,
            endpoint_label: label[endpoint.index()].clone().expect("ranked nets are labelled"),
            delay: total,
            steps,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, UnitDelay};

    const U: u64 = UnitDelay::UNIT;

    #[test]
    fn single_chain_reports_one_path() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        let c = nl.not(b);
        nl.set_output("z", vec![c]);
        let paths = critical_paths(&nl, &UnitDelay, 4).unwrap();
        // k=4 requested but only 1 simple path exists into z.
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.delay, 2 * U);
        assert_eq!(p.endpoint, c);
        assert_eq!(p.endpoint_label, "z[0]");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.steps.len(), 3, "source + 2 gates");
        assert_eq!(p.steps[0].net, a);
        assert_eq!(p.steps[0].path_arrival, 0);
        assert_eq!(p.steps[2].path_arrival, 2 * U);
        assert!(p.render().contains("z[0]"));
    }

    #[test]
    fn top_k_ranks_reconvergent_paths() {
        // Two paths into z: deep (3 gates) and shallow (1 gate).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let d1 = nl.not(a);
        let d2 = nl.not(d1);
        let z = nl.and(a, d2);
        nl.set_output("z", vec![z]);
        let paths = critical_paths(&nl, &UnitDelay, 2).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].delay, 3 * U, "deep path first");
        assert_eq!(paths[1].delay, U, "direct a→z path second");
        assert!(paths[0].delay >= paths[1].delay);
        // Rank-1 path delay must equal the analyze() critical path.
        assert_eq!(paths[0].delay, analyze(&nl, &UnitDelay).critical_path());
    }

    #[test]
    fn endpoints_span_buses() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let s = nl.not(a);
        let t = nl.not(s);
        nl.set_output("fast", vec![s]);
        nl.set_output("slow", vec![t]);
        let paths = critical_paths(&nl, &UnitDelay, 10).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].endpoint_label, "slow[0]");
        assert_eq!(paths[1].endpoint_label, "fast[0]");
    }

    #[test]
    fn k_zero_and_cycles_are_handled() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.set_output("z", vec![n2]);
        assert!(critical_paths(&nl, &UnitDelay, 0).unwrap().is_empty());
        nl.rewire_input(n1, 0, n2).unwrap();
        assert!(matches!(critical_paths(&nl, &UnitDelay, 3), Err(StaError::NotTopological { .. })));
    }
}
