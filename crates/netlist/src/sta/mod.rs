//! Static timing & structural analysis.
//!
//! The dynamic half of this crate ([`simulate`](crate::simulate),
//! [`batch`](crate::batch)) answers *what happens* when a netlist is
//! clocked at a period `Ts`; this module answers *what must happen*, by
//! structure alone:
//!
//! * [`arrival`] — forward worst-case arrival times ([`analyze`] /
//!   [`try_analyze`]): the "rated" timing a synthesis tool would report;
//! * [`slack`] — backward required-time propagation: per-net headroom (or
//!   deficit) against a target period;
//! * [`paths`] — top-K critical-path enumeration with named output-bus
//!   endpoints: *which* digit the deep logic terminates in, gate by gate;
//! * [`certify`] — per-digit settlement certification over a `Ts` grid,
//!   with the analytic error bound `Σ_{at-risk k} w_k` that must dominate
//!   every empirical error curve;
//! * [`lint`] — structural defect detection (combinational loops found
//!   statically, dead cones, constant-foldable gates, …) and
//!   [`prune_dead`], which ships generated datapaths lint-clean.
//!
//! All timing analyses require the DAG-by-construction invariant and
//! return [`StaError::NotTopological`](crate::StaError::NotTopological)
//! when [`Netlist::rewire_input`](crate::Netlist::rewire_input) broke it;
//! the lint pass is the one analysis that accepts *any* netlist, because
//! diagnosing that breakage is its job.

pub mod arrival;
pub mod certify;
pub mod lint;
pub mod paths;
pub mod slack;

pub use arrival::{analyze, check_topological, try_analyze, TimingReport};
pub use certify::{certify, CertificationReport, DigitStatus};
pub use lint::{prune_dead, LintIssue, LintOptions};
pub use paths::{critical_paths, CriticalPath, PathStep};
pub use slack::{analyze_slack, slack_from_arrival, SlackReport};
