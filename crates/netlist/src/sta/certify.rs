//! Per-digit settlement certification over a `Ts` grid.
//!
//! The paper's overclocking argument (Fig. 4/5) is empirical — sweep `Ts`,
//! measure error. This module is the *static* counterpart: for each output
//! digit, compare its worst-case arrival time (under a delay model) against
//! each candidate period. A digit whose arrival is `≤ Ts` is **certified**:
//! no input pattern can make it sample a non-settled value, so simulation
//! at that `(digit, Ts)` point is provably redundant. The remaining
//! *at-risk* digits yield an analytic error-magnitude upper bound
//! `Σ_{at-risk k} w_k` (the caller supplies the per-digit weights `w_k`,
//! e.g. `2·r^{-k}` for a redundant radix-`r` bus), which must upper-bound
//! every empirical error curve — a machine-checked bridge between the
//! static and dynamic halves of the repo.

use super::arrival::try_analyze;
use crate::{DelayModel, NetId, Netlist, StaError};

/// Static verdict for one `(digit, Ts)` point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DigitStatus {
    /// Worst-case arrival ≤ `Ts`: the sampled value provably equals the
    /// settled value for *every* input pattern. Simulation may be skipped.
    Certified,
    /// Worst-case arrival > `Ts`: some structural path misses the period,
    /// so the digit may (but need not) sample a stale value.
    AtRisk,
}

/// Certification of every output digit against a grid of target periods.
///
/// Produced by [`certify`]; rows are `Ts` grid points (in the caller's
/// order), columns are digits (in the caller's order).
#[derive(Clone, Debug)]
pub struct CertificationReport {
    ts: Vec<u64>,
    /// Worst-case arrival per digit (max over the digit's nets).
    arrival: Vec<u64>,
}

impl CertificationReport {
    /// Rebuilds a report from its `Ts` grid and per-digit worst-case
    /// arrivals — the inverse of ([`CertificationReport::ts_grid`],
    /// [`CertificationReport::arrivals`]), used by memoization layers that
    /// persist the arrival table keyed by netlist digest. The caller is
    /// responsible for the arrivals actually belonging to the netlist the
    /// key claims (a content-addressed store makes that sound).
    #[must_use]
    pub fn from_parts(ts: Vec<u64>, arrival: Vec<u64>) -> CertificationReport {
        CertificationReport { ts, arrival }
    }

    /// Worst-case arrival per digit, in digit order — the entire
    /// netlist-dependent content of the report (everything else derives
    /// from these and the grid).
    #[must_use]
    pub fn arrivals(&self) -> &[u64] {
        &self.arrival
    }

    /// The `Ts` grid the report was computed against, in caller order.
    #[must_use]
    pub fn ts_grid(&self) -> &[u64] {
        &self.ts
    }

    /// Number of digits covered by the report.
    #[must_use]
    pub fn digits(&self) -> usize {
        self.arrival.len()
    }

    /// Worst-case arrival of digit `digit` (max over its nets) — the
    /// smallest period at which the digit is certified.
    #[must_use]
    pub fn digit_arrival(&self, digit: usize) -> u64 {
        self.arrival[digit]
    }

    /// Static verdict for grid point `ts_index` and digit `digit`.
    #[must_use]
    pub fn status(&self, ts_index: usize, digit: usize) -> DigitStatus {
        if self.arrival[digit] <= self.ts[ts_index] {
            DigitStatus::Certified
        } else {
            DigitStatus::AtRisk
        }
    }

    /// Number of certified digits at grid point `ts_index`.
    #[must_use]
    pub fn certified_count(&self, ts_index: usize) -> usize {
        let ts = self.ts[ts_index];
        self.arrival.iter().filter(|&&a| a <= ts).count()
    }

    /// True when every digit is certified at grid point `ts_index` — the
    /// whole bus provably settles, so a sweep can skip simulation at this
    /// period entirely.
    #[must_use]
    pub fn all_certified(&self, ts_index: usize) -> bool {
        self.certified_count(ts_index) == self.digits()
    }

    /// Indices of the at-risk digits at grid point `ts_index`, ascending.
    #[must_use]
    pub fn at_risk(&self, ts_index: usize) -> Vec<usize> {
        let ts = self.ts[ts_index];
        (0..self.arrival.len()).filter(|&k| self.arrival[k] > ts).collect()
    }

    /// Analytic error-magnitude upper bound at grid point `ts_index`:
    /// `Σ_{at-risk k} weights[k]`. The caller supplies the worst-case
    /// magnitude contribution of each digit (for a redundant radix-`r`
    /// digit of weight `r^{-k}` that is `2·r^{-k}`: the sampled and settled
    /// digits can differ by at most the full digit range).
    ///
    /// Certified digits contribute exactly zero — that is the theorem this
    /// report encodes.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from [`CertificationReport::digits`].
    #[must_use]
    pub fn error_bound(&self, ts_index: usize, weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.arrival.len(), "one weight per certified digit required");
        let ts = self.ts[ts_index];
        self.arrival.iter().zip(weights).filter(|(&a, _)| a > ts).map(|(_, &w)| w).sum()
    }
}

/// Certifies each digit of an output bus (given as groups of nets — e.g. a
/// borrow-save digit is its `{plus, minus}` bit pair) against every period
/// in `ts_grid`, under the worst-case structural arrivals of `delay`.
///
/// # Errors
///
/// [`StaError::NotTopological`] if the netlist was rewired out of
/// topological order (structural arrivals would be untrustworthy).
///
/// # Panics
///
/// Panics if a digit references a net outside `netlist`.
pub fn certify<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    digits: &[Vec<NetId>],
    ts_grid: &[u64],
) -> Result<CertificationReport, StaError> {
    let report = try_analyze(netlist, delay)?;
    let arrival = digits.iter().map(|nets| report.arrival_of(nets)).collect();
    Ok(CertificationReport { ts: ts_grid.to_vec(), arrival })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;

    const U: u64 = UnitDelay::UNIT;

    /// Two output digits: digit 0 shallow (1 gate), digit 1 deep (3 gates).
    fn two_digit_netlist() -> (Netlist, Vec<Vec<NetId>>) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let shallow = nl.not(a);
        let d1 = nl.not(a);
        let d2 = nl.not(d1);
        let deep = nl.not(d2);
        nl.set_output("z", vec![shallow, deep]);
        (nl, vec![vec![shallow], vec![deep]])
    }

    #[test]
    fn statuses_follow_arrivals() {
        let (nl, digits) = two_digit_netlist();
        let ts = [0, U, 2 * U, 3 * U];
        let rep = certify(&nl, &UnitDelay, &digits, &ts).unwrap();
        assert_eq!(rep.digits(), 2);
        assert_eq!(rep.ts_grid(), &ts);
        assert_eq!(rep.digit_arrival(0), U);
        assert_eq!(rep.digit_arrival(1), 3 * U);
        // Ts = 0: nothing certified.
        assert_eq!(rep.status(0, 0), DigitStatus::AtRisk);
        assert_eq!(rep.certified_count(0), 0);
        assert_eq!(rep.at_risk(0), vec![0, 1]);
        // Ts = U: the shallow digit is exactly on time.
        assert_eq!(rep.status(1, 0), DigitStatus::Certified);
        assert_eq!(rep.status(1, 1), DigitStatus::AtRisk);
        assert_eq!(rep.at_risk(1), vec![1]);
        // Ts = 3U: everything settles.
        assert!(rep.all_certified(3));
        assert!(!rep.all_certified(2));
    }

    #[test]
    fn error_bound_sums_at_risk_weights() {
        let (nl, digits) = two_digit_netlist();
        let rep = certify(&nl, &UnitDelay, &digits, &[0, U, 3 * U]).unwrap();
        let weights = [1.0, 0.25];
        assert!((rep.error_bound(0, &weights) - 1.25).abs() < 1e-12);
        assert!((rep.error_bound(1, &weights) - 0.25).abs() < 1e-12);
        assert_eq!(rep.error_bound(2, &weights), 0.0, "all certified: zero bound");
    }

    #[test]
    #[should_panic(expected = "one weight per certified digit")]
    fn error_bound_checks_weight_arity() {
        let (nl, digits) = two_digit_netlist();
        let rep = certify(&nl, &UnitDelay, &digits, &[U]).unwrap();
        let _ = rep.error_bound(0, &[1.0]);
    }

    #[test]
    fn multi_net_digits_take_the_worst_arrival() {
        // A borrow-save-style digit: {plus, minus} with different depths.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let plus = nl.not(a);
        let m1 = nl.not(plus);
        let minus = nl.not(m1);
        nl.set_output("z", vec![plus, minus]);
        let rep = certify(&nl, &UnitDelay, &[vec![plus, minus]], &[U, 3 * U]).unwrap();
        assert_eq!(rep.digit_arrival(0), 3 * U, "digit settles when its last bit does");
        assert_eq!(rep.status(0, 0), DigitStatus::AtRisk);
        assert_eq!(rep.status(1, 0), DigitStatus::Certified);
    }

    #[test]
    fn rewired_netlists_are_rejected() {
        let (mut nl, digits) = two_digit_netlist();
        let g = nl.net(2);
        let later = nl.net(4);
        nl.rewire_input(g, 0, later).unwrap();
        assert!(matches!(
            certify(&nl, &UnitDelay, &digits, &[U]),
            Err(StaError::NotTopological { .. })
        ));
    }
}
