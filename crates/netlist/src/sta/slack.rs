//! Backward required-time propagation: per-net slack at a target period.
//!
//! The forward pass ([`super::analyze`]) answers *when does each net
//! settle, worst case?*; this backward pass answers the dual question —
//! *how late may each net settle for every output to still be captured
//! correctly at period `Ts`?* The difference is **slack**: positive slack
//! is timing headroom, negative slack names exactly the nets a given
//! overclock `Ts` puts at risk. Per-output-digit slack is what turns the
//! paper's Fig. 3 argument (online datapaths route their deep chains into
//! the least-significant digits) into a machine-checked artifact.

use super::arrival::{try_analyze, TimingReport};
use crate::{DelayModel, NetId, Netlist, StaError};

/// Per-net slack against a target clock period.
#[derive(Clone, Debug)]
pub struct SlackReport {
    period: u64,
    arrival: Vec<u64>,
    /// Latest permissible arrival per net; `None` for nets that feed no
    /// output (their timing is unconstrained).
    required: Vec<Option<u64>>,
}

impl SlackReport {
    /// The target clock period the report was computed against.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Worst-case arrival of one net (as in [`TimingReport::arrival`]).
    #[must_use]
    pub fn arrival(&self, net: NetId) -> u64 {
        self.arrival[net.index()]
    }

    /// Latest arrival of `net` for which every downstream output is still
    /// captured correctly at the target period, or `None` when the net
    /// feeds no output.
    ///
    /// `required` may be "negative" conceptually (a path deeper than the
    /// period); it is clamped at 0, with the deficit visible via
    /// [`SlackReport::slack`].
    #[must_use]
    pub fn required(&self, net: NetId) -> Option<u64> {
        self.required[net.index()]
    }

    /// Slack of one net: `required − arrival`. Negative slack means the
    /// worst-case path through this net misses the period. `None` for
    /// nets that feed no output.
    #[must_use]
    pub fn slack(&self, net: NetId) -> Option<i64> {
        self.required[net.index()].map(|r| r as i64 - self.arrival[net.index()] as i64)
    }

    /// Worst slack over a bus (`None` if no bus net is constrained).
    #[must_use]
    pub fn slack_of(&self, nets: &[NetId]) -> Option<i64> {
        nets.iter().filter_map(|&n| self.slack(n)).min()
    }

    /// The minimum slack over all constrained nets, with one witness net —
    /// the start of a worst path. `None` on a netlist with no constrained
    /// nets.
    #[must_use]
    pub fn worst(&self) -> Option<(NetId, i64)> {
        (0..self.required.len())
            .filter_map(|i| {
                let net = NetId::from_index(i);
                self.slack(net).map(|s| (net, s))
            })
            .min_by_key(|&(net, s)| (s, net))
    }

    /// All constrained nets with slack strictly below `threshold`, in net
    /// order — the cone a given overclock actually endangers.
    #[must_use]
    pub fn nets_below(&self, threshold: i64) -> Vec<NetId> {
        (0..self.required.len())
            .map(NetId::from_index)
            .filter(|&n| self.slack(n).is_some_and(|s| s < threshold))
            .collect()
    }
}

/// Computes per-net slack against `period`: a forward arrival pass
/// followed by a backward required-time pass from every output-bus net.
///
/// # Errors
///
/// [`StaError::NotTopological`] if the netlist was rewired out of
/// topological order (the backward pass would be unsound).
pub fn analyze_slack<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    period: u64,
) -> Result<SlackReport, StaError> {
    let report = try_analyze(netlist, delay)?;
    Ok(slack_from_arrival(netlist, delay, &report, period))
}

/// The backward pass alone, reusing an existing forward [`TimingReport`]
/// (useful when sweeping several periods: arrivals do not depend on the
/// period). The report must come from the same `(netlist, delay)` pair.
#[must_use]
pub fn slack_from_arrival<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    report: &TimingReport,
    period: u64,
) -> SlackReport {
    let n = netlist.len();
    let mut required: Vec<Option<u64>> = vec![None; n];
    for (_, nets) in netlist.outputs() {
        for &net in nets {
            required[net.index()] = Some(period);
        }
    }
    // Reverse net order is reverse topological order for DAG netlists.
    for i in (0..n).rev() {
        let net = NetId::from_index(i);
        let kind = netlist.kind(net);
        if !kind.is_logic() {
            continue;
        }
        let Some(r) = required[i] else { continue };
        let d = delay.gate_delay(kind, net);
        // The gate consumes `d` of its consumers' budget; clamp at zero so
        // required times stay in u64 (the deficit shows up as negative
        // slack at the endpoint itself).
        let r_in = r.saturating_sub(d);
        for inp in netlist.gate_inputs(net) {
            let slot = &mut required[inp.index()];
            *slot = Some(slot.map_or(r_in, |cur| cur.min(r_in)));
        }
    }
    SlackReport { period, arrival: report.arrivals().to_vec(), required }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;

    const U: u64 = UnitDelay::UNIT;

    /// a → not → not → z, plus a side tap after the first inverter.
    fn chain() -> (Netlist, NetId, NetId, NetId) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.set_output("z", vec![n2]);
        (nl, a, n1, n2)
    }

    #[test]
    fn slack_is_period_minus_depth_on_a_chain() {
        let (nl, a, n1, n2) = chain();
        let rep = analyze_slack(&nl, &UnitDelay, 5 * U).unwrap();
        assert_eq!(rep.period(), 5 * U);
        // Endpoint: required = 5U, arrival = 2U → slack 3U.
        assert_eq!(rep.slack(n2), Some(3 * U as i64));
        // One gate upstream: required 4U, arrival U.
        assert_eq!(rep.required(n1), Some(4 * U));
        assert_eq!(rep.slack(n1), Some(3 * U as i64));
        // The input inherits the whole downstream budget.
        assert_eq!(rep.slack(a), Some(3 * U as i64));
        assert_eq!(rep.worst(), Some((a, 3 * U as i64)));
    }

    #[test]
    fn negative_slack_under_overclocking() {
        let (nl, _a, n1, n2) = chain();
        let rep = analyze_slack(&nl, &UnitDelay, U).unwrap();
        assert_eq!(rep.slack(n2), Some(-(U as i64)), "2U path at period U: 1U short");
        // n1 (required 0, arrival U) and n2 miss; the input itself still
        // arrives at its (clamped) required time 0.
        assert_eq!(rep.nets_below(0), vec![n1, n2]);
        assert!(rep.slack_of(&[n1, n2]).unwrap() < 0);
    }

    #[test]
    fn unconstrained_nets_have_no_slack() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let used = nl.not(a);
        let dangling = nl.not(a);
        let z = nl.not(used);
        nl.set_output("z", vec![z]);
        let rep = analyze_slack(&nl, &UnitDelay, 10 * U).unwrap();
        assert_eq!(rep.slack(dangling), None, "feeds no output");
        assert!(rep.slack(used).is_some());
        assert!(rep.required(dangling).is_none());
    }

    #[test]
    fn reconvergence_takes_the_tightest_required_time() {
        // a feeds both a deep path and a shallow path into the output.
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let d1 = nl.not(a);
        let d2 = nl.not(d1);
        let d3 = nl.not(d2);
        let z = nl.and(a, d3);
        nl.set_output("z", vec![z]);
        let rep = analyze_slack(&nl, &UnitDelay, 4 * U).unwrap();
        // Through the deep branch a must arrive by 4U − 4 gates = 0.
        assert_eq!(rep.required(a), Some(0));
        assert_eq!(rep.slack(a), Some(0));
        assert_eq!(rep.slack(z), Some(0), "critical at exactly the period");
    }

    #[test]
    fn rewired_netlists_are_rejected() {
        let (mut nl, _a, n1, n2) = chain();
        nl.rewire_input(n1, 0, n2).unwrap();
        assert_eq!(
            analyze_slack(&nl, &UnitDelay, U).unwrap_err(),
            StaError::NotTopological { net: n1 }
        );
    }
}
