//! Structural netlist lint: static detection of combinational loops
//! (including provably non-settling inverting feedback), dead logic,
//! under-driven output ports, constant-foldable gates and suspicious
//! fanout.
//!
//! Today a combinational cycle is only caught *dynamically* — the
//! event-driven simulator burns its event budget and reports
//! [`SimError::Unsettled`](crate::SimError::Unsettled). The lint pass finds
//! the same loop *statically* (and names the nets on it), alongside the
//! quieter structural defects a generator can accumulate: floating nets,
//! whole dead cones that feed no output, gates fed entirely by constants,
//! and nets whose fanout is suspicious for a gate-level design.
//!
//! [`prune_dead`] is the companion transform: it rebuilds a netlist
//! keeping only the live cone (and every primary input, to preserve the
//! evaluation interface), so generated datapaths can be shipped lint-clean.

use super::arrival::check_topological;
use crate::{GateKind, NetId, Netlist, StaError};
use std::fmt;

/// One structural defect found by [`check`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LintIssue {
    /// A combinational cycle: each net reads the previous one, and the
    /// first reads the last. Event-driven simulation of this netlist can
    /// oscillate forever; every single-pass analysis is unsound.
    CombinationalLoop {
        /// The nets on the cycle, in dataflow order.
        cycle: Vec<NetId>,
    },
    /// A combinational cycle whose polarity around the loop is inverting
    /// no matter what the off-cycle inputs hold — the shape of an online
    /// digit-recurrence wired back into its *own* digit slot instead of
    /// the next one. Unlike an even-polarity loop (which can latch into a
    /// stable state), a sensitized inverting loop has no fixed point at
    /// all: event-driven simulation oscillates until the event budget
    /// trips [`SimError::Unsettled`](crate::SimError::Unsettled).
    ///
    /// Reported *in addition to* the loop's [`CombinationalLoop`] entry.
    ///
    /// [`CombinationalLoop`]: LintIssue::CombinationalLoop
    NonSettlingFeedback {
        /// The nets on the inverting cycle, in dataflow order.
        cycle: Vec<NetId>,
    },
    /// A gate reads a net created at or after itself without closing a
    /// cycle. Harmless to the event-driven simulator but rejected by every
    /// single-pass analysis ([`StaError::NotTopological`]).
    BackReference {
        /// The gate holding the back-reference.
        gate: NetId,
        /// The later-created net it reads.
        src: NetId,
    },
    /// The netlist declares no output nets, so every gate is dead and
    /// nothing constrains timing.
    NoOutputs,
    /// An output bus that declares more bits than it actually drives:
    /// the same *logic* net appears at more than one bus position, or the
    /// bus is empty. Shared constant bits are exempt — constants are
    /// deduplicated per polarity by construction
    /// ([`Netlist::constant`](crate::Netlist::constant)), so repeating a
    /// constant net is the normal way to zero-pad a port, while repeating
    /// a computed net means the generator declared a wider port than it
    /// synthesized.
    OutputWidthMismatch {
        /// The output bus name.
        bus: String,
        /// The declared port width (bus positions).
        declared: usize,
        /// Positions backed by a distinct driver (constants always count).
        driven: usize,
    },
    /// A primary input that no gate reads and no output exposes.
    UnusedInput {
        /// The unused input net.
        net: NetId,
    },
    /// A logic gate whose result no gate reads and no output exposes.
    FloatingNet {
        /// The floating net.
        net: NetId,
    },
    /// Logic that cannot reach any output net — simulated work that can
    /// never be observed. [`prune_dead`] removes exactly this set.
    DeadCone {
        /// Every dead logic net, ascending.
        nets: Vec<NetId>,
    },
    /// A logic gate with at least one constant input — synthesis would
    /// have folded it ([`Netlist::and`] and friends do; raw
    /// [`Netlist::try_gate`] does not).
    ConstantFoldable {
        /// The foldable gate.
        net: NetId,
        /// The gate's settled value when *all* inputs are constant, or
        /// `None` when only part of the fanin is constant.
        value: Option<bool>,
    },
    /// A net read by more gates than the configured limit — in a
    /// gate-level model usually a generator bug rather than a real design.
    HighFanout {
        /// The heavily-loaded net.
        net: NetId,
        /// Its observed fanout.
        fanout: u32,
        /// The configured limit it exceeded.
        limit: u32,
    },
}

impl LintIssue {
    /// A stable short code for machine consumption (CSV columns, CI greps).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            LintIssue::CombinationalLoop { .. } => "comb-loop",
            LintIssue::NonSettlingFeedback { .. } => "non-settling-feedback",
            LintIssue::BackReference { .. } => "back-reference",
            LintIssue::NoOutputs => "no-outputs",
            LintIssue::OutputWidthMismatch { .. } => "output-width-mismatch",
            LintIssue::UnusedInput { .. } => "unused-input",
            LintIssue::FloatingNet { .. } => "floating-net",
            LintIssue::DeadCone { .. } => "dead-cone",
            LintIssue::ConstantFoldable { .. } => "const-foldable",
            LintIssue::HighFanout { .. } => "high-fanout",
        }
    }
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintIssue::CombinationalLoop { cycle } => {
                write!(f, "combinational loop through {} net(s): {cycle:?}", cycle.len())
            }
            LintIssue::NonSettlingFeedback { cycle } => {
                write!(
                    f,
                    "inverting feedback through {} net(s) can never settle: {cycle:?}",
                    cycle.len()
                )
            }
            LintIssue::BackReference { gate, src } => {
                write!(f, "gate {gate:?} reads later-created net {src:?} (no cycle)")
            }
            LintIssue::NoOutputs => write!(f, "netlist declares no output nets"),
            LintIssue::OutputWidthMismatch { bus, declared, driven } => {
                if *declared == 0 {
                    write!(f, "output bus {bus:?} declares no bits")
                } else {
                    write!(
                        f,
                        "output bus {bus:?} declares {declared} bit(s) but only {driven} are distinctly driven (a logic net repeats)"
                    )
                }
            }
            LintIssue::UnusedInput { net } => write!(f, "primary input {net:?} is never read"),
            LintIssue::FloatingNet { net } => {
                write!(f, "net {net:?} drives nothing and is not an output")
            }
            LintIssue::DeadCone { nets } => {
                write!(f, "{} logic net(s) cannot reach any output", nets.len())
            }
            LintIssue::ConstantFoldable { net, value } => match value {
                Some(v) => write!(f, "gate {net:?} is constant-valued ({v})"),
                None => write!(f, "gate {net:?} has a constant input and could fold"),
            },
            LintIssue::HighFanout { net, fanout, limit } => {
                write!(f, "net {net:?} fans out to {fanout} gates (limit {limit})")
            }
        }
    }
}

/// Tunables for [`check_with`].
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Fanout above this is reported as [`LintIssue::HighFanout`]. The
    /// default (512) sits far above anything the workspace generators
    /// produce (their broadcast nets reach `2N` readers).
    pub fanout_limit: u32,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { fanout_limit: 512 }
    }
}

/// Runs the full lint catalogue with default [`LintOptions`].
///
/// Unlike the timing analyses this never fails: a netlist rewired out of
/// topological order is precisely what the loop/back-reference lints are
/// for. An empty issue list means the netlist is lint-clean.
#[must_use]
pub fn check(netlist: &Netlist) -> Vec<LintIssue> {
    check_with(netlist, &LintOptions::default())
}

/// Runs the full lint catalogue with explicit [`LintOptions`]. Issues are
/// reported in a deterministic order: topology violations first (by gate
/// id), then output/liveness defects, then local gate defects.
#[must_use]
pub fn check_with(netlist: &Netlist, opts: &LintOptions) -> Vec<LintIssue> {
    let n = netlist.len();
    let mut issues = Vec::new();

    // --- Topology: back-edges, classified into loops vs. mere refs. ---
    let mut fanout_lists: Option<Vec<Vec<NetId>>> = None;
    for gate in netlist.nets() {
        if !netlist.kind(gate).is_logic() {
            continue;
        }
        for &src in netlist.gate_inputs(gate) {
            if src.index() < gate.index() {
                continue;
            }
            let lists = fanout_lists.get_or_insert_with(|| netlist.fanout_lists());
            match trace_cycle(gate, src, lists, n) {
                Some(cycle) => {
                    let inverting = cycle_polarity(netlist, &cycle) == Some(true);
                    issues.push(LintIssue::CombinationalLoop { cycle: cycle.clone() });
                    if inverting {
                        issues.push(LintIssue::NonSettlingFeedback { cycle });
                    }
                }
                None => issues.push(LintIssue::BackReference { gate, src }),
            }
        }
    }

    // --- Liveness. ---
    let mut is_output = vec![false; n];
    let mut any_output = false;
    for (_, nets) in netlist.outputs() {
        for net in nets {
            is_output[net.index()] = true;
            any_output = true;
        }
    }
    if !any_output {
        issues.push(LintIssue::NoOutputs);
    }
    for (bus, nets) in netlist.outputs() {
        let mut seen = vec![false; n];
        let mut driven = 0usize;
        for &net in nets {
            let dup = std::mem::replace(&mut seen[net.index()], true);
            if !dup || netlist.kind(net) == GateKind::Const {
                driven += 1;
            }
        }
        if nets.is_empty() || driven != nets.len() {
            issues.push(LintIssue::OutputWidthMismatch {
                bus: bus.to_string(),
                declared: nets.len(),
                driven,
            });
        }
    }
    let live = live_set(netlist, &is_output);
    let fanout = netlist.fanout_counts();

    for net in netlist.nets() {
        if netlist.kind(net) == GateKind::Input
            && fanout[net.index()] == 0
            && !is_output[net.index()]
        {
            issues.push(LintIssue::UnusedInput { net });
        }
    }
    for net in netlist.nets() {
        if netlist.kind(net).is_logic() && fanout[net.index()] == 0 && !is_output[net.index()] {
            issues.push(LintIssue::FloatingNet { net });
        }
    }
    if any_output {
        let dead: Vec<NetId> = netlist
            .nets()
            .filter(|&net| netlist.kind(net).is_logic() && !live[net.index()])
            .collect();
        if !dead.is_empty() {
            issues.push(LintIssue::DeadCone { nets: dead });
        }
    }

    // --- Local gate defects. ---
    for net in netlist.nets() {
        if !netlist.kind(net).is_logic() {
            continue;
        }
        let inputs = netlist.gate_inputs(net);
        let consts: Vec<Option<bool>> = inputs.iter().map(|&i| const_value(netlist, i)).collect();
        if consts.iter().any(Option::is_some) {
            let value = if consts.iter().all(Option::is_some) {
                let vals: Vec<bool> = consts.iter().map(|c| c.expect("all const")).collect();
                Some(eval_const_gate(netlist.kind(net), &vals))
            } else {
                None
            };
            issues.push(LintIssue::ConstantFoldable { net, value });
        }
    }
    for net in netlist.nets() {
        let f = fanout[net.index()];
        if f > opts.fanout_limit {
            issues.push(LintIssue::HighFanout { net, fanout: f, limit: opts.fanout_limit });
        }
    }
    issues
}

/// Rebuilds `netlist` keeping every primary input (the evaluation
/// interface is preserved: same input count and order) but only the logic
/// and constants that can reach an output net. Gate structure inside the
/// live cone is copied verbatim — no re-folding — so the timing of every
/// surviving net under an index-independent delay model is unchanged.
///
/// Net *ids* are remapped (the live cone is renumbered densely); callers
/// holding `NetId`s into the old netlist must re-derive them from the
/// returned netlist's buses.
///
/// # Errors
///
/// [`StaError::NotTopological`] if the netlist was rewired out of
/// topological order (a single rebuild pass would drop the back edges
/// silently).
pub fn prune_dead(netlist: &Netlist) -> Result<Netlist, StaError> {
    check_topological(netlist)?;
    let n = netlist.len();
    let mut is_output = vec![false; n];
    for (_, nets) in netlist.outputs() {
        for net in nets {
            is_output[net.index()] = true;
        }
    }
    let live = live_set(netlist, &is_output);

    let mut out = Netlist::new();
    let mut map: Vec<Option<NetId>> = vec![None; n];
    for net in netlist.nets() {
        let i = net.index();
        match netlist.kind(net) {
            GateKind::Input => map[i] = Some(out.input("in")),
            GateKind::Const => {
                if live[i] {
                    let v = const_value(netlist, net).expect("const net has a value");
                    map[i] = Some(out.constant(v));
                }
            }
            kind => {
                if live[i] {
                    let inputs: Vec<NetId> = netlist
                        .gate_inputs(net)
                        .iter()
                        .map(|p| map[p.index()].expect("inputs of a live gate are live"))
                        .collect();
                    map[i] =
                        Some(out.try_gate(kind, &inputs).expect("copied gate keeps its arity"));
                }
            }
        }
    }
    for (bus, nets) in netlist.outputs() {
        let mapped: Vec<NetId> =
            nets.iter().map(|p| map[p.index()].expect("output nets are live")).collect();
        out.set_output(bus, mapped);
    }
    Ok(out)
}

/// Backward reachability from the output nets (cycle-safe: plain DFS with
/// a visited set).
fn live_set(netlist: &Netlist, is_output: &[bool]) -> Vec<bool> {
    let mut live = vec![false; netlist.len()];
    let mut stack: Vec<NetId> = netlist.nets().filter(|net| is_output[net.index()]).collect();
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut live[net.index()], true) {
            continue;
        }
        if netlist.kind(net).is_logic() {
            stack.extend(netlist.gate_inputs(net).iter().copied());
        }
    }
    live
}

/// Follows dataflow forward from `gate` looking for `src`; a hit means the
/// back edge `src → gate` closes a combinational cycle, returned in
/// dataflow order `[gate, …, src]`.
fn trace_cycle(gate: NetId, src: NetId, fanout: &[Vec<NetId>], n: usize) -> Option<Vec<NetId>> {
    if src == gate {
        return Some(vec![gate]);
    }
    let mut pred: Vec<Option<NetId>> = vec![None; n];
    let mut visited = vec![false; n];
    visited[gate.index()] = true;
    let mut stack = vec![gate];
    while let Some(cur) = stack.pop() {
        for &next in &fanout[cur.index()] {
            if visited[next.index()] {
                continue;
            }
            visited[next.index()] = true;
            pred[next.index()] = Some(cur);
            if next == src {
                // Reconstruct gate → … → src.
                let mut path = vec![src];
                let mut at = src;
                while let Some(p) = pred[at.index()] {
                    path.push(p);
                    at = p;
                }
                path.reverse();
                return Some(path);
            }
            stack.push(next);
        }
    }
    None
}

/// `Some(true)` when the gate inverts the value arriving at input
/// position `pos` regardless of its other inputs, `Some(false)` when it
/// passes it through monotonically, `None` when the polarity depends on
/// the off-path inputs (the xor family, a mux select).
fn edge_polarity(kind: GateKind, pos: usize) -> Option<bool> {
    match kind {
        GateKind::Not | GateKind::Nand | GateKind::Nor => Some(true),
        GateKind::And | GateKind::Or => Some(false),
        GateKind::Mux if pos > 0 => Some(false),
        GateKind::Mux | GateKind::Xor | GateKind::Xnor => None,
        GateKind::Input | GateKind::Const => unreachable!("not a logic gate"),
    }
}

/// Folds [`edge_polarity`] around a cycle (in dataflow order, as returned
/// by [`trace_cycle`]): `Some(true)` means the loop inverts itself — no
/// stable point exists when it is sensitized. `None` when any edge's
/// polarity depends on off-cycle values, or the cycle re-enters a gate at
/// positions of mixed polarity.
fn cycle_polarity(netlist: &Netlist, cycle: &[NetId]) -> Option<bool> {
    let mut inverting = false;
    let k = cycle.len();
    for i in 0..k {
        let src = cycle[i];
        let reader = cycle[(i + 1) % k];
        let kind = netlist.kind(reader);
        let mut edge: Option<bool> = None;
        for (pos, &inp) in netlist.gate_inputs(reader).iter().enumerate() {
            if inp != src {
                continue;
            }
            let p = edge_polarity(kind, pos)?;
            match edge {
                None => edge = Some(p),
                Some(prev) if prev == p => {}
                Some(_) => return None,
            }
        }
        inverting ^= edge?;
    }
    Some(inverting)
}

fn const_value(netlist: &Netlist, net: NetId) -> Option<bool> {
    let node = &netlist.gate_nodes()[net.index()];
    if node.kind == GateKind::Const {
        Some(node.const_value)
    } else {
        None
    }
}

fn eval_const_gate(kind: GateKind, v: &[bool]) -> bool {
    match kind {
        GateKind::Not => !v[0],
        GateKind::And => v[0] & v[1],
        GateKind::Or => v[0] | v[1],
        GateKind::Xor => v[0] ^ v[1],
        GateKind::Nand => !(v[0] & v[1]),
        GateKind::Nor => !(v[0] | v[1]),
        GateKind::Xnor => !(v[0] ^ v[1]),
        GateKind::Mux => {
            if v[0] {
                v[1]
            } else {
                v[2]
            }
        }
        GateKind::Input | GateKind::Const => unreachable!("not a logic gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, UnitDelay};

    fn codes(issues: &[LintIssue]) -> Vec<&'static str> {
        issues.iter().map(LintIssue::code).collect()
    }

    #[test]
    fn clean_netlist_has_no_issues() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.xor(a, b);
        let c = nl.and(a, b);
        nl.set_output("sum", vec![s, c]);
        assert!(check(&nl).is_empty());
    }

    #[test]
    fn ring_oscillator_is_flagged_statically() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        nl.set_output("z", vec![n3]);
        // Close the ring: n1 now reads n3.
        nl.rewire_input(n1, 0, n3).unwrap();
        let issues = check(&nl);
        let loops: Vec<_> = issues
            .iter()
            .filter_map(|i| match i {
                LintIssue::CombinationalLoop { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(loops.len(), 1, "exactly one loop: {issues:?}");
        assert_eq!(loops[0], vec![n1, n2, n3], "dataflow order around the ring");
        assert!(issues[0].to_string().contains("combinational loop"));
    }

    #[test]
    fn self_loop_is_a_one_net_cycle() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let g = nl.and(a, a);
        nl.set_output("z", vec![g]);
        nl.rewire_input(g, 1, g).unwrap();
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::CombinationalLoop { cycle: vec![g] }));
    }

    #[test]
    fn acyclic_back_reference_is_distinguished_from_a_loop() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(a);
        nl.set_output("z", vec![n1, n2]);
        // n1 reads n2, but n2 does not depend on n1: no cycle.
        nl.rewire_input(n1, 0, n2).unwrap();
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::BackReference { gate: n1, src: n2 }));
        assert!(!codes(&issues).contains(&"comb-loop"));
    }

    #[test]
    fn odd_inverting_feedback_is_non_settling_but_a_latch_is_not() {
        // Three inverters closed into a ring: odd polarity, no fixed point.
        let mut ring = Netlist::new();
        let a = ring.input("a");
        let n1 = ring.not(a);
        let n2 = ring.not(n1);
        let n3 = ring.not(n2);
        ring.set_output("z", vec![n3]);
        ring.rewire_input(n1, 0, n3).unwrap();
        let issues = check(&ring);
        assert!(issues.contains(&LintIssue::NonSettlingFeedback { cycle: vec![n1, n2, n3] }));
        assert!(codes(&issues).contains(&"comb-loop"), "the loop itself is still reported");
        assert!(
            issues
                .iter()
                .any(|i| i.code() == "non-settling-feedback"
                    && i.to_string().contains("never settle"))
        );

        // Two inverters: even polarity — a loop, but it can latch.
        let mut latch = Netlist::new();
        let a = latch.input("a");
        let n1 = latch.not(a);
        let n2 = latch.not(n1);
        latch.set_output("z", vec![n2]);
        latch.rewire_input(n1, 0, n2).unwrap();
        let issues = check(&latch);
        assert!(codes(&issues).contains(&"comb-loop"));
        assert!(!codes(&issues).contains(&"non-settling-feedback"), "{issues:?}");

        // A xor on the cycle: polarity depends on the side input — the
        // lint stays silent rather than guessing.
        let mut x = Netlist::new();
        let a = x.input("a");
        let b = x.input("b");
        let n1 = x.not(a);
        let g = x.xor(n1, b);
        x.set_output("z", vec![g]);
        x.rewire_input(n1, 0, g).unwrap();
        let issues = check(&x);
        assert!(codes(&issues).contains(&"comb-loop"));
        assert!(!codes(&issues).contains(&"non-settling-feedback"), "{issues:?}");
    }

    #[test]
    fn self_nand_is_the_smallest_non_settling_loop() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let g = nl.nand(a, a);
        nl.set_output("z", vec![g]);
        nl.rewire_input(g, 0, g).unwrap();
        nl.rewire_input(g, 1, g).unwrap();
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::NonSettlingFeedback { cycle: vec![g] }));
    }

    #[test]
    fn duplicated_output_bits_are_flagged_but_constant_padding_is_not() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let s = nl.xor(a, b);
        let zero = nl.constant(false);
        // `s` repeats (a fake sign extension); the shared zero pad is fine.
        nl.set_output("z", vec![zero, s, s, zero]);
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::OutputWidthMismatch {
            bus: "z".to_string(),
            declared: 4,
            driven: 3,
        }));

        let mut ok = Netlist::new();
        let a = ok.input("a");
        let g = ok.not(a);
        let zero = ok.constant(false);
        ok.set_output("z", vec![zero, g, zero]);
        assert!(
            !check(&ok).iter().any(|i| i.code() == "output-width-mismatch"),
            "constant padding alone is legitimate"
        );
    }

    #[test]
    fn empty_output_buses_are_flagged() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let g = nl.not(a);
        nl.set_output("z", vec![g]);
        nl.set_output("empty", Vec::new());
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::OutputWidthMismatch {
            bus: "empty".to_string(),
            declared: 0,
            driven: 0,
        }));
        assert!(issues.iter().any(|i| i.to_string().contains("declares no bits")));
    }

    #[test]
    fn dead_and_floating_logic_is_flagged() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let live = nl.not(a);
        let dead1 = nl.not(a);
        let dead2 = nl.not(dead1); // floating tip of a 2-gate dead cone
        nl.set_output("z", vec![live]);
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::FloatingNet { net: dead2 }));
        assert!(issues.contains(&LintIssue::DeadCone { nets: vec![dead1, dead2] }));
        assert!(!codes(&issues).contains(&"unused-input"), "a is read by live logic");
    }

    #[test]
    fn unused_inputs_and_no_outputs_are_flagged() {
        let mut nl = Netlist::new();
        let _a = nl.input("a");
        let issues = check(&nl);
        assert_eq!(codes(&issues), vec!["no-outputs", "unused-input"]);
    }

    #[test]
    fn const_fed_gates_are_flagged_with_their_value() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let t = nl.constant(true);
        let f = nl.constant(false);
        // Raw gate construction bypasses the builders' folding.
        let full = nl.try_gate(GateKind::Nand, &[t, f]).unwrap();
        let part = nl.try_gate(GateKind::And, &[a, t]).unwrap();
        nl.set_output("z", vec![full, part]);
        let issues = check(&nl);
        assert!(issues.contains(&LintIssue::ConstantFoldable { net: full, value: Some(true) }));
        assert!(issues.contains(&LintIssue::ConstantFoldable { net: part, value: None }));
    }

    #[test]
    fn high_fanout_respects_the_configured_limit() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut outs = Vec::new();
        for _ in 0..4 {
            outs.push(nl.not(a));
        }
        nl.set_output("z", outs);
        assert!(check(&nl).is_empty(), "4 readers is fine at the default limit");
        let issues = check_with(&nl, &LintOptions { fanout_limit: 3 });
        assert_eq!(issues, vec![LintIssue::HighFanout { net: a, fanout: 4, limit: 3 }]);
        assert_eq!(issues[0].code(), "high-fanout");
    }

    #[test]
    fn prune_dead_removes_exactly_the_dead_cone() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let live = nl.xor(a, b);
        let dead1 = nl.and(a, b);
        let _dead2 = nl.not(dead1);
        nl.set_output("z", vec![live]);
        let pruned = prune_dead(&nl).unwrap();
        assert_eq!(pruned.len(), nl.len() - 2);
        assert_eq!(pruned.inputs().len(), 2, "inputs always survive");
        // Function on the outputs is preserved.
        for pat in 0..4u8 {
            let ins = [pat & 1 == 1, pat & 2 == 2];
            let old = nl.eval(&ins);
            let new = pruned.eval(&ins);
            let oz = nl.output("z")[0];
            let nz = pruned.output("z")[0];
            assert_eq!(old[oz.index()], new[nz.index()], "pattern {pat}");
        }
        // And the pruned netlist is lint-clean.
        assert!(check(&pruned).is_empty());
    }

    #[test]
    fn prune_preserves_output_arrival_times() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..5 {
            cur = nl.not(cur);
        }
        // A deeper dead chain must not influence the live critical path.
        let mut dead = a;
        for _ in 0..9 {
            dead = nl.not(dead);
        }
        nl.set_output("z", vec![cur]);
        let pruned = prune_dead(&nl).unwrap();
        let before = analyze(&nl, &UnitDelay).arrival_of(nl.output("z"));
        let after = analyze(&pruned, &UnitDelay);
        assert_eq!(after.arrival_of(pruned.output("z")), before);
        assert_eq!(after.critical_path(), before, "dead chain no longer dominates");
    }

    #[test]
    fn prune_keeps_live_constants_and_rejects_rewired_netlists() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let t = nl.constant(true);
        let g = nl.try_gate(GateKind::And, &[a, t]).unwrap();
        let dead_const = nl.constant(false);
        let _ = dead_const;
        nl.set_output("z", vec![g]);
        let pruned = prune_dead(&nl).unwrap();
        assert_eq!(pruned.len(), 3, "input + live const + gate; dead const dropped");
        assert!(pruned.eval(&[true])[pruned.output("z")[0].index()]);

        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.set_output("z", vec![n2]);
        nl.rewire_input(n1, 0, n2).unwrap();
        assert!(matches!(prune_dead(&nl), Err(StaError::NotTopological { .. })));
    }
}
