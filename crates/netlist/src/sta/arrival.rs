//! Forward arrival-time propagation — the front half of static timing
//! analysis.
//!
//! Computes worst-case arrival times by longest-path propagation — the
//! "structural" timing a synthesis tool would report, which the paper calls
//! `(N + δ)·μ` for the online multiplier. The gap between this structural
//! bound and the *actual* settling times observed by the event-driven
//! simulator is exactly the overclocking headroom the paper exploits.

use crate::{DelayModel, NetId, Netlist, StaError};

/// Worst-case arrival times for every net of a netlist.
#[derive(Clone, Debug)]
pub struct TimingReport {
    arrival: Vec<u64>,
    critical: u64,
}

impl TimingReport {
    /// Worst-case arrival time of one net.
    #[must_use]
    pub fn arrival(&self, net: NetId) -> u64 {
        self.arrival[net.index()]
    }

    /// Worst-case arrival over a bus.
    #[must_use]
    pub fn arrival_of(&self, nets: &[NetId]) -> u64 {
        nets.iter().map(|&n| self.arrival(n)).max().unwrap_or(0)
    }

    /// Worst-case arrival of every net, indexed by [`NetId::index`].
    #[must_use]
    pub fn arrivals(&self) -> &[u64] {
        &self.arrival
    }

    /// The critical-path delay of the whole netlist: the minimum clock
    /// period for guaranteed-correct ("rated") operation.
    #[must_use]
    pub fn critical_path(&self) -> u64 {
        self.critical
    }

    /// Rated frequency in "operations per megaunit" — `1e6 / critical_path`
    /// — or `None` for a netlist with no timed logic (an empty or
    /// all-wires netlist has no rated period, and the old behaviour of
    /// returning `inf` poisoned every downstream ratio). Only ratios of
    /// this number are meaningful.
    #[must_use]
    pub fn rated_frequency(&self) -> Option<f64> {
        if self.critical == 0 {
            None
        } else {
            Some(1.0e6 / self.critical as f64)
        }
    }
}

/// Runs static timing analysis under a delay model.
///
/// Assumes the DAG-by-construction invariant holds; on a netlist rewired
/// into a cycle (or mere back-reference) the forward pass silently ignores
/// the back edges. Use [`try_analyze`] when the netlist may have been
/// rewired.
#[must_use]
pub fn analyze<M: DelayModel + ?Sized>(netlist: &Netlist, delay: &M) -> TimingReport {
    let mut arrival = vec![0u64; netlist.len()];
    let mut critical = 0;
    for i in 0..netlist.len() {
        let net = NetId::from_index(i);
        let kind = netlist.kind(net);
        if !kind.is_logic() {
            continue;
        }
        let worst_in =
            netlist.gate_inputs(net).iter().map(|inp| arrival[inp.index()]).max().unwrap_or(0);
        arrival[i] = worst_in + delay.gate_delay(kind, net);
        critical = critical.max(arrival[i]);
    }
    TimingReport { arrival, critical }
}

/// Checked variant of [`analyze`]: verifies the topological invariant
/// before propagating, so the produced arrivals are trustworthy even for
/// netlists that passed through [`Netlist::rewire_input`].
///
/// # Errors
///
/// [`StaError::NotTopological`] naming the first gate whose fanin
/// references itself or a later net.
pub fn try_analyze<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
) -> Result<TimingReport, StaError> {
    check_topological(netlist)?;
    Ok(analyze(netlist, delay))
}

/// Verifies that every gate only reads nets created strictly before it —
/// the precondition of every single-pass analysis in this module tree.
///
/// # Errors
///
/// [`StaError::NotTopological`] naming the first offending gate.
pub fn check_topological(netlist: &Netlist) -> Result<(), StaError> {
    for net in netlist.nets() {
        if netlist.kind(net).is_logic()
            && netlist.gate_inputs(net).iter().any(|inp| inp.index() >= net.index())
        {
            return Err(StaError::NotTopological { net });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, UnitDelay};

    const U: u64 = UnitDelay::UNIT;

    #[test]
    fn chain_depth_equals_critical_path() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let mut cur = a;
        for _ in 0..7 {
            cur = nl.not(cur);
        }
        nl.set_output("z", vec![cur]);
        let rep = analyze(&nl, &UnitDelay);
        assert_eq!(rep.critical_path(), 7 * U);
        assert_eq!(rep.arrival(cur), 7 * U);
        assert_eq!(rep.arrival(a), 0);
        assert_eq!(rep.arrivals().len(), nl.len());
    }

    #[test]
    fn reconvergent_paths_take_the_max() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let slow1 = nl.not(a);
        let slow2 = nl.not(slow1);
        let z = nl.and(a, slow2);
        let rep = analyze(&nl, &UnitDelay);
        assert_eq!(rep.arrival(z), 3 * U);
        assert_eq!(rep.arrival_of(&[z, slow1]), 3 * U);
    }

    #[test]
    fn sta_upper_bounds_event_simulation() {
        // For any input pair, settling never exceeds the structural bound.
        let mut nl = Netlist::new();
        let xs = nl.input_bus("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let t = nl.xor(acc, x);
            acc = nl.and(t, x);
        }
        nl.set_output("z", vec![acc]);
        let rep = analyze(&nl, &UnitDelay);
        for pattern in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| pattern >> i & 1 == 1).collect();
            let prev: Vec<bool> = (0..6).map(|i| pattern >> i & 2 == 2).collect();
            let res = simulate(&nl, &UnitDelay, &prev, &inputs);
            assert!(res.settle_time() <= rep.critical_path());
        }
    }

    #[test]
    fn rated_frequency_is_reciprocal() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        let _c = nl.not(b);
        let rep = analyze(&nl, &UnitDelay);
        assert_eq!(rep.critical_path(), 2 * U);
        let f = rep.rated_frequency().expect("timed logic has a rated period");
        assert!((f - 1.0e6 / (2.0 * U as f64)).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist_has_zero_critical_path_and_no_rated_frequency() {
        let nl = Netlist::new();
        let rep = analyze(&nl, &UnitDelay);
        assert_eq!(rep.critical_path(), 0);
        assert_eq!(rep.rated_frequency(), None, "no logic: no finite rated frequency");
    }

    #[test]
    fn try_analyze_rejects_rewired_netlists() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.set_output("z", vec![n2]);
        assert!(try_analyze(&nl, &UnitDelay).is_ok());
        nl.rewire_input(n1, 0, n2).unwrap();
        let err = try_analyze(&nl, &UnitDelay).unwrap_err();
        assert_eq!(err, StaError::NotTopological { net: n1 });
        assert!(err.to_string().contains("not topologically ordered"));
    }
}
