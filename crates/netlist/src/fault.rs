//! Fault models for resilience campaigns.
//!
//! A [`FaultPlan`] is an overlay on a [`Netlist`]: it never mutates the
//! structure, it transforms the *observed* value of faulted nets during
//! simulation ([`simulate_with_faults`](crate::simulate_with_faults)).
//! Three classic fault classes are modeled:
//!
//! * **Stuck-at** — the net reads as a constant `0`/`1` forever (a
//!   manufacturing or wear-out hard fault);
//! * **Transient** — a single-event upset: the net reads *inverted* during
//!   a time window `[at, at + duration)` (a particle strike / soft error);
//! * **Delay push** — the gate driving the net becomes slower by a fixed
//!   amount (local voltage/temperature variation), turning marginal timing
//!   into real overclocking violations.
//!
//! An empty plan is exactly the identity: simulation with an empty plan is
//! bit-identical to the fault-free simulator (property-tested in
//! `ola-arith`'s fault proptests).

use crate::{GateKind, NetId, Netlist, NetlistError};

/// What goes wrong on a faulted net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The net permanently reads as this value.
    StuckAt(bool),
    /// The net reads inverted during `[at, at + duration)`.
    Transient {
        /// Start time of the upset window.
        at: u64,
        /// Length of the upset window (a zero duration is a no-op).
        duration: u64,
    },
    /// Every output transition of the driving gate is delayed by this many
    /// extra time units.
    DelayPush(u64),
}

/// One fault: a [`FaultKind`] applied to one net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// The faulted net (identified by the gate driving it).
    pub net: NetId,
    /// The fault model.
    pub kind: FaultKind,
}

/// A set of faults to inject into one simulation.
///
/// # Examples
///
/// ```
/// use ola_netlist::{simulate_with_faults, FaultPlan, Netlist, UnitDelay};
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let z = nl.and(a, b);
/// nl.set_output("z", vec![z]);
///
/// let plan = FaultPlan::new().stuck_at(z, true);
/// let res = simulate_with_faults(&nl, &UnitDelay, &[false, false], &[true, false], &plan, 10_000)
///     .unwrap();
/// assert!(res.final_value(z), "stuck-at-1 overrides the AND gate");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty (identity) plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault.
    pub fn add(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Adds a stuck-at fault (builder style).
    #[must_use]
    pub fn stuck_at(mut self, net: NetId, value: bool) -> Self {
        self.add(Fault { net, kind: FaultKind::StuckAt(value) });
        self
    }

    /// Adds a transient bit-flip during `[at, at + duration)` (builder
    /// style).
    #[must_use]
    pub fn transient(mut self, net: NetId, at: u64, duration: u64) -> Self {
        self.add(Fault { net, kind: FaultKind::Transient { at, duration } });
        self
    }

    /// Adds a delay push to the gate driving `net` (builder style).
    #[must_use]
    pub fn delay_push(mut self, net: NetId, extra: u64) -> Self {
        self.add(Fault { net, kind: FaultKind::DelayPush(extra) });
        self
    }

    /// The faults in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Number of faults.
    #[must_use]
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True for the identity plan.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Checks that every faulted net exists in `netlist`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] naming the first missing net.
    pub fn validate(&self, netlist: &Netlist) -> Result<(), NetlistError> {
        for f in &self.faults {
            if f.net.index() >= netlist.len() {
                return Err(NetlistError::NetOutOfRange {
                    index: f.net.index(),
                    len: netlist.len(),
                });
            }
        }
        Ok(())
    }

    /// Compiles the plan into a dense per-net overlay. When the same net
    /// carries several faults, later stuck-at / transient entries replace
    /// earlier ones and delay pushes accumulate.
    pub(crate) fn compile(&self, n: usize) -> FaultOverlay {
        let mut nets = vec![NetFault::NONE; n];
        for f in &self.faults {
            let slot = &mut nets[f.net.index()];
            match f.kind {
                FaultKind::StuckAt(v) => slot.stuck = Some(v),
                FaultKind::Transient { at, duration } => {
                    slot.window = (duration > 0).then(|| (at, at.saturating_add(duration)));
                }
                FaultKind::DelayPush(extra) => {
                    slot.push = slot.push.saturating_add(extra);
                }
            }
        }
        FaultOverlay { nets }
    }
}

/// Merged fault state of one net.
#[derive(Clone, Copy, Debug)]
pub(crate) struct NetFault {
    pub(crate) stuck: Option<bool>,
    /// Half-open upset window `[start, end)`.
    pub(crate) window: Option<(u64, u64)>,
    pub(crate) push: u64,
}

impl NetFault {
    const NONE: NetFault = NetFault { stuck: None, window: None, push: 0 };
}

/// A compiled, per-net view of a [`FaultPlan`].
#[derive(Clone, Debug)]
pub(crate) struct FaultOverlay {
    nets: Vec<NetFault>,
}

impl FaultOverlay {
    /// The observed value of net `idx` at time `t` given its driver's raw
    /// value. `t = None` means "before the simulation starts" (transients
    /// are not yet active).
    pub(crate) fn observe(&self, idx: usize, t: Option<u64>, raw: bool) -> bool {
        let f = &self.nets[idx];
        if let Some(v) = f.stuck {
            return v;
        }
        if let (Some(t), Some((start, end))) = (t, f.window) {
            if t >= start && t < end {
                return !raw;
            }
        }
        raw
    }

    /// Extra scheduling delay for the gate driving net `idx`.
    pub(crate) fn push(&self, idx: usize) -> u64 {
        self.nets[idx].push
    }

    /// The times at which some net's observed value may change without any
    /// driver event: the boundaries of transient windows.
    pub(crate) fn boundary_events(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.nets.iter().enumerate().flat_map(|(i, f)| {
            f.window.into_iter().flat_map(move |(start, end)| [(i as u32, start), (i as u32, end)])
        })
    }
}

/// Enumerates the canonical single-fault sites of a netlist: every net
/// driven by a logic gate (inputs and constants are excluded — faults there
/// model testbench bugs, not datapath damage).
#[must_use]
pub fn logic_fault_sites(netlist: &Netlist) -> Vec<NetId> {
    netlist.nets().filter(|&n| netlist.kind(n).is_logic()).collect()
}

/// Enumerates every net as a fault site, including primary inputs (but not
/// constants), for campaigns that also model faulty operand buses.
#[must_use]
pub fn all_fault_sites(netlist: &Netlist) -> Vec<NetId> {
    netlist.nets().filter(|&n| netlist.kind(n) != GateKind::Const).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Netlist, NetId) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let z = nl.xor(a, b);
        nl.set_output("z", vec![z]);
        (nl, z)
    }

    #[test]
    fn validate_rejects_out_of_range_nets() {
        let (nl, z) = tiny();
        assert!(FaultPlan::new().stuck_at(z, true).validate(&nl).is_ok());
        let bad = FaultPlan::new().stuck_at(NetId(1000), false);
        assert!(matches!(bad.validate(&nl), Err(NetlistError::NetOutOfRange { index: 1000, .. })));
    }

    #[test]
    fn overlay_merges_faults_per_net() {
        let (nl, z) = tiny();
        let plan = FaultPlan::new()
            .delay_push(z, 10)
            .delay_push(z, 5)
            .stuck_at(z, false)
            .stuck_at(z, true);
        let ov = plan.compile(nl.len());
        assert_eq!(ov.push(z.index()), 15, "delay pushes accumulate");
        assert!(ov.observe(z.index(), Some(0), false), "last stuck-at wins");
    }

    #[test]
    fn transient_window_is_half_open() {
        let (nl, z) = tiny();
        let ov = FaultPlan::new().transient(z, 10, 5).compile(nl.len());
        assert!(!ov.observe(z.index(), Some(9), false));
        assert!(ov.observe(z.index(), Some(10), false));
        assert!(ov.observe(z.index(), Some(14), false));
        assert!(!ov.observe(z.index(), Some(15), false));
        assert!(!ov.observe(z.index(), None, false), "inactive before t=0");
        let bounds: Vec<_> = ov.boundary_events().collect();
        assert_eq!(bounds, vec![(z.index() as u32, 10), (z.index() as u32, 15)]);
    }

    #[test]
    fn zero_duration_transient_is_identity() {
        let (nl, z) = tiny();
        let ov = FaultPlan::new().transient(z, 10, 0).compile(nl.len());
        assert!(!ov.observe(z.index(), Some(10), false));
        assert_eq!(ov.boundary_events().count(), 0);
    }

    #[test]
    fn site_enumeration_skips_non_logic() {
        let (nl, z) = tiny();
        assert_eq!(logic_fault_sites(&nl), vec![z]);
        assert_eq!(all_fault_sites(&nl).len(), 3, "two inputs + one gate");
    }
}
