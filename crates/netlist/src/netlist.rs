//! Structural gate-level netlists.

use crate::NetlistError;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a net (equivalently, of the gate driving it).
///
/// Nets are created in topological order: a gate may only reference nets
/// created before it, so every netlist is a DAG by construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A `NetId` from a raw index. No validity check is performed — the
    /// fallible APIs ([`Netlist::try_net`], [`FaultPlan::validate`]) are
    /// the place where out-of-range references turn into typed errors, so
    /// fault-site tooling can construct speculative ids freely.
    ///
    /// [`FaultPlan::validate`]: crate::FaultPlan::validate
    #[must_use]
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The logic function of a gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// A primary input (driven externally).
    Input,
    /// A constant driver.
    Const,
    /// Inverter.
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input XOR.
    Xor,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 multiplexer: `sel ? a : b`.
    Mux,
}

impl GateKind {
    /// All gate kinds, for iteration in reports.
    pub const ALL: [GateKind; 10] = [
        GateKind::Input,
        GateKind::Const,
        GateKind::Not,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
        GateKind::Mux,
    ];

    /// True for gates that compute a function of other nets.
    #[must_use]
    pub fn is_logic(self) -> bool {
        !matches!(self, GateKind::Input | GateKind::Const)
    }
}

#[derive(Clone, Debug)]
pub(crate) struct GateNode {
    pub(crate) kind: GateKind,
    pub(crate) inputs: [NetId; 3],
    pub(crate) num_inputs: u8,
    pub(crate) const_value: bool,
}

impl GateNode {
    pub(crate) fn input_slice(&self) -> &[NetId] {
        &self.inputs[..self.num_inputs as usize]
    }
}

/// A combinational gate-level netlist with named output buses.
///
/// Build nets with the gate constructors, group result nets into output
/// buses with [`Netlist::set_output`], then evaluate functionally with
/// [`Netlist::eval`] or with full timing via
/// [`simulate`](crate::sim::simulate).
///
/// # Examples
///
/// ```
/// use ola_netlist::Netlist;
///
/// let mut nl = Netlist::new();
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let sum = nl.xor(a, b);
/// let carry = nl.and(a, b);
/// nl.set_output("sum", vec![sum, carry]);
///
/// let vals = nl.eval(&[true, true]);
/// assert!(!vals[sum.index()] && vals[carry.index()]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    gates: Vec<GateNode>,
    inputs: Vec<NetId>,
    outputs: BTreeMap<String, Vec<NetId>>,
    const_false: Option<NetId>,
    const_true: Option<NetId>,
}

impl Netlist {
    /// An empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Number of nets (gates) in the netlist.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True if the netlist has no nets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// A deterministic byte encoding of the netlist's structure: gates
    /// (kind, fanins, constant values), primary inputs, and named output
    /// buses in sorted order. Two netlists produce the same bytes iff they
    /// are structurally identical, so a content hash of this encoding is a
    /// sound memoization key for anything derived purely from the netlist
    /// (compiled batch programs, certification tables). Input *names* are
    /// documentation only and deliberately excluded.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.gates.len() * 16);
        out.extend_from_slice(b"olanl/1\n");
        let push_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        push_u32(&mut out, self.gates.len() as u32);
        for g in &self.gates {
            out.push(g.kind as u8);
            out.push(g.num_inputs);
            out.push(u8::from(g.const_value));
            for inp in g.input_slice() {
                push_u32(&mut out, inp.0);
            }
        }
        push_u32(&mut out, self.inputs.len() as u32);
        for id in &self.inputs {
            push_u32(&mut out, id.0);
        }
        push_u32(&mut out, self.outputs.len() as u32);
        for (name, nets) in &self.outputs {
            push_u32(&mut out, name.len() as u32);
            out.extend_from_slice(name.as_bytes());
            push_u32(&mut out, nets.len() as u32);
            for id in nets {
                push_u32(&mut out, id.0);
            }
        }
        out
    }

    /// The primary inputs in declaration order. `eval`/`simulate` take input
    /// values in this order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The named output buses.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, &[NetId])> {
        self.outputs.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// The nets of the output bus `name`.
    ///
    /// # Panics
    ///
    /// Panics if no output bus has that name; see [`Netlist::try_output`]
    /// for the fallible variant.
    #[must_use]
    pub fn output(&self, name: &str) -> &[NetId] {
        self.try_output(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The nets of the output bus `name`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownOutput`] if no output bus has that name.
    pub fn try_output(&self, name: &str) -> Result<&[NetId], NetlistError> {
        self.outputs
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| NetlistError::UnknownOutput { name: name.to_owned() })
    }

    /// Declares a primary input. The `_name` is documentation only.
    pub fn input(&mut self, _name: &str) -> NetId {
        let id = self.push(GateKind::Input, &[], false);
        self.inputs.push(id);
        id
    }

    /// Declares `n` primary inputs forming a bus.
    pub fn input_bus(&mut self, name: &str, n: usize) -> Vec<NetId> {
        (0..n).map(|i| self.input(&format!("{name}[{i}]"))).collect()
    }

    /// A constant net (deduplicated per polarity).
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value { &mut self.const_true } else { &mut self.const_false };
        if let Some(id) = *slot {
            return id;
        }
        let id = self.push_raw(GateKind::Const, &[], value);
        if value {
            self.const_true = Some(id);
        } else {
            self.const_false = Some(id);
        }
        id
    }

    /// Inverter. Constant inputs are folded away, as synthesis would.
    pub fn not(&mut self, a: NetId) -> NetId {
        match self.const_value_of(a) {
            Some(v) => self.constant(!v),
            None => self.push(GateKind::Not, &[a], false),
        }
    }

    /// 2-input AND (constant-folding).
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ => self.push(GateKind::And, &[a, b], false),
        }
    }

    /// 2-input OR (constant-folding).
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ => self.push(GateKind::Or, &[a, b], false),
        }
    }

    /// 2-input XOR (constant-folding).
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => self.push(GateKind::Xor, &[a, b], false),
        }
    }

    /// 2-input NAND (constant-folding).
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(true),
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => self.push(GateKind::Nand, &[a, b], false),
        }
    }

    /// 2-input NOR (constant-folding).
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(false),
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ => self.push(GateKind::Nor, &[a, b], false),
        }
    }

    /// 2-input XNOR (constant-folding).
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value_of(a), self.const_value_of(b)) {
            (Some(true), _) => b,
            (_, Some(true)) => a,
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ => self.push(GateKind::Xnor, &[a, b], false),
        }
    }

    /// 2:1 multiplexer `sel ? a : b` (constant-folding).
    pub fn mux(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        if a == b {
            return a;
        }
        match self.const_value_of(sel) {
            Some(true) => a,
            Some(false) => b,
            None => match (self.const_value_of(a), self.const_value_of(b)) {
                (Some(true), Some(false)) => sel,
                (Some(false), Some(true)) => self.not(sel),
                (Some(false), None) => {
                    let ns = self.not(sel);
                    self.and(ns, b)
                }
                (Some(true), None) => self.or(sel, b),
                (None, Some(false)) => self.and(sel, a),
                (None, Some(true)) => {
                    let ns = self.not(sel);
                    self.or(ns, a)
                }
                _ => self.push(GateKind::Mux, &[sel, a, b], false),
            },
        }
    }

    fn const_value_of(&self, net: NetId) -> Option<bool> {
        let g = self.gates.get(net.index())?;
        if g.kind == GateKind::Const {
            Some(g.const_value)
        } else {
            None
        }
    }

    /// Registers (or replaces) a named output bus.
    pub fn set_output<I: IntoIterator<Item = NetId>>(&mut self, name: &str, nets: I) {
        self.outputs.insert(name.to_owned(), nets.into_iter().collect());
    }

    /// The net with the given index (nets are densely indexed `0..len()`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`; see [`Netlist::try_net`] for the
    /// fallible variant.
    #[must_use]
    pub fn net(&self, index: usize) -> NetId {
        self.try_net(index).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The net with the given index.
    ///
    /// # Errors
    ///
    /// [`NetlistError::NetOutOfRange`] if `index >= len()`.
    pub fn try_net(&self, index: usize) -> Result<NetId, NetlistError> {
        if index < self.gates.len() {
            Ok(NetId(index as u32))
        } else {
            Err(NetlistError::NetOutOfRange { index, len: self.gates.len() })
        }
    }

    /// Iterates over every net id.
    pub fn nets(&self) -> impl Iterator<Item = NetId> {
        (0..self.gates.len() as u32).map(NetId)
    }

    /// The kind of the gate driving `net`.
    #[must_use]
    pub fn kind(&self, net: NetId) -> GateKind {
        self.gates[net.index()].kind
    }

    /// The input nets of the gate driving `net`.
    #[must_use]
    pub fn gate_inputs(&self, net: NetId) -> &[NetId] {
        self.gates[net.index()].input_slice()
    }

    /// Functional (zero-delay) evaluation: returns the settled value of every
    /// net given values for the primary inputs (in [`Netlist::inputs`] order).
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the number of inputs;
    /// see [`Netlist::try_eval`] for the fallible variant.
    #[must_use]
    pub fn eval(&self, input_values: &[bool]) -> Vec<bool> {
        self.try_eval(input_values).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Functional (zero-delay) evaluation.
    ///
    /// On a netlist whose DAG invariant was deliberately broken with
    /// [`Netlist::rewire_input`], the single forward pass still terminates:
    /// back-references read the not-yet-updated (all-`false`-initialized)
    /// value, so the result is merely approximate rather than undefined.
    ///
    /// # Errors
    ///
    /// [`NetlistError::InputArity`] if `input_values.len()` differs from
    /// the number of primary inputs.
    pub fn try_eval(&self, input_values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if input_values.len() != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: input_values.len(),
            });
        }
        let mut vals = vec![false; self.gates.len()];
        let mut next_input = 0;
        for (i, g) in self.gates.iter().enumerate() {
            vals[i] = match g.kind {
                GateKind::Input => {
                    let v = input_values[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Const => g.const_value,
                _ => eval_gate(g.kind, g.input_slice(), &vals),
            };
        }
        Ok(vals)
    }

    /// Number of gates of each kind.
    #[must_use]
    pub fn gate_counts(&self) -> BTreeMap<GateKind, usize> {
        let mut m = BTreeMap::new();
        for g in &self.gates {
            *m.entry(g.kind).or_insert(0) += 1;
        }
        m
    }

    /// Number of logic gates (excluding inputs and constants).
    #[must_use]
    pub fn logic_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.kind.is_logic()).count()
    }

    /// For every net, how many gates read it.
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut fan = vec![0u32; self.gates.len()];
        for g in &self.gates {
            for i in g.input_slice() {
                fan[i.index()] += 1;
            }
        }
        fan
    }

    /// For every net, the list of gate (net) ids that read it.
    #[must_use]
    pub fn fanout_lists(&self) -> Vec<Vec<NetId>> {
        let mut fan = vec![Vec::new(); self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            for inp in g.input_slice() {
                fan[inp.index()].push(NetId(i as u32));
            }
        }
        fan
    }

    /// Appends a logic gate without constant folding, validating input
    /// references. The supported arities are 1 ([`GateKind::Not`]), 2 (the
    /// two-input gates) and 3 ([`GateKind::Mux`]).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DanglingInput`] if an input net does not exist;
    /// * [`NetlistError::NotALogicGate`] for [`GateKind::Input`] /
    ///   [`GateKind::Const`] (use [`Netlist::input`] / [`Netlist::constant`]);
    /// * [`NetlistError::NoSuchGateInput`] if the input count does not
    ///   match the gate's arity.
    pub fn try_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> Result<NetId, NetlistError> {
        if !kind.is_logic() {
            return Err(NetlistError::NotALogicGate { net: NetId(self.gates.len() as u32) });
        }
        let arity = match kind {
            GateKind::Not => 1,
            GateKind::Mux => 3,
            _ => 2,
        };
        if inputs.len() != arity {
            return Err(NetlistError::NoSuchGateInput {
                net: NetId(self.gates.len() as u32),
                index: inputs.len(),
                arity,
            });
        }
        for i in inputs {
            if i.index() >= self.gates.len() {
                return Err(NetlistError::DanglingInput { net: *i, len: self.gates.len() });
            }
        }
        Ok(self.push_raw(kind, inputs, false))
    }

    /// Redirects input `index` of the gate driving `gate` to `new_src`.
    ///
    /// Unlike the builders, `new_src` may reference *any* existing net —
    /// including `gate` itself or nets created later — so this is the one
    /// sanctioned way to break the DAG-by-construction invariant and create
    /// a combinational cycle (e.g. to test the simulator's event-budget
    /// guard, [`SimError::Unsettled`](crate::SimError::Unsettled)). Run
    /// rewired netlists through
    /// [`simulate_budgeted`](crate::simulate_budgeted) rather than
    /// [`simulate`](crate::simulate).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::NetOutOfRange`] if `gate` or `new_src` does not
    ///   exist;
    /// * [`NetlistError::NotALogicGate`] if `gate` is an input or constant;
    /// * [`NetlistError::NoSuchGateInput`] if `index` is not a valid input
    ///   position of `gate`.
    pub fn rewire_input(
        &mut self,
        gate: NetId,
        index: usize,
        new_src: NetId,
    ) -> Result<(), NetlistError> {
        let len = self.gates.len();
        for net in [gate, new_src] {
            if net.index() >= len {
                return Err(NetlistError::NetOutOfRange { index: net.index(), len });
            }
        }
        let node = &mut self.gates[gate.index()];
        if !node.kind.is_logic() {
            return Err(NetlistError::NotALogicGate { net: gate });
        }
        if index >= node.num_inputs as usize {
            return Err(NetlistError::NoSuchGateInput {
                net: gate,
                index,
                arity: node.num_inputs as usize,
            });
        }
        node.inputs[index] = new_src;
        Ok(())
    }

    pub(crate) fn gate_nodes(&self) -> &[GateNode] {
        &self.gates
    }

    fn push(&mut self, kind: GateKind, inputs: &[NetId], const_value: bool) -> NetId {
        for i in inputs {
            if i.index() >= self.gates.len() {
                let e = NetlistError::DanglingInput { net: *i, len: self.gates.len() };
                panic!("{e}");
            }
        }
        self.push_raw(kind, inputs, const_value)
    }

    fn push_raw(&mut self, kind: GateKind, inputs: &[NetId], const_value: bool) -> NetId {
        let id = NetId(u32::try_from(self.gates.len()).expect("netlist too large"));
        let mut arr = [NetId(0); 3];
        arr[..inputs.len()].copy_from_slice(inputs);
        self.gates.push(GateNode {
            kind,
            inputs: arr,
            num_inputs: inputs.len() as u8,
            const_value,
        });
        id
    }
}

pub(crate) fn eval_gate(kind: GateKind, inputs: &[NetId], vals: &[bool]) -> bool {
    let v = |i: usize| vals[inputs[i].index()];
    match kind {
        GateKind::Not => !v(0),
        GateKind::And => v(0) & v(1),
        GateKind::Or => v(0) | v(1),
        GateKind::Xor => v(0) ^ v(1),
        GateKind::Nand => !(v(0) & v(1)),
        GateKind::Nor => !(v(0) | v(1)),
        GateKind::Xnor => !(v(0) ^ v(1)),
        GateKind::Mux => {
            if v(0) {
                v(1)
            } else {
                v(2)
            }
        }
        GateKind::Input | GateKind::Const => unreachable!("not a logic gate"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_input_gates_match_truth_tables() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let nets =
            [nl.and(a, b), nl.or(a, b), nl.xor(a, b), nl.nand(a, b), nl.nor(a, b), nl.xnor(a, b)];
        for (av, bv) in [(false, false), (false, true), (true, false), (true, true)] {
            let vals = nl.eval(&[av, bv]);
            let expect = [av & bv, av | bv, av ^ bv, !(av & bv), !(av | bv), !(av ^ bv)];
            for (net, e) in nets.iter().zip(expect) {
                assert_eq!(vals[net.index()], e, "{:?} a={av} b={bv}", nl.kind(*net));
            }
        }
    }

    #[test]
    fn mux_selects() {
        let mut nl = Netlist::new();
        let s = nl.input("s");
        let a = nl.input("a");
        let b = nl.input("b");
        let m = nl.mux(s, a, b);
        assert!(nl.eval(&[true, true, false])[m.index()]);
        assert!(!nl.eval(&[false, true, false])[m.index()]);
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut nl = Netlist::new();
        let t1 = nl.constant(true);
        let t2 = nl.constant(true);
        let f1 = nl.constant(false);
        assert_eq!(t1, t2);
        assert_ne!(t1, f1);
        assert_eq!(nl.len(), 2);
    }

    #[test]
    fn not_inverts_and_chains() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let vals = nl.eval(&[true]);
        assert!(!vals[n1.index()]);
        assert!(vals[n2.index()]);
    }

    #[test]
    fn output_buses_are_named() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.set_output("z", vec![n, a]);
        assert_eq!(nl.output("z"), &[n, a]);
        assert_eq!(nl.outputs().count(), 1);
    }

    #[test]
    #[should_panic(expected = "no output bus")]
    fn missing_output_panics() {
        let nl = Netlist::new();
        let _ = nl.output("nope");
    }

    #[test]
    fn fanout_counts_are_correct() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let _y = nl.and(a, x);
        let fan = nl.fanout_counts();
        assert_eq!(fan[a.index()], 2);
        assert_eq!(fan[b.index()], 1);
        assert_eq!(fan[x.index()], 1);
        let lists = nl.fanout_lists();
        assert_eq!(lists[a.index()].len(), 2);
    }

    #[test]
    fn gate_counts_by_kind() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let _ = nl.and(a, b);
        let _ = nl.and(a, b);
        let _ = nl.xor(a, b);
        let counts = nl.gate_counts();
        assert_eq!(counts[&GateKind::And], 2);
        assert_eq!(counts[&GateKind::Xor], 1);
        assert_eq!(counts[&GateKind::Input], 2);
        assert_eq!(nl.logic_gate_count(), 3);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_references_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let bogus = NetId(100);
        let _ = nl.and(a, bogus);
    }

    #[test]
    #[should_panic(expected = "expected 2 input values")]
    fn eval_checks_input_arity() {
        let mut nl = Netlist::new();
        let _ = nl.input("a");
        let _ = nl.input("b");
        let _ = nl.eval(&[true]);
    }

    #[test]
    fn fallible_accessors_return_typed_errors() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.set_output("z", vec![n]);

        assert_eq!(nl.try_output("z").unwrap(), &[n]);
        assert!(matches!(nl.try_output("nope"), Err(NetlistError::UnknownOutput { .. })));
        assert_eq!(nl.try_net(0).unwrap(), a);
        assert!(matches!(nl.try_net(99), Err(NetlistError::NetOutOfRange { index: 99, .. })));
        assert!(matches!(nl.try_eval(&[]), Err(NetlistError::InputArity { expected: 1, got: 0 })));
        assert_eq!(nl.try_eval(&[true]).unwrap(), nl.eval(&[true]));
    }

    #[test]
    fn try_gate_validates_arity_and_references() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let g = nl.try_gate(GateKind::And, &[a, b]).unwrap();
        assert_eq!(nl.kind(g), GateKind::And);
        assert!(matches!(
            nl.try_gate(GateKind::Not, &[a, b]),
            Err(NetlistError::NoSuchGateInput { .. })
        ));
        assert!(matches!(
            nl.try_gate(GateKind::And, &[a, NetId(50)]),
            Err(NetlistError::DanglingInput { .. })
        ));
        assert!(matches!(
            nl.try_gate(GateKind::Input, &[]),
            Err(NetlistError::NotALogicGate { .. })
        ));
    }

    #[test]
    fn rewire_input_can_create_cycles() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        // Close the loop: n1 now reads n2 — a ring oscillator.
        nl.rewire_input(n1, 0, n2).unwrap();
        assert_eq!(nl.gate_inputs(n1), &[n2]);
        // eval still terminates (single forward pass).
        let _ = nl.eval(&[true]);

        assert!(matches!(nl.rewire_input(a, 0, n1), Err(NetlistError::NotALogicGate { .. })));
        assert!(matches!(nl.rewire_input(n1, 3, n2), Err(NetlistError::NoSuchGateInput { .. })));
        assert!(matches!(nl.rewire_input(NetId(9), 0, a), Err(NetlistError::NetOutOfRange { .. })));
    }
}
