//! VCD (Value Change Dump) export of simulation waveforms.
//!
//! Lets the settling behaviour this library reasons about be inspected in
//! any standard waveform viewer (GTKWave & co.): dump a [`SimResult`], open
//! the file, and watch the carry chains race the clock edge.

use crate::{NetId, Netlist, SimResult};
use std::io::{self, Write};

/// Writes the waveforms of the named output buses (plus the primary
/// inputs) of one simulation as a VCD file.
///
/// Net names follow the bus names: `bus[i]` for the `i`-th net of the bus,
/// `in[i]` for primary inputs. Time units are the delay model's abstract
/// units, declared as `1ps`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_vcd<W: Write>(netlist: &Netlist, result: &SimResult, mut w: W) -> io::Result<()> {
    // Collect (display name, net) pairs: inputs, then each output bus.
    let mut signals: Vec<(String, NetId)> =
        netlist.inputs().iter().enumerate().map(|(i, &n)| (format!("in[{i}]"), n)).collect();
    for (name, nets) in netlist.outputs() {
        for (i, &n) in nets.iter().enumerate() {
            signals.push((format!("{name}[{i}]"), n));
        }
    }

    writeln!(w, "$timescale 1ps $end")?;
    writeln!(w, "$scope module ola $end")?;
    for (idx, (name, _)) in signals.iter().enumerate() {
        writeln!(w, "$var wire 1 {} {} $end", ident(idx), name)?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    // Initial values.
    writeln!(w, "#0")?;
    writeln!(w, "$dumpvars")?;
    for (idx, (_, net)) in signals.iter().enumerate() {
        writeln!(w, "{}{}", bit(result.initial_value(*net)), ident(idx))?;
    }
    writeln!(w, "$end")?;

    // Merge all transitions into one time-ordered stream.
    let mut events: Vec<(u64, usize, bool)> = Vec::new();
    for (idx, (_, net)) in signals.iter().enumerate() {
        for &(t, v) in result.waveform(*net) {
            events.push((t, idx, v));
        }
    }
    events.sort_unstable_by_key(|&(t, idx, _)| (t, idx));
    let mut last_t = None;
    for (t, idx, v) in events {
        if last_t != Some(t) {
            writeln!(w, "#{t}")?;
            last_t = Some(t);
        }
        writeln!(w, "{}{}", bit(v), ident(idx))?;
    }
    // Close with a final timestamp so viewers show the settled span.
    writeln!(w, "#{}", result.settle_time() + 1)?;
    Ok(())
}

fn bit(v: bool) -> char {
    if v {
        '1'
    } else {
        '0'
    }
}

/// Short printable VCD identifier for signal `idx` (base-94 over `!`..`~`).
fn ident(mut idx: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((b'!' + (idx % 94) as u8) as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, UnitDelay};

    fn demo() -> (Netlist, SimResult) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.and(a, x);
        nl.set_output("z", vec![x, y]);
        let res = simulate(&nl, &UnitDelay, &[false, false], &[true, true]);
        (nl, res)
    }

    #[test]
    fn vcd_has_header_and_transitions() {
        let (nl, res) = demo();
        let mut buf = Vec::new();
        write_vcd(&nl, &res, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("$timescale 1ps $end"));
        assert!(text.contains("$var wire 1 ! in[0] $end"));
        assert!(text.contains("$var wire 1 # z[0] $end"));
        assert!(text.contains("$dumpvars"));
        assert!(text.contains("#0"));
        // The inputs flip at t=0, so '1!' and '1\"' must appear.
        assert!(text.contains("1!"));
        assert!(text.contains("1\""));
        // Events are time-ordered.
        let times: Vec<u64> =
            text.lines().filter(|l| l.starts_with('#')).map(|l| l[1..].parse().unwrap()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn identifiers_are_unique_and_printable() {
        let ids: Vec<String> = (0..300).map(ident).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn no_transitions_still_valid() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let n = nl.not(a);
        nl.set_output("z", vec![n]);
        let res = simulate(&nl, &UnitDelay, &[true], &[true]);
        let mut buf = Vec::new();
        write_vcd(&nl, &res, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$enddefinitions"));
    }
}
