//! Combinational equivalence checking over settled netlists.
//!
//! Answers *do two netlists compute the same Boolean function at full
//! settlement?* — the property every semantics-preserving rewrite
//! (constant folding, CSE, dead-code elimination, adder re-allocation,
//! [`prune_dead`](crate::sta::prune_dead)) must preserve, and the
//! property that makes "online ≡ conventional at settled Ts" a theorem
//! rather than a sampled observation.
//!
//! The checker is staged, cheapest-first:
//!
//! 1. **Structural hashing** — both netlists are hash-consed into shared
//!    structural classes (commutative operands sorted, constants folded
//!    by polarity). If every output bit of the left netlist lands in the
//!    same class as its counterpart on the right, the netlists are
//!    syntactically identical modulo sharing — a proof with no search.
//! 2. **ROBDD** — a hand-rolled reduced ordered BDD (unique table +
//!    memoized apply) built bottom-up over the levelized topological
//!    order, with input variable ordering derived from the earliest
//!    level at which each input feeds logic. Canonicity makes
//!    per-output-bit equivalence a pointer comparison; a mismatch walks
//!    the XOR of the two functions to a satisfying path, yielding a
//!    concrete counterexample input vector. Construction aborts when the
//!    node table exceeds [`EquivOptions::bdd_node_budget`].
//! 3. **Exhaustive batch evaluation** — below
//!    [`EquivOptions::exhaustive_input_limit`] primary inputs, all
//!    `2^n` vectors are swept 64 lanes at a time through a local
//!    word-parallel evaluator (the same bit-slicing trick as the batch
//!    engine). Still a proof, just by enumeration.
//! 4. **Random batch evaluation** — the last resort above both budgets:
//!    [`EquivOptions::random_vectors`] seeded pseudo-random vectors. A
//!    clean pass is reported as the *weaker*
//!    [`EquivVerdict::ProbablyEquivalent`]; any hit is still a hard
//!    [`EquivVerdict::Mismatch`] with a replayable counterexample.
//!
//! Verdicts are typed: [`EquivVerdict::Mismatch`] carries a
//! [`Counterexample`] (primary-input vector plus the first differing
//! output bus/bit and both observed values) that replays through
//! [`Netlist::eval`] on either side.

use crate::error::StaError;
use crate::netlist::{GateKind, NetId, Netlist};
use crate::sta::check_topological;
use std::collections::HashMap;
use std::fmt;

/// Tuning knobs for [`check_equiv_with`].
#[derive(Clone, Copy, Debug)]
pub struct EquivOptions {
    /// Maximum number of live ROBDD nodes before construction aborts and
    /// the checker falls back to batch evaluation.
    pub bdd_node_budget: usize,
    /// Exhaustive enumeration is attempted when the netlists have at
    /// most this many primary inputs (cost `2^n / 64` word passes).
    pub exhaustive_input_limit: u32,
    /// Number of seeded pseudo-random vectors for the final fallback.
    pub random_vectors: u64,
    /// Seed for the random-vector fallback (recorded so mismatches are
    /// replayable).
    pub seed: u64,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            bdd_node_budget: 1 << 20,
            exhaustive_input_limit: 20,
            random_vectors: 4096,
            seed: 0x0E9_11A1,
        }
    }
}

/// How a verdict was reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EquivMethod {
    /// Structural hash-consing found every output pair in one class.
    Structural,
    /// Canonical ROBDDs compared equal (or produced the mismatch path).
    Bdd,
    /// All `2^n` input vectors were enumerated.
    Exhaustive,
    /// Seeded random vectors (probabilistic on the equivalent side).
    RandomBatch,
}

impl EquivMethod {
    /// Stable lowercase label for CSV rows and metrics.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EquivMethod::Structural => "structural",
            EquivMethod::Bdd => "bdd",
            EquivMethod::Exhaustive => "exhaustive",
            EquivMethod::RandomBatch => "random-batch",
        }
    }
}

/// A concrete distinguishing input: replay with `left.eval(&inputs)` /
/// `right.eval(&inputs)` and compare bit `bit` of output bus `bus`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Primary-input vector, in [`Netlist::inputs`] order.
    pub inputs: Vec<bool>,
    /// Name of the first differing output bus.
    pub bus: String,
    /// Bit position within the bus.
    pub bit: usize,
    /// Value the left netlist settles to.
    pub left: bool,
    /// Value the right netlist settles to.
    pub right: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits: String = self.inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
        write!(
            f,
            "inputs={bits} {}[{}]: left={} right={}",
            self.bus, self.bit, self.left as u8, self.right as u8
        )
    }
}

/// The checker's typed answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivVerdict {
    /// The netlists compute the same function on every input (a proof).
    Equivalent {
        /// The stage that produced the proof.
        method: EquivMethod,
    },
    /// No distinguishing vector was found, but the method was sampling,
    /// not exhaustive — equivalence is *likely*, not proven.
    ProbablyEquivalent {
        /// Always [`EquivMethod::RandomBatch`] today.
        method: EquivMethod,
        /// How many vectors were checked.
        vectors: u64,
    },
    /// The netlists differ; `counterexample` replays the disagreement.
    Mismatch {
        /// The stage that found the distinguishing vector.
        method: EquivMethod,
        /// A concrete input on which the outputs differ.
        counterexample: Counterexample,
    },
}

impl EquivVerdict {
    /// True for both [`Equivalent`](Self::Equivalent) and
    /// [`ProbablyEquivalent`](Self::ProbablyEquivalent).
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        !matches!(self, EquivVerdict::Mismatch { .. })
    }

    /// True only when the verdict is a proof (structural, BDD, or
    /// exhaustive — not random sampling).
    #[must_use]
    pub fn is_proof(&self) -> bool {
        matches!(self, EquivVerdict::Equivalent { .. } | EquivVerdict::Mismatch { .. })
    }

    /// The method that decided the verdict.
    #[must_use]
    pub fn method(&self) -> EquivMethod {
        match self {
            EquivVerdict::Equivalent { method }
            | EquivVerdict::ProbablyEquivalent { method, .. }
            | EquivVerdict::Mismatch { method, .. } => *method,
        }
    }

    /// Stable lowercase label ("equivalent" / "probably-equivalent" /
    /// "mismatch") for CSV rows and metrics.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EquivVerdict::Equivalent { .. } => "equivalent",
            EquivVerdict::ProbablyEquivalent { .. } => "probably-equivalent",
            EquivVerdict::Mismatch { .. } => "mismatch",
        }
    }
}

/// Why a comparison could not even start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivError {
    /// The netlists declare different numbers of primary inputs.
    InputCountMismatch {
        /// Inputs on the left netlist.
        left: usize,
        /// Inputs on the right netlist.
        right: usize,
    },
    /// An output bus exists on one side only, or with different widths.
    /// Width `None` means the bus is absent on that side.
    OutputBusMismatch {
        /// The offending bus name.
        bus: String,
        /// Bus width on the left (if present).
        left: Option<usize>,
        /// Bus width on the right (if present).
        right: Option<usize>,
    },
    /// A netlist's DAG invariant is broken (e.g. after
    /// [`Netlist::rewire_input`] introduced a back-reference), so settled
    /// values are not well-defined.
    NotCombinational(StaError),
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::InputCountMismatch { left, right } => {
                write!(f, "input count mismatch: left has {left}, right has {right}")
            }
            EquivError::OutputBusMismatch { bus, left, right } => {
                let w = |o: &Option<usize>| {
                    o.map_or_else(|| "absent".to_owned(), |n| format!("{n} bit(s)"))
                };
                write!(f, "output bus {bus:?}: left {}, right {}", w(left), w(right))
            }
            EquivError::NotCombinational(e) => write!(f, "netlist is not combinational: {e}"),
        }
    }
}

impl std::error::Error for EquivError {}

/// Checks combinational equivalence with [`EquivOptions::default`].
///
/// # Errors
///
/// [`EquivError`] if the interfaces don't line up (input counts, output
/// bus names/widths) or either netlist is non-topological.
pub fn check_equiv(left: &Netlist, right: &Netlist) -> Result<EquivVerdict, EquivError> {
    check_equiv_with(left, right, &EquivOptions::default())
}

/// Checks combinational equivalence of two netlists.
///
/// Inputs are matched positionally (in [`Netlist::inputs`] order),
/// outputs by bus name and bit position. The staged strategy is
/// described in the [module docs](self).
///
/// # Errors
///
/// [`EquivError`] if the interfaces don't line up or either netlist is
/// non-topological; disagreements about *values* are a verdict, not an
/// error.
pub fn check_equiv_with(
    left: &Netlist,
    right: &Netlist,
    opts: &EquivOptions,
) -> Result<EquivVerdict, EquivError> {
    check_interfaces(left, right)?;
    check_topological(left).map_err(EquivError::NotCombinational)?;
    check_topological(right).map_err(EquivError::NotCombinational)?;

    if structurally_equal(left, right) {
        return Ok(EquivVerdict::Equivalent { method: EquivMethod::Structural });
    }

    let order = variable_order(left, right);
    if let Ok(verdict) = bdd_compare(left, right, &order, opts.bdd_node_budget) {
        return Ok(verdict);
    }

    let n = left.inputs().len();
    if n as u32 <= opts.exhaustive_input_limit {
        return Ok(exhaustive_compare(left, right));
    }
    Ok(random_compare(left, right, opts.random_vectors, opts.seed))
}

fn check_interfaces(left: &Netlist, right: &Netlist) -> Result<(), EquivError> {
    if left.inputs().len() != right.inputs().len() {
        return Err(EquivError::InputCountMismatch {
            left: left.inputs().len(),
            right: right.inputs().len(),
        });
    }
    for (name, bits) in left.outputs() {
        match right.try_output(name) {
            Ok(r) if r.len() == bits.len() => {}
            Ok(r) => {
                return Err(EquivError::OutputBusMismatch {
                    bus: name.to_owned(),
                    left: Some(bits.len()),
                    right: Some(r.len()),
                })
            }
            Err(_) => {
                return Err(EquivError::OutputBusMismatch {
                    bus: name.to_owned(),
                    left: Some(bits.len()),
                    right: None,
                })
            }
        }
    }
    for (name, bits) in right.outputs() {
        if left.try_output(name).is_err() {
            return Err(EquivError::OutputBusMismatch {
                bus: name.to_owned(),
                left: None,
                right: Some(bits.len()),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Stage 1: structural hashing
// ---------------------------------------------------------------------------

/// Structural class key: gate kind (with constants folded into two
/// polarity kinds), plus operand class ids — sorted for commutative
/// kinds so `and(a, b)` and `and(b, a)` share a class.
#[derive(Clone, Copy, Hash, PartialEq, Eq)]
enum ClassKey {
    Input(u32),
    Const(bool),
    Gate(GateKind, [u32; 3]),
}

fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Xor
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xnor
    )
}

/// Hash-conses `netlist` into `classes`, returning each net's class id.
fn classify(netlist: &Netlist, classes: &mut HashMap<ClassKey, u32>) -> Vec<u32> {
    let input_pos: HashMap<NetId, u32> =
        netlist.inputs().iter().enumerate().map(|(i, &n)| (n, i as u32)).collect();
    // One zero-input pass recovers every constant's (input-independent)
    // settled polarity.
    let const_vals = netlist.eval(&vec![false; netlist.inputs().len()]);
    let mut class_of = vec![0u32; netlist.len()];
    for net in netlist.nets() {
        let key = match netlist.kind(net) {
            GateKind::Input => ClassKey::Input(input_pos[&net]),
            GateKind::Const => ClassKey::Const(const_vals[net.index()]),
            kind => {
                let ins = netlist.gate_inputs(net);
                let mut ops = [u32::MAX; 3];
                for (slot, &i) in ops.iter_mut().zip(ins) {
                    *slot = class_of[i.index()];
                }
                if commutative(kind) {
                    ops[..ins.len()].sort_unstable();
                }
                ClassKey::Gate(kind, ops)
            }
        };
        let next = classes.len() as u32;
        class_of[net.index()] = *classes.entry(key).or_insert(next);
    }
    class_of
}

fn structurally_equal(left: &Netlist, right: &Netlist) -> bool {
    let mut classes = HashMap::new();
    let lc = classify(left, &mut classes);
    let rc = classify(right, &mut classes);
    left.outputs().all(|(name, lbits)| {
        let rbits = right.output(name);
        lbits.iter().zip(rbits).all(|(&l, &r)| lc[l.index()] == rc[r.index()])
    })
}

// ---------------------------------------------------------------------------
// Stage 2: ROBDD
// ---------------------------------------------------------------------------

/// Input variable ordering: inputs that feed logic *earlier* (shallower
/// levels, in the levelized topological order the batch engine also
/// uses) get smaller variable indices. Related digits of the two
/// operands tend to interleave under this order, which is the classic
/// good ordering for adder-shaped circuits; a poor order here only costs
/// BDD size, never soundness.
fn variable_order(left: &Netlist, right: &Netlist) -> Vec<u32> {
    let n = left.inputs().len();
    let mut first_use = vec![u64::MAX; n];
    for (nl_idx, nl) in [left, right].into_iter().enumerate() {
        let input_pos: HashMap<NetId, usize> =
            nl.inputs().iter().enumerate().map(|(i, &net)| (net, i)).collect();
        // Levelize: level 0 for sources, 1 + max(input levels) for logic.
        let mut level = vec![0u64; nl.len()];
        for net in nl.nets() {
            if nl.kind(net).is_logic() {
                level[net.index()] =
                    1 + nl.gate_inputs(net).iter().map(|i| level[i.index()]).max().unwrap_or(0);
            }
        }
        for net in nl.nets() {
            for &src in nl.gate_inputs(net) {
                if let Some(&pos) = input_pos.get(&src) {
                    // Key on (level of first consumer, net index) so ties
                    // break deterministically; fold both netlists in.
                    let key = level[net.index()] * (nl.len() as u64 + 1)
                        + net.index() as u64
                        + nl_idx as u64;
                    first_use[pos] = first_use[pos].min(key);
                }
            }
        }
    }
    let mut by_use: Vec<u32> = (0..n as u32).collect();
    by_use.sort_by_key(|&p| (first_use[p as usize], p));
    // rank[input position] = BDD variable index.
    let mut rank = vec![0u32; n];
    for (var, &pos) in by_use.iter().enumerate() {
        rank[pos as usize] = var as u32;
    }
    rank
}

struct BudgetExceeded;

const BDD_FALSE: u32 = 0;
const BDD_TRUE: u32 = 1;

#[derive(Clone, Copy)]
struct BddNode {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A reduced ordered BDD forest with a unique table and memoized binary
/// apply. Node ids are canonical: two equal functions share one id.
struct Bdd {
    nodes: Vec<BddNode>,
    unique: HashMap<(u32, u32, u32), u32>,
    apply_cache: HashMap<(u8, u32, u32), u32>,
    budget: usize,
}

/// Binary operations `apply` understands, as truth-table nibbles
/// (bit `2*a + b` of the nibble is `op(a, b)`).
const OP_AND: u8 = 0b1000;
const OP_OR: u8 = 0b1110;
const OP_XOR: u8 = 0b0110;

impl Bdd {
    fn new(budget: usize) -> Self {
        let terminal = |_: u32| BddNode { var: u32::MAX, lo: 0, hi: 0 };
        Bdd {
            nodes: vec![terminal(0), terminal(1)],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            budget,
        }
    }

    fn is_terminal(&self, id: u32) -> bool {
        id <= BDD_TRUE
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BudgetExceeded> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return Ok(id);
        }
        if self.nodes.len() >= self.budget {
            return Err(BudgetExceeded);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(BddNode { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        Ok(id)
    }

    fn var(&mut self, var: u32) -> Result<u32, BudgetExceeded> {
        self.mk(var, BDD_FALSE, BDD_TRUE)
    }

    fn constant(&self, value: bool) -> u32 {
        if value {
            BDD_TRUE
        } else {
            BDD_FALSE
        }
    }

    fn eval_op(op: u8, a: bool, b: bool) -> bool {
        (op >> (2 * a as u8 + b as u8)) & 1 == 1
    }

    fn apply(&mut self, op: u8, a: u32, b: u32) -> Result<u32, BudgetExceeded> {
        if self.is_terminal(a) && self.is_terminal(b) {
            return Ok(self.constant(Self::eval_op(op, a == BDD_TRUE, b == BDD_TRUE)));
        }
        // AND/OR/XOR are commutative: normalize the cache key.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&id) = self.apply_cache.get(&key) {
            return Ok(id);
        }
        let (va, vb) = (self.nodes[a as usize].var, self.nodes[b as usize].var);
        let split = va.min(vb);
        let (alo, ahi) = if va == split {
            (self.nodes[a as usize].lo, self.nodes[a as usize].hi)
        } else {
            (a, a)
        };
        let (blo, bhi) = if vb == split {
            (self.nodes[b as usize].lo, self.nodes[b as usize].hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, alo, blo)?;
        let hi = self.apply(op, ahi, bhi)?;
        let id = self.mk(split, lo, hi)?;
        self.apply_cache.insert(key, id);
        Ok(id)
    }

    fn not(&mut self, a: u32) -> Result<u32, BudgetExceeded> {
        self.apply(OP_XOR, a, BDD_TRUE)
    }

    fn mux(&mut self, sel: u32, a: u32, b: u32) -> Result<u32, BudgetExceeded> {
        // sel ? a : b == (sel & a) | (!sel & b)
        let sa = self.apply(OP_AND, sel, a)?;
        let ns = self.not(sel)?;
        let nsb = self.apply(OP_AND, ns, b)?;
        self.apply(OP_OR, sa, nsb)
    }

    /// Builds the BDD of every net, in topological (index) order.
    fn build(&mut self, nl: &Netlist, rank: &[u32]) -> Result<Vec<u32>, BudgetExceeded> {
        let input_pos: HashMap<NetId, usize> =
            nl.inputs().iter().enumerate().map(|(i, &net)| (net, i)).collect();
        let const_vals = nl.eval(&vec![false; nl.inputs().len()]);
        let mut f = vec![BDD_FALSE; nl.len()];
        for net in nl.nets() {
            let i = net.index();
            let ins: Vec<u32> = nl.gate_inputs(net).iter().map(|src| f[src.index()]).collect();
            f[i] = match nl.kind(net) {
                GateKind::Input => self.var(rank[input_pos[&net]])?,
                GateKind::Const => self.constant(const_vals[i]),
                GateKind::Not => self.not(ins[0])?,
                GateKind::And => self.apply(OP_AND, ins[0], ins[1])?,
                GateKind::Or => self.apply(OP_OR, ins[0], ins[1])?,
                GateKind::Xor => self.apply(OP_XOR, ins[0], ins[1])?,
                GateKind::Nand => {
                    let x = self.apply(OP_AND, ins[0], ins[1])?;
                    self.not(x)?
                }
                GateKind::Nor => {
                    let x = self.apply(OP_OR, ins[0], ins[1])?;
                    self.not(x)?
                }
                GateKind::Xnor => {
                    let x = self.apply(OP_XOR, ins[0], ins[1])?;
                    self.not(x)?
                }
                GateKind::Mux => self.mux(ins[0], ins[1], ins[2])?,
            };
        }
        Ok(f)
    }

    /// Walks any path from `id` to the TRUE terminal, assigning variables
    /// along the way. Every non-terminal ROBDD node reaches both
    /// terminals, so greedily preferring the non-FALSE branch terminates
    /// at TRUE. Unconstrained variables stay `false`.
    fn satisfying_assignment(&self, mut id: u32, num_vars: usize) -> Vec<bool> {
        let mut assign = vec![false; num_vars];
        while !self.is_terminal(id) {
            let node = self.nodes[id as usize];
            if node.hi == BDD_FALSE {
                id = node.lo;
            } else {
                assign[node.var as usize] = true;
                id = node.hi;
            }
        }
        debug_assert_eq!(id, BDD_TRUE, "walked a FALSE BDD");
        assign
    }
}

fn bdd_compare(
    left: &Netlist,
    right: &Netlist,
    rank: &[u32],
    budget: usize,
) -> Result<EquivVerdict, BudgetExceeded> {
    let mut bdd = Bdd::new(budget);
    let lf = bdd.build(left, rank)?;
    let rf = bdd.build(right, rank)?;
    for (name, lbits) in left.outputs() {
        let rbits = right.output(name);
        for (bit, (&l, &r)) in lbits.iter().zip(rbits).enumerate() {
            let (fl, fr) = (lf[l.index()], rf[r.index()]);
            if fl == fr {
                continue;
            }
            // Canonical ids differ, so the XOR is satisfiable.
            let diff = bdd.apply(OP_XOR, fl, fr)?;
            debug_assert_ne!(diff, BDD_FALSE, "unequal canonical BDDs must differ somewhere");
            let by_var = bdd.satisfying_assignment(diff, rank.len());
            // Map variable indices back to input positions.
            let mut inputs = vec![false; rank.len()];
            for (pos, &var) in rank.iter().enumerate() {
                inputs[pos] = by_var[var as usize];
            }
            let lv = left.eval(&inputs)[l.index()];
            let rv = right.eval(&inputs)[r.index()];
            debug_assert_ne!(lv, rv, "BDD counterexample must replay");
            return Ok(EquivVerdict::Mismatch {
                method: EquivMethod::Bdd,
                counterexample: Counterexample {
                    inputs,
                    bus: name.to_owned(),
                    bit,
                    left: lv,
                    right: rv,
                },
            });
        }
    }
    Ok(EquivVerdict::Equivalent { method: EquivMethod::Bdd })
}

// ---------------------------------------------------------------------------
// Stages 3 & 4: word-parallel batch evaluation
// ---------------------------------------------------------------------------

/// Evaluates every net 64 lanes at a time: `words[i]` carries input `i`'s
/// value across 64 vectors, bit `l` = lane `l`. Same bit-slicing as the
/// batch engine, but functional (settled values only) and local.
fn eval_words(nl: &Netlist, const_vals: &[bool], words: &[u64]) -> Vec<u64> {
    let mut vals = vec![0u64; nl.len()];
    let mut next_input = 0;
    for net in nl.nets() {
        let i = net.index();
        let ins = nl.gate_inputs(net);
        let v = |k: usize| vals[ins[k].index()];
        vals[i] = match nl.kind(net) {
            GateKind::Input => {
                let w = words[next_input];
                next_input += 1;
                w
            }
            GateKind::Const => {
                if const_vals[i] {
                    !0
                } else {
                    0
                }
            }
            GateKind::Not => !v(0),
            GateKind::And => v(0) & v(1),
            GateKind::Or => v(0) | v(1),
            GateKind::Xor => v(0) ^ v(1),
            GateKind::Nand => !(v(0) & v(1)),
            GateKind::Nor => !(v(0) | v(1)),
            GateKind::Xnor => !(v(0) ^ v(1)),
            GateKind::Mux => (v(0) & v(1)) | (!v(0) & v(2)),
        };
    }
    vals
}

/// Compares outputs for one 64-lane batch; on a difference within
/// `lane_mask`, decodes the lowest differing lane into a counterexample.
/// Settled constant polarities for both sides, computed once per
/// comparison (not per 64-lane batch).
struct ConstVals {
    left: Vec<bool>,
    right: Vec<bool>,
}

impl ConstVals {
    fn of(left: &Netlist, right: &Netlist) -> ConstVals {
        ConstVals {
            left: left.eval(&vec![false; left.inputs().len()]),
            right: right.eval(&vec![false; right.inputs().len()]),
        }
    }
}

fn compare_batch(
    left: &Netlist,
    right: &Netlist,
    consts: &ConstVals,
    words: &[u64],
    lane_mask: u64,
    method: EquivMethod,
) -> Option<EquivVerdict> {
    let lv = eval_words(left, &consts.left, words);
    let rv = eval_words(right, &consts.right, words);
    for (name, lbits) in left.outputs() {
        let rbits = right.output(name);
        for (bit, (&l, &r)) in lbits.iter().zip(rbits).enumerate() {
            let diff = (lv[l.index()] ^ rv[r.index()]) & lane_mask;
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let inputs: Vec<bool> = words.iter().map(|&w| (w >> lane) & 1 == 1).collect();
                return Some(EquivVerdict::Mismatch {
                    method,
                    counterexample: Counterexample {
                        inputs,
                        bus: name.to_owned(),
                        bit,
                        left: (lv[l.index()] >> lane) & 1 == 1,
                        right: (rv[r.index()] >> lane) & 1 == 1,
                    },
                });
            }
        }
    }
    None
}

fn exhaustive_compare(left: &Netlist, right: &Netlist) -> EquivVerdict {
    let n = left.inputs().len();
    let total: u64 = 1u64 << n;
    let lane_mask = if total >= 64 { !0 } else { (1u64 << total) - 1 };
    // Lane `l` of chunk `c` is vector `c * 64 + l`: inputs 0..6 cycle
    // within the word, inputs 6.. select the chunk.
    let low_patterns: Vec<u64> =
        (0..n.min(6)).map(|i| (0..64).fold(0u64, |acc, l| acc | (((l >> i) & 1) << l))).collect();
    let chunks = total.div_ceil(64);
    let consts = ConstVals::of(left, right);
    let mut words = vec![0u64; n];
    for c in 0..chunks {
        for (i, w) in words.iter_mut().enumerate() {
            *w = if i < 6 {
                low_patterns[i]
            } else if (c >> (i - 6)) & 1 == 1 {
                !0
            } else {
                0
            };
        }
        if let Some(v) =
            compare_batch(left, right, &consts, &words, lane_mask, EquivMethod::Exhaustive)
        {
            return v;
        }
    }
    EquivVerdict::Equivalent { method: EquivMethod::Exhaustive }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_compare(left: &Netlist, right: &Netlist, vectors: u64, seed: u64) -> EquivVerdict {
    let n = left.inputs().len();
    let chunks = vectors.div_ceil(64).max(1);
    let consts = ConstVals::of(left, right);
    let mut state = seed;
    let mut words = vec![0u64; n];
    for c in 0..chunks {
        let lanes = (vectors - c * 64).min(64);
        let lane_mask = if lanes >= 64 { !0 } else { (1u64 << lanes) - 1 };
        for w in &mut words {
            *w = splitmix64(&mut state);
        }
        if let Some(v) =
            compare_batch(left, right, &consts, &words, lane_mask, EquivMethod::RandomBatch)
        {
            return v;
        }
    }
    EquivVerdict::ProbablyEquivalent { method: EquivMethod::RandomBatch, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively confirms a verdict against `Netlist::eval`.
    fn brute_agrees(left: &Netlist, right: &Netlist) -> bool {
        let n = left.inputs().len();
        assert!(n <= 16, "brute force check is exponential");
        (0..1u64 << n).all(|v| {
            let inputs: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            let lv = left.eval(&inputs);
            let rv = right.eval(&inputs);
            left.outputs().all(|(name, lbits)| {
                lbits.iter().zip(right.output(name)).all(|(&l, &r)| lv[l.index()] == rv[r.index()])
            })
        })
    }

    fn xor3_direct() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let ab = nl.xor(a, b);
        let abc = nl.xor(ab, c);
        nl.set_output("y", [abc]);
        nl
    }

    fn xor3_via_muxes() -> Netlist {
        // Same function, structurally different: xor as mux(sel, !x, x).
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let c = nl.input("c");
        let nb = nl.not(b);
        let ab = nl.mux(a, nb, b);
        let nab = nl.not(ab);
        let abc = nl.mux(c, nab, ab);
        nl.set_output("y", [abc]);
        nl
    }

    #[test]
    fn identical_construction_is_structurally_equivalent() {
        let v = check_equiv(&xor3_direct(), &xor3_direct()).unwrap();
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Structural });
    }

    #[test]
    fn commuted_operands_are_structurally_equivalent() {
        let mut a = Netlist::new();
        let (x, y) = (a.input("x"), a.input("y"));
        let g = a.and(x, y);
        a.set_output("z", [g]);
        let mut b = Netlist::new();
        let (x, y) = (b.input("x"), b.input("y"));
        let g = b.and(y, x);
        b.set_output("z", [g]);
        let v = check_equiv(&a, &b).unwrap();
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Structural });
    }

    #[test]
    fn functionally_equal_but_structurally_different_proved_by_bdd() {
        let v = check_equiv(&xor3_direct(), &xor3_via_muxes()).unwrap();
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Bdd });
        assert!(brute_agrees(&xor3_direct(), &xor3_via_muxes()));
    }

    #[test]
    fn mismatch_yields_replayable_counterexample() {
        let mut wrong = xor3_direct();
        // Re-tag the output to an AND of the first two inputs: wrong.
        let a = wrong.net(0);
        let b = wrong.net(1);
        let g = wrong.and(a, b);
        wrong.set_output("y", [g]);
        let good = xor3_direct();
        let v = check_equiv(&good, &wrong).unwrap();
        let EquivVerdict::Mismatch { method, counterexample } = v else {
            panic!("expected mismatch, got {v:?}");
        };
        assert_eq!(method, EquivMethod::Bdd);
        // The counterexample replays through plain eval on both sides.
        let lv = good.eval(&counterexample.inputs);
        let rv = wrong.eval(&counterexample.inputs);
        let lbit = good.output(&counterexample.bus)[counterexample.bit];
        let rbit = wrong.output(&counterexample.bus)[counterexample.bit];
        assert_eq!(lv[lbit.index()], counterexample.left);
        assert_eq!(rv[rbit.index()], counterexample.right);
        assert_ne!(counterexample.left, counterexample.right);
    }

    #[test]
    fn budget_blowout_falls_back_to_exhaustive_proof() {
        let opts = EquivOptions { bdd_node_budget: 4, ..EquivOptions::default() };
        let v = check_equiv_with(&xor3_direct(), &xor3_via_muxes(), &opts).unwrap();
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Exhaustive });
    }

    #[test]
    fn budget_and_input_blowout_fall_back_to_random_sampling() {
        // 24 inputs exceeds the (reduced) exhaustive limit; the random
        // stage still finds the single-bit discrepancy injected at a
        // specific input combination? No — random sampling proves
        // nothing, but a clean run must say so honestly.
        let wide = |flip: bool| {
            let mut nl = Netlist::new();
            let ins: Vec<NetId> = (0..24).map(|i| nl.input(&format!("i{i}"))).collect();
            let mut acc = ins[0];
            for &i in &ins[1..] {
                acc = nl.xor(acc, i);
            }
            if flip {
                acc = nl.not(acc);
            }
            nl.set_output("y", [acc]);
            nl
        };
        let opts = EquivOptions {
            bdd_node_budget: 4,
            exhaustive_input_limit: 12,
            random_vectors: 256,
            ..EquivOptions::default()
        };
        let v = check_equiv_with(&wide(false), &wide(false), &opts).unwrap();
        // Identical constructions short-circuit structurally even with a
        // tiny BDD budget.
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Structural });

        let v = check_equiv_with(&wide(false), &wide(true), &opts).unwrap();
        let EquivVerdict::Mismatch { method, counterexample } = v else {
            panic!("inverted output must mismatch, got {v:?}");
        };
        assert_eq!(method, EquivMethod::RandomBatch);
        assert_ne!(counterexample.left, counterexample.right);
    }

    #[test]
    fn interface_mismatches_are_errors_not_verdicts() {
        let mut one_in = Netlist::new();
        let a = one_in.input("a");
        one_in.set_output("y", [a]);
        let err = check_equiv(&xor3_direct(), &one_in).unwrap_err();
        assert_eq!(err, EquivError::InputCountMismatch { left: 3, right: 1 });

        let mut renamed = xor3_direct();
        let bit = renamed.output("y")[0];
        renamed.set_output("z", [bit]);
        // `renamed` now has both "y" and "z"; the right side misses "z".
        let err = check_equiv(&renamed, &xor3_direct()).unwrap_err();
        assert_eq!(
            err,
            EquivError::OutputBusMismatch { bus: "z".into(), left: Some(1), right: None }
        );
    }

    #[test]
    fn constants_fold_into_polarity_classes() {
        let mut a = Netlist::new();
        let x = a.input("x");
        let t = a.constant(true);
        let g = a.try_gate(GateKind::And, &[x, t]).unwrap();
        a.set_output("y", [g]);
        let mut b = Netlist::new();
        let x = b.input("x");
        b.set_output("y", [x]);
        // Not structurally equal (different shapes) but BDD-provable.
        let v = check_equiv(&a, &b).unwrap();
        assert_eq!(v, EquivVerdict::Equivalent { method: EquivMethod::Bdd });
    }

    #[test]
    fn zero_input_netlists_compare() {
        let mk = |v: bool| {
            let mut nl = Netlist::new();
            let c = nl.constant(v);
            nl.set_output("y", [c]);
            nl
        };
        assert!(check_equiv(&mk(true), &mk(true)).unwrap().is_equivalent());
        let v = check_equiv(&mk(true), &mk(false)).unwrap();
        assert!(!v.is_equivalent());
    }

    #[test]
    fn exhaustive_stage_covers_all_lanes_of_partial_chunks() {
        // 3 inputs → 8 vectors in one partially-masked 64-lane word; a
        // function differing only at the all-ones vector must be caught.
        let mk = |and_all: bool| {
            let mut nl = Netlist::new();
            let a = nl.input("a");
            let b = nl.input("b");
            let c = nl.input("c");
            let ab = nl.and(a, b);
            let abc = nl.and(ab, c);
            let out = if and_all { abc } else { nl.constant(false) };
            nl.set_output("y", [out]);
            nl
        };
        let opts = EquivOptions { bdd_node_budget: 4, ..EquivOptions::default() };
        let v = check_equiv_with(&mk(true), &mk(false), &opts).unwrap();
        let EquivVerdict::Mismatch { method, counterexample } = v else {
            panic!("expected mismatch, got {v:?}");
        };
        assert_eq!(method, EquivMethod::Exhaustive);
        assert_eq!(counterexample.inputs, vec![true, true, true]);
    }

    #[test]
    fn non_topological_netlists_are_rejected() {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        let c = nl.not(b);
        nl.set_output("y", [c]);
        nl.rewire_input(b, 0, c).unwrap();
        let mut ok = Netlist::new();
        let a = ok.input("a");
        ok.set_output("y", [a]);
        let err = check_equiv(&nl, &ok).unwrap_err();
        assert!(matches!(err, EquivError::NotCombinational(_)), "got {err:?}");
    }

    #[test]
    fn counterexample_display_is_compact() {
        let cex = Counterexample {
            inputs: vec![true, false, true],
            bus: "y".into(),
            bit: 0,
            left: true,
            right: false,
        };
        assert_eq!(cex.to_string(), "inputs=101 y[0]: left=1 right=0");
    }
}
