//! Reusable cell constructors: adders' building blocks.

use crate::{NetId, Netlist};

/// Builds a half adder; returns `(sum, carry)`.
pub fn half_adder(nl: &mut Netlist, a: NetId, b: NetId) -> (NetId, NetId) {
    (nl.xor(a, b), nl.and(a, b))
}

/// Builds a full adder; returns `(sum, carry)`.
///
/// Structure: `sum = a ⊕ b ⊕ c`, `carry = ab + c(a ⊕ b)` — two XORs on the
/// sum path, which is the `μ`-defining cell delay of every datapath in this
/// workspace.
pub fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, c: NetId) -> (NetId, NetId) {
    let axb = nl.xor(a, b);
    let sum = nl.xor(axb, c);
    let ab = nl.and(a, b);
    let c_axb = nl.and(c, axb);
    let carry = nl.or(ab, c_axb);
    (sum, carry)
}

/// A PPM ("plus-plus-minus") cell: computes `a + b − m = 2·carry − not_sum`
/// where `carry` is positively and `not_sum` negatively weighted.
///
/// Implemented as a full adder with the negative input and the sum output
/// complemented; this identity is what lets borrow-save adders avoid
/// correction constants. Returns `(carry_pos, sum_neg)`.
pub fn ppm_cell(nl: &mut Netlist, a: NetId, b: NetId, m: NetId) -> (NetId, NetId) {
    let mb = nl.not(m);
    let (s, c) = full_adder(nl, a, b, mb);
    let sn = nl.not(s);
    (c, sn)
}

/// An MMP ("minus-minus-plus") cell: computes `p − a − b = not_sum − 2·carry`
/// where `not_sum` is positively and `carry` negatively weighted.
/// Returns `(carry_neg, sum_pos)`.
pub fn mmp_cell(nl: &mut Netlist, p: NetId, a: NetId, b: NetId) -> (NetId, NetId) {
    let pb = nl.not(p);
    let (s, c) = full_adder(nl, a, b, pb);
    let sp = nl.not(s);
    (c, sp)
}

/// Balanced OR-tree: "any bit set". The empty tree is constant `false`.
pub fn or_tree(nl: &mut Netlist, bits: &[NetId]) -> NetId {
    match bits {
        [] => nl.constant(false),
        [only] => *only,
        _ => {
            let mut layer: Vec<NetId> = bits.to_vec();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| if c.len() == 2 { nl.or(c[0], c[1]) } else { c[0] })
                    .collect();
            }
            layer[0]
        }
    }
}

/// Balanced AND-tree: "all bits set". The empty tree is constant `true`.
pub fn and_tree(nl: &mut Netlist, bits: &[NetId]) -> NetId {
    match bits {
        [] => nl.constant(true),
        [only] => *only,
        _ => {
            let mut layer: Vec<NetId> = bits.to_vec();
            while layer.len() > 1 {
                layer = layer
                    .chunks(2)
                    .map(|c| if c.len() == 2 { nl.and(c[0], c[1]) } else { c[0] })
                    .collect();
            }
            layer[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval3<F: Fn(&mut Netlist, NetId, NetId, NetId) -> (NetId, NetId)>(
        f: F,
        a: bool,
        b: bool,
        c: bool,
    ) -> (bool, bool) {
        let mut nl = Netlist::new();
        let ia = nl.input("a");
        let ib = nl.input("b");
        let ic = nl.input("c");
        let (x, y) = f(&mut nl, ia, ib, ic);
        let vals = nl.eval(&[a, b, c]);
        (vals[x.index()], vals[y.index()])
    }

    #[test]
    fn full_adder_truth_table() {
        for n in 0..8u8 {
            let (a, b, c) = (n & 1 == 1, n & 2 == 2, n & 4 == 4);
            let (s, cy) = eval3(full_adder, a, b, c);
            let total = u8::from(a) + u8::from(b) + u8::from(c);
            assert_eq!(u8::from(s) + 2 * u8::from(cy), total);
        }
    }

    #[test]
    fn half_adder_truth_table() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut nl = Netlist::new();
            let ia = nl.input("a");
            let ib = nl.input("b");
            let (s, c) = half_adder(&mut nl, ia, ib);
            let vals = nl.eval(&[a, b]);
            assert_eq!(
                u8::from(vals[s.index()]) + 2 * u8::from(vals[c.index()]),
                u8::from(a) + u8::from(b)
            );
        }
    }

    #[test]
    fn ppm_identity_holds() {
        // a + b − m == 2·carry − not_sum for all inputs.
        for n in 0..8u8 {
            let (a, b, m) = (n & 1 == 1, n & 2 == 2, n & 4 == 4);
            let (carry, nsum) = eval3(ppm_cell, a, b, m);
            let lhs = i8::from(a) + i8::from(b) - i8::from(m);
            let rhs = 2 * i8::from(carry) - i8::from(nsum);
            assert_eq!(lhs, rhs, "a={a} b={b} m={m}");
        }
    }

    #[test]
    fn mmp_identity_holds() {
        // p − a − b == sum_pos − 2·carry_neg for all inputs.
        for n in 0..8u8 {
            let (p, a, b) = (n & 1 == 1, n & 2 == 2, n & 4 == 4);
            let (carry, psum) = eval3(mmp_cell, p, a, b);
            let lhs = i8::from(p) - i8::from(a) - i8::from(b);
            let rhs = i8::from(psum) - 2 * i8::from(carry);
            assert_eq!(lhs, rhs, "p={p} a={a} b={b}");
        }
    }

    #[test]
    fn or_tree_is_any() {
        for width in [0usize, 1, 2, 5, 8] {
            for pattern in 0..(1u32 << width) {
                let mut nl = Netlist::new();
                let xs = nl.input_bus("x", width);
                let z = or_tree(&mut nl, &xs);
                let inputs: Vec<bool> = (0..width).map(|i| pattern >> i & 1 == 1).collect();
                let vals = nl.eval(&inputs);
                assert_eq!(vals[z.index()], pattern != 0);
            }
        }
    }

    #[test]
    fn and_tree_is_all() {
        for width in [0usize, 1, 2, 5, 8] {
            for pattern in 0..(1u32 << width) {
                let mut nl = Netlist::new();
                let xs = nl.input_bus("x", width);
                let z = and_tree(&mut nl, &xs);
                let inputs: Vec<bool> = (0..width).map(|i| pattern >> i & 1 == 1).collect();
                let vals = nl.eval(&inputs);
                assert_eq!(vals[z.index()], pattern == (1u32 << width) - 1);
            }
        }
    }
}
