//! Registered pipelines of combinational stages, clocked — and
//! overclocked — together.
//!
//! The paper's introduction observes that heavy pipelining raises clock
//! frequency but not end-to-end latency, which is why overclocking (with
//! graceful error behaviour) is attractive for latency-bound designs. This
//! module makes that trade-off concrete: a [`Pipeline`] chains
//! combinational netlists through registers; every stage is simulated with
//! full timing each cycle, and registers capture whatever their stage's
//! outputs happen to be at the clock period `Ts` — including mid-flight
//! garbage when `Ts` is too short. Unlike single-shot simulation, register
//! state carries across cycles, so each stage's previous inputs (not a
//! global reset) define its settling trajectory — exactly like streaming
//! hardware.

use crate::{simulate, DelayModel, NetId, Netlist, TimingReport};

/// One pipeline stage: a combinational netlist plus the name of the output
/// bus that feeds the next stage's registers.
#[derive(Clone, Debug)]
pub struct PipelineStage {
    netlist: Netlist,
    output: String,
}

impl PipelineStage {
    /// Wraps a netlist; `output` names the bus captured by the stage's
    /// output register.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has no bus of that name.
    #[must_use]
    pub fn new(netlist: Netlist, output: &str) -> Self {
        let _ = netlist.output(output); // validate
        PipelineStage { netlist, output: output.to_owned() }
    }

    /// The stage's combinational netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    fn output_nets(&self) -> &[NetId] {
        self.netlist.output(&self.output)
    }

    fn input_width(&self) -> usize {
        self.netlist.inputs().len()
    }

    fn output_width(&self) -> usize {
        self.output_nets().len()
    }
}

/// A chain of register-separated combinational stages sharing one clock.
#[derive(Clone, Debug)]
pub struct Pipeline {
    stages: Vec<PipelineStage>,
}

impl Pipeline {
    /// Builds a pipeline, checking that each stage's output width matches
    /// the next stage's input width.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or widths do not chain.
    #[must_use]
    pub fn new(stages: Vec<PipelineStage>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        for pair in stages.windows(2) {
            assert_eq!(
                pair[0].output_width(),
                pair[1].input_width(),
                "stage output width must match next stage input width"
            );
        }
        Pipeline { stages }
    }

    /// Number of stages (= latency in cycles).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Width of the pipeline's external input.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.stages[0].input_width()
    }

    /// Width of the pipeline's external output.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.stages.last().expect("non-empty").output_width()
    }

    /// The rated clock period: the worst stage's critical path.
    #[must_use]
    pub fn rated_period<M: DelayModel + ?Sized>(&self, delay: &M) -> u64 {
        self.stages
            .iter()
            .map(|s| crate::analyze(&s.netlist, delay).critical_path())
            .max()
            .unwrap_or(0)
    }

    /// Per-stage timing reports.
    #[must_use]
    pub fn stage_timing<M: DelayModel + ?Sized>(&self, delay: &M) -> Vec<TimingReport> {
        self.stages.iter().map(|s| crate::analyze(&s.netlist, delay)).collect()
    }

    /// Streams `inputs` through the pipeline at clock period `ts`.
    ///
    /// Returns one output vector per input vector (the pipeline is flushed
    /// with repeats of the last input, so outputs align with inputs after
    /// the `depth()`-cycle latency). Registers and stage inputs start from
    /// all-zero — the paper's reset state.
    ///
    /// # Panics
    ///
    /// Panics if any input vector width differs from [`input_width`].
    ///
    /// [`input_width`]: Pipeline::input_width
    #[must_use]
    pub fn run<M: DelayModel + ?Sized>(
        &self,
        delay: &M,
        inputs: &[Vec<bool>],
        ts: u64,
    ) -> Vec<Vec<bool>> {
        let depth = self.depth();
        // regs[i] = current output register of stage i; prev_in[i] = the
        // input vector stage i saw last cycle.
        let mut prev_in: Vec<Vec<bool>> =
            self.stages.iter().map(|s| vec![false; s.input_width()]).collect();
        let mut regs: Vec<Vec<bool>> =
            self.stages.iter().map(|s| vec![false; s.output_width()]).collect();
        let mut out = Vec::with_capacity(inputs.len());

        // Input fed at cycle c emerges from the last register at the end of
        // cycle c + depth − 1.
        let total_cycles = inputs.len() + depth - 1;
        let last = inputs.last().cloned().unwrap_or_else(|| vec![false; self.input_width()]);
        for cycle in 0..total_cycles {
            let external: &Vec<bool> = inputs.get(cycle).unwrap_or(&last);
            assert_eq!(external.len(), self.input_width(), "input width mismatch");
            // Compute every stage's new register value from the *current*
            // register file (all stages sample simultaneously).
            let mut next_regs = Vec::with_capacity(depth);
            for (i, stage) in self.stages.iter().enumerate() {
                let stage_in: &Vec<bool> = if i == 0 { external } else { &regs[i - 1] };
                let res = simulate(&stage.netlist, delay, &prev_in[i], stage_in);
                next_regs.push(res.sample_bus(stage.output_nets(), ts));
                prev_in[i] = stage_in.clone();
            }
            regs = next_regs;
            if cycle + 1 >= depth {
                out.push(regs[depth - 1].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::full_adder;
    use crate::UnitDelay;

    /// A w-bit ripple incrementer stage: out = in + 1 (mod 2^w).
    fn incrementer(w: usize) -> PipelineStage {
        let mut nl = Netlist::new();
        let a = nl.input_bus("a", w);
        let mut carry = nl.constant(true);
        let mut out = Vec::new();
        for &bit in &a {
            let zero = nl.constant(false);
            let (s, c) = full_adder(&mut nl, bit, zero, carry);
            out.push(s);
            carry = c;
        }
        nl.set_output("z", out);
        PipelineStage::new(nl, "z")
    }

    fn encode(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn decode(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| u64::from(b) << i).sum()
    }

    #[test]
    fn two_stage_increment_adds_two() {
        let p = Pipeline::new(vec![incrementer(8), incrementer(8)]);
        assert_eq!(p.depth(), 2);
        let rated = p.rated_period(&UnitDelay);
        let inputs: Vec<Vec<bool>> = (0..10u64).map(|v| encode(v * 7, 8)).collect();
        let outs = p.run(&UnitDelay, &inputs, rated);
        assert_eq!(outs.len(), inputs.len());
        for (v, o) in (0..10u64).zip(&outs) {
            assert_eq!(decode(o), (v * 7 + 2) & 0xFF, "v={v}");
        }
    }

    #[test]
    fn overclocked_pipeline_streams_errors_gracefully() {
        let p = Pipeline::new(vec![incrementer(12), incrementer(12)]);
        let rated = p.rated_period(&UnitDelay);
        // 0xFFF + 1 ripples across the whole word: deep overclock breaks it.
        let inputs = vec![encode(0xFFE, 12); 4];
        let ok = p.run(&UnitDelay, &inputs, rated);
        let broken = p.run(&UnitDelay, &inputs, rated / 4);
        assert!(ok.iter().all(|o| decode(o) == 0x000), "0xFFE + 2 wraps to 0");
        assert_ne!(decode(&broken[0]), 0x000, "early sampling must corrupt");
    }

    #[test]
    fn register_state_carries_between_cycles() {
        // With identical consecutive inputs, the second cycle has no
        // switching activity at all, so even a deep overclock is clean from
        // the second output onward.
        let p = Pipeline::new(vec![incrementer(12)]);
        let inputs = vec![encode(0xABC, 12); 3];
        let outs = p.run(&UnitDelay, &inputs, 1);
        assert_eq!(decode(&outs[1]), 0xABD);
        assert_eq!(decode(&outs[2]), 0xABD);
    }

    #[test]
    fn pipelining_raises_frequency_but_not_latency() {
        // The intro's argument: two w/1-deep variants of the same function.
        let deep = Pipeline::new(vec![incrementer(16), incrementer(16)]);
        let flat = {
            // One stage computing +2 via two chained incrementers.
            let mut nl = Netlist::new();
            let a = nl.input_bus("a", 16);
            let mut bits = a;
            for _ in 0..2 {
                let mut carry = nl.constant(true);
                let mut next = Vec::new();
                for &bit in &bits {
                    let zero = nl.constant(false);
                    let (s, c) = full_adder(&mut nl, bit, zero, carry);
                    next.push(s);
                    carry = c;
                }
                bits = next;
            }
            nl.set_output("z", bits);
            Pipeline::new(vec![PipelineStage::new(nl, "z")])
        };
        let f_deep = deep.rated_period(&UnitDelay);
        let f_flat = flat.rated_period(&UnitDelay);
        assert!(f_deep < f_flat, "pipelining shortens the clock period");
        // But end-to-end latency (depth × period) does not improve.
        assert!(2 * f_deep >= f_flat, "latency is not reduced by pipelining");
    }

    #[test]
    #[should_panic(expected = "width must match")]
    fn mismatched_stage_widths_rejected() {
        let _ = Pipeline::new(vec![incrementer(8), incrementer(9)]);
    }
}
