//! Property-based tests of the lint pass ([`ola_netlist::sta::lint`]):
//! seeded defects are always flagged, and [`prune_dead`] removes exactly
//! the dead logic without changing any observable output.

use ola_netlist::sta::lint::{check, prune_dead, LintIssue};
use ola_netlist::{NetId, Netlist};
use proptest::prelude::*;

/// A recipe for one random gate: (kind selector, input selectors).
type GateRecipe = (u8, u8, u8, u8);

/// Builds a random DAG netlist; the last four nets form the output bus, so
/// random recipes routinely leave dead cones behind — exactly what the
/// dead-logic lints and `prune_dead` are for.
fn build_random_netlist(inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| nl.input(&format!("i{i}"))).collect();
    for &(kind, a, b, c) in recipes {
        let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
        let x = pick(a, &nets);
        let y = pick(b, &nets);
        let z = pick(c, &nets);
        let out = match kind % 8 {
            0 => nl.not(x),
            1 => nl.and(x, y),
            2 => nl.or(x, y),
            3 => nl.xor(x, y),
            4 => nl.nand(x, y),
            5 => nl.nor(x, y),
            6 => nl.xnor(x, y),
            _ => nl.mux(x, y, z),
        };
        nets.push(out);
    }
    let out_slice: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    nl.set_output("z", out_slice);
    nl
}

fn recipes() -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
}

fn has_code(issues: &[LintIssue], code: &str) -> bool {
    issues.iter().any(|i| i.code() == code)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// An injected ring oscillator (three inverters closed into a cycle)
    /// is always reported as a combinational loop — statically, with the
    /// ring's nets named in the diagnostic.
    #[test]
    fn injected_ring_oscillator_is_always_flagged(rs in recipes(), tap in any::<u8>()) {
        let mut nl = build_random_netlist(5, &rs);
        let nets: Vec<NetId> = nl.nets().collect();
        let seed = nets[tap as usize % nets.len()];
        let r1 = nl.not(seed);
        let r2 = nl.not(r1);
        let r3 = nl.not(r2);
        nl.rewire_input(r1, 0, r3).unwrap();
        let issues = check(&nl);
        let cycle = issues.iter().find_map(|i| match i {
            LintIssue::CombinationalLoop { cycle } => Some(cycle.clone()),
            _ => None,
        });
        let cycle = cycle.expect("ring oscillator must be diagnosed as a loop");
        for ring_net in [r1, r2, r3] {
            prop_assert!(cycle.contains(&ring_net), "{ring_net:?} missing from {cycle:?}");
        }
        // Cyclic netlists must also be rejected by prune (it needs a DAG).
        prop_assert!(prune_dead(&nl).is_err());
    }

    /// Gates appended after the output bus is fixed can never be observed;
    /// the lint must report them as dead (floating tip and/or dead cone),
    /// and [`prune_dead`] must make the report clean again.
    #[test]
    fn appended_dead_gates_are_always_flagged_and_pruned(
        rs in recipes(),
        extra in 1usize..8,
        tap in any::<u8>(),
    ) {
        let mut nl = build_random_netlist(5, &rs);
        let nets: Vec<NetId> = nl.nets().collect();
        let mut cur = nets[tap as usize % nets.len()];
        let mut appended = Vec::new();
        for _ in 0..extra {
            cur = nl.not(cur);
            appended.push(cur);
        }
        let issues = check(&nl);
        prop_assert!(
            has_code(&issues, "dead-cone") || has_code(&issues, "floating-net"),
            "appended gates not reported: {issues:?}"
        );
        let dead: Vec<NetId> = issues
            .iter()
            .find_map(|i| match i {
                LintIssue::DeadCone { nets } => Some(nets.clone()),
                _ => None,
            })
            .unwrap_or_default();
        for g in &appended {
            prop_assert!(dead.contains(g), "{g:?} missing from dead cone {dead:?}");
        }
        let pruned = prune_dead(&nl).unwrap();
        let after = check(&pruned);
        prop_assert!(!has_code(&after, "dead-cone"), "prune left dead logic: {after:?}");
        prop_assert!(!has_code(&after, "floating-net"));
    }

    /// `prune_dead` is semantics-preserving: for any input vector, the
    /// output bus evaluates identically before and after pruning (and the
    /// pruned netlist is never larger).
    #[test]
    fn prune_preserves_outputs_on_all_vectors(rs in recipes(), bits in any::<u32>()) {
        let inputs = 5;
        let nl = build_random_netlist(inputs, &rs);
        let pruned = prune_dead(&nl).unwrap();
        prop_assert!(pruned.len() <= nl.len());
        let vals: Vec<bool> = (0..inputs).map(|i| bits >> i & 1 == 1).collect();
        let a = nl.eval(&vals);
        let b = pruned.eval(&vals);
        let before: Vec<bool> = nl.output("z").iter().map(|n| a[n.index()]).collect();
        let after: Vec<bool> = pruned.output("z").iter().map(|n| b[n.index()]).collect();
        prop_assert_eq!(before, after);
    }
}
