//! Property tests for the dirty-cone incremental resimulation path and
//! the serialized-program replay path.
//!
//! `BatchProgram::run_incremental` promises bit-identity with a full
//! pass for *any* stimulus/fault delta against *any* base run. These
//! tests drive that promise over random netlists, random batch-exact
//! delay models, and random dirty sets (lane-sparse input flips,
//! added/removed fault plans, and the no-op delta), at both the legacy
//! 64-lane word and the multi-word 128-lane block. A final block pins
//! the memoization contract: a program decoded from its own byte image
//! replays waveforms bit-identically to the freshly compiled original.

#![allow(clippy::unwrap_used)]

use ola_netlist::batch::{
    BatchProgram, LaneBlock, LaneFaultSet, LaneInputs, LaneSimResult, LaneWord,
};
use ola_netlist::{DelayModel, FaultPlan, FpgaDelay, NetId, Netlist, UnitDelay};
use proptest::prelude::*;

/// A recipe for one random gate: (kind selector, input selectors).
type GateRecipe = (u8, u8, u8, u8);

const INPUTS: usize = 6;

fn build_random_netlist(recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<NetId> = (0..INPUTS).map(|i| nl.input(&format!("i{i}"))).collect();
    for &(kind, a, b, c) in recipes {
        let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
        let x = pick(a, &nets);
        let y = pick(b, &nets);
        let z = pick(c, &nets);
        let out = match kind % 8 {
            0 => nl.not(x),
            1 => nl.and(x, y),
            2 => nl.or(x, y),
            3 => nl.xor(x, y),
            4 => nl.nand(x, y),
            5 => nl.nor(x, y),
            6 => nl.xnor(x, y),
            _ => nl.mux(x, y, z),
        };
        nets.push(out);
    }
    let out_slice: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    nl.set_output("z", out_slice);
    nl
}

fn recipes() -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
}

fn delay_model(sel: u8) -> Box<dyn DelayModel> {
    match sel % 4 {
        0 => Box::new(UnitDelay),
        1 => Box::new(FpgaDelay::default()),
        2 => Box::new(FpgaDelay { not: 7, two_input: 120, mux: 35 }),
        _ => Box::new(FpgaDelay { not: 1, two_input: 1, mux: 1 }),
    }
}

fn unpack(bits: u32, shift: u32) -> Vec<bool> {
    (0..INPUTS).map(|i| bits >> (shift + i as u32) & 1 == 1).collect()
}

fn plan_from_specs(specs: &[(u8, u8, u64, u64)], nets: &[NetId]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(site_sel, kind, at, amount) in specs {
        let site = nets[site_sel as usize % nets.len()];
        plan = match kind % 4 {
            0 => plan.stuck_at(site, false),
            1 => plan.stuck_at(site, true),
            2 => plan.transient(site, at, amount),
            _ => plan.delay_push(site, amount),
        };
    }
    plan
}

/// Asserts two results agree on every lane waveform, sampled value, and
/// settle time of every net.
fn assert_bit_identical<B: LaneWord>(
    nl: &Netlist,
    lanes: u32,
    got: &LaneSimResult<B>,
    want: &LaneSimResult<B>,
) -> Result<(), TestCaseError> {
    for net in nl.nets() {
        for lane in 0..lanes {
            prop_assert_eq!(
                got.lane_waveform(net, lane),
                want.lane_waveform(net, lane),
                "net {:?} lane {}",
                net,
                lane
            );
        }
    }
    for lane in 0..lanes {
        prop_assert_eq!(got.settle_time(lane), want.settle_time(lane), "lane {}", lane);
    }
    Ok(())
}

/// One randomized incremental-vs-full trial at lane word `B`.
#[allow(clippy::too_many_arguments)]
fn incremental_trial<B: LaneWord>(
    rs: &[GateRecipe],
    delay_sel: u8,
    base_lanes: &[(u32, u32)],
    flips: &[(u8, u32)],
    base_fault_specs: &[Vec<(u8, u8, u64, u64)>],
    new_fault_specs: &[Vec<(u8, u8, u64, u64)>],
) -> Result<(), TestCaseError> {
    let nl = build_random_netlist(rs);
    let delay = delay_model(delay_sel);
    let prog = BatchProgram::compile(&nl, delay.as_ref()).unwrap();
    let nets: Vec<NetId> = nl.nets().collect();
    let lanes = base_lanes.len() as u32;

    let prev_vecs: Vec<Vec<bool>> = base_lanes.iter().map(|&(p, _)| unpack(p, 0)).collect();
    let base_new_vecs: Vec<Vec<bool>> = base_lanes.iter().map(|&(_, q)| unpack(q, 0)).collect();
    // The delta: flip selected input bits on selected lanes of the new
    // stimulus, leaving the rest of the batch untouched (lane-sparse
    // dirt, the campaign/explorer access pattern).
    let mut new_vecs = base_new_vecs.clone();
    for &(lane_sel, bits) in flips {
        let lane = lane_sel as usize % new_vecs.len();
        for (i, v) in new_vecs[lane].iter_mut().enumerate() {
            *v ^= bits >> i & 1 == 1;
        }
    }

    let prev = LaneInputs::<B>::pack(&prev_vecs).unwrap();
    let base_new = LaneInputs::<B>::pack(&base_new_vecs).unwrap();
    let new = LaneInputs::<B>::pack(&new_vecs).unwrap();
    let base_plans: Vec<FaultPlan> =
        base_fault_specs.iter().map(|s| plan_from_specs(s, &nets)).collect();
    let new_plans: Vec<FaultPlan> =
        new_fault_specs.iter().map(|s| plan_from_specs(s, &nets)).collect();
    let base_faults = LaneFaultSet::<B>::compile(&base_plans, nl.len()).unwrap();
    let new_faults = LaneFaultSet::<B>::compile(&new_plans, nl.len()).unwrap();

    let base = prog.run_with_faults(&prev, &base_new, &base_faults).unwrap();

    // Fault-set delta (and input delta) against a faulted base.
    let inc = prog.run_incremental(&base, &prev, &new, Some(&new_faults)).unwrap();
    let full = prog.run_with_faults(&prev, &new, &new_faults).unwrap();
    assert_bit_identical(&nl, lanes, &inc, &full)?;

    // Dropping the fault set entirely is also just a delta.
    let inc_clean = prog.run_incremental(&base, &prev, &new, None).unwrap();
    let full_clean = prog.run(&prev, &new).unwrap();
    assert_bit_identical(&nl, lanes, &inc_clean, &full_clean)?;

    // The no-op delta must reproduce the base run exactly.
    let noop = prog.run_incremental(&base, &prev, &base_new, Some(&base_faults)).unwrap();
    assert_bit_identical(&nl, lanes, &noop, &base)?;
    Ok(())
}

fn fault_specs(max_plans: usize) -> impl Strategy<Value = Vec<Vec<(u8, u8, u64, u64)>>> {
    prop::collection::vec(
        prop::collection::vec((any::<u8>(), 0u8..4, 0u64..2_000, 0u64..400), 0..3),
        0..=max_plans,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental == full at the legacy 64-lane word, over random
    /// netlists, delay models, input deltas, and fault-set deltas.
    #[test]
    fn incremental_matches_full_u64(
        rs in recipes(),
        delay_sel in 0u8..4,
        base_lanes in prop::collection::vec((any::<u32>(), any::<u32>()), 1..=16),
        flips in prop::collection::vec((any::<u8>(), any::<u32>()), 0..6),
        base_faults in fault_specs(4),
        new_faults in fault_specs(4),
    ) {
        incremental_trial::<u64>(&rs, delay_sel, &base_lanes, &flips, &base_faults, &new_faults)?;
    }

    /// The same property at a two-word 128-lane block, with populations
    /// that cross the 64-lane word boundary so both words carry dirt.
    #[test]
    fn incremental_matches_full_multiword(
        rs in recipes(),
        delay_sel in 0u8..4,
        base_lanes in prop::collection::vec((any::<u32>(), any::<u32>()), 60..=80),
        flips in prop::collection::vec((any::<u8>(), any::<u32>()), 0..6),
        base_faults in fault_specs(3),
        new_faults in fault_specs(3),
    ) {
        incremental_trial::<LaneBlock<2>>(
            &rs, delay_sel, &base_lanes, &flips, &base_faults, &new_faults,
        )?;
    }

    /// Memoization replay contract: a program decoded from its own byte
    /// image produces bit-identical waveforms to the fresh compile, so a
    /// cache hit can never change simulation results.
    #[test]
    fn decoded_program_replays_bit_identically(
        rs in recipes(),
        delay_sel in 0u8..4,
        lane_bits in prop::collection::vec((any::<u32>(), any::<u32>()), 1..=16),
    ) {
        let nl = build_random_netlist(&rs);
        let delay = delay_model(delay_sel);
        let fresh = BatchProgram::compile(&nl, delay.as_ref()).unwrap();
        let decoded = BatchProgram::from_bytes(&fresh.to_bytes()).unwrap();
        prop_assert_eq!(decoded.to_bytes(), fresh.to_bytes(), "byte image is a fixpoint");

        let prev_vecs: Vec<Vec<bool>> = lane_bits.iter().map(|&(p, _)| unpack(p, 0)).collect();
        let new_vecs: Vec<Vec<bool>> = lane_bits.iter().map(|&(_, q)| unpack(q, 0)).collect();
        let prev = LaneInputs::<u64>::pack(&prev_vecs).unwrap();
        let new = LaneInputs::<u64>::pack(&new_vecs).unwrap();
        let a = fresh.run(&prev, &new).unwrap();
        let b = decoded.run(&prev, &new).unwrap();
        assert_bit_identical(&nl, lane_bits.len() as u32, &a, &b)?;
    }
}
