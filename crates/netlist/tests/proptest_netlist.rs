//! Property-based tests of the netlist substrate: on randomly generated
//! DAG netlists, the event-driven simulator must settle to the functional
//! evaluation, never later than the static timing bound, and sampling must
//! be consistent with the recorded waveforms.

use ola_netlist::{analyze, area, simulate, JitteredDelay, NetId, Netlist, UnitDelay};
use proptest::prelude::*;

/// A recipe for one random gate: (kind selector, input selectors).
type GateRecipe = (u8, u8, u8, u8);

fn build_random_netlist(inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| nl.input(&format!("i{i}"))).collect();
    for &(kind, a, b, c) in recipes {
        let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
        let x = pick(a, &nets);
        let y = pick(b, &nets);
        let z = pick(c, &nets);
        let out = match kind % 8 {
            0 => nl.not(x),
            1 => nl.and(x, y),
            2 => nl.or(x, y),
            3 => nl.xor(x, y),
            4 => nl.nand(x, y),
            5 => nl.nor(x, y),
            6 => nl.xnor(x, y),
            _ => nl.mux(x, y, z),
        };
        nets.push(out);
    }
    let out_slice: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    nl.set_output("z", out_slice);
    nl
}

fn recipes() -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_settles_to_functional_eval(
        rs in recipes(),
        prev_bits in any::<u32>(),
        next_bits in any::<u32>(),
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let prev: Vec<bool> = (0..inputs).map(|i| prev_bits >> i & 1 == 1).collect();
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let want = nl.eval(&next);
        for net in nl.nets() {
            prop_assert_eq!(res.final_value(net), want[net.index()], "net {:?}", net);
        }
    }

    #[test]
    fn settling_never_exceeds_sta(
        rs in recipes(),
        prev_bits in any::<u32>(),
        next_bits in any::<u32>(),
        jitter in 0u64..40,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let delay = JitteredDelay::new(UnitDelay, jitter, 3);
        let rep = analyze(&nl, &delay);
        let prev: Vec<bool> = (0..inputs).map(|i| prev_bits >> i & 1 == 1).collect();
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &delay, &prev, &next);
        prop_assert!(res.settle_time() <= rep.critical_path());
    }

    #[test]
    fn sampling_after_settle_equals_final(
        rs in recipes(),
        next_bits in any::<u32>(),
        extra in 0u64..1000,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let prev = vec![false; inputs];
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        for &net in nl.output("z") {
            prop_assert_eq!(
                res.value_at(net, res.settle_time() + extra),
                res.final_value(net)
            );
            // Time zero shows the previous settled state.
            let before = nl.eval(&prev);
            if res.waveform(net).first().is_none_or(|&(t, _)| t > 0) {
                prop_assert_eq!(res.value_at(net, 0), before[net.index()]);
            }
        }
    }

    #[test]
    fn area_estimate_is_sane(rs in recipes()) {
        let nl = build_random_netlist(5, &rs);
        let rep = area::estimate(&nl, 4);
        prop_assert!(rep.luts <= rep.gates, "cover never exceeds gate count");
        // Bigger LUTs should not cost substantially more (greedy covering
        // admits small anomalies, so allow a little slack).
        let rep6 = area::estimate(&nl, 6);
        prop_assert!(rep6.luts <= rep.luts + 2);
    }

    #[test]
    fn constant_folding_preserves_function(rs in recipes(), bits in any::<u32>()) {
        // Building the same recipes against constant inputs must evaluate to
        // the same outputs as feeding those constants at runtime.
        let inputs = 6;
        let dynamic = build_random_netlist(inputs, &rs);
        let vals: Vec<bool> = (0..inputs).map(|i| bits >> i & 1 == 1).collect();
        let dyn_eval = dynamic.eval(&vals);

        let mut folded = Netlist::new();
        let nets: Vec<NetId> = vals.iter().map(|&v| folded.constant(v)).collect();
        let mut all = nets;
        for &(kind, a, b, c) in &rs {
            let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
            let x = pick(a, &all);
            let y = pick(b, &all);
            let z = pick(c, &all);
            let out = match kind % 8 {
                0 => folded.not(x),
                1 => folded.and(x, y),
                2 => folded.or(x, y),
                3 => folded.xor(x, y),
                4 => folded.nand(x, y),
                5 => folded.nor(x, y),
                6 => folded.xnor(x, y),
                _ => folded.mux(x, y, z),
            };
            all.push(out);
        }
        // Everything folded to constants: no logic gates remain.
        prop_assert_eq!(folded.logic_gate_count(), 0);
        let folded_vals = folded.eval(&[]);
        // Compare the final four outputs (same selection as the builder).
        let dyn_outs: Vec<bool> =
            dynamic.output("z").iter().map(|n| dyn_eval[n.index()]).collect();
        let fold_outs: Vec<bool> =
            all.iter().rev().take(4).map(|n| folded_vals[n.index()]).collect();
        prop_assert_eq!(dyn_outs, fold_outs);
    }
}
