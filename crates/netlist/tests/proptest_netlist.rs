//! Property-based tests of the netlist substrate: on randomly generated
//! DAG netlists, the event-driven simulator must settle to the functional
//! evaluation, never later than the static timing bound, and sampling must
//! be consistent with the recorded waveforms.
//!
//! The second block pins the batch (bit-parallel) engine to the
//! event-driven ground truth: on random netlists under deterministic and
//! per-gate-type delay models, every lane's waveform, every `Ts`-grid
//! sample, and every per-lane fault scenario must be bit-identical to a
//! one-vector event-driven run.

use ola_netlist::batch::{BatchFaultSet, BatchInputs, BatchProgram};
use ola_netlist::{
    analyze, area, default_event_budget, simulate, simulate_from_zero_with_faults, DelayModel,
    FaultPlan, FpgaDelay, JitteredDelay, NetId, Netlist, UnitDelay,
};
use proptest::prelude::*;

/// A recipe for one random gate: (kind selector, input selectors).
type GateRecipe = (u8, u8, u8, u8);

fn build_random_netlist(inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| nl.input(&format!("i{i}"))).collect();
    for &(kind, a, b, c) in recipes {
        let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
        let x = pick(a, &nets);
        let y = pick(b, &nets);
        let z = pick(c, &nets);
        let out = match kind % 8 {
            0 => nl.not(x),
            1 => nl.and(x, y),
            2 => nl.or(x, y),
            3 => nl.xor(x, y),
            4 => nl.nand(x, y),
            5 => nl.nor(x, y),
            6 => nl.xnor(x, y),
            _ => nl.mux(x, y, z),
        };
        nets.push(out);
    }
    let out_slice: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    nl.set_output("z", out_slice);
    nl
}

fn recipes() -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_settles_to_functional_eval(
        rs in recipes(),
        prev_bits in any::<u32>(),
        next_bits in any::<u32>(),
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let prev: Vec<bool> = (0..inputs).map(|i| prev_bits >> i & 1 == 1).collect();
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        let want = nl.eval(&next);
        for net in nl.nets() {
            prop_assert_eq!(res.final_value(net), want[net.index()], "net {:?}", net);
        }
    }

    #[test]
    fn settling_never_exceeds_sta(
        rs in recipes(),
        prev_bits in any::<u32>(),
        next_bits in any::<u32>(),
        jitter in 0u64..40,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let delay = JitteredDelay::new(UnitDelay, jitter, 3);
        let rep = analyze(&nl, &delay);
        let prev: Vec<bool> = (0..inputs).map(|i| prev_bits >> i & 1 == 1).collect();
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &delay, &prev, &next);
        prop_assert!(res.settle_time() <= rep.critical_path());
    }

    /// Per-net (not just whole-netlist) soundness of the forward STA pass,
    /// across every delay-model family in the workspace: no net ever
    /// transitions after its statically computed worst-case arrival. This
    /// is the exact property the sweep fast path ([`StaGate`] in
    /// `ola-core`) relies on to skip certified `(bus, Ts)` points.
    #[test]
    fn per_net_sta_arrival_bounds_every_transition(
        rs in recipes(),
        prev_bits in any::<u32>(),
        next_bits in any::<u32>(),
        delay_sel in 0u8..4,
        jitter in 0u64..40,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let base = delay_model(delay_sel);
        let prev: Vec<bool> = (0..inputs).map(|i| prev_bits >> i & 1 == 1).collect();
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        // Batch-exact base model and its jittered (event-only) wrap: both
        // are deterministic per-net functions, so STA covers both.
        let jittered = JitteredDelay::new(UnitDelay, jitter, delay_sel as u64 + 1);
        let models: [&dyn DelayModel; 2] = [base.as_ref(), &jittered];
        for delay in models {
            let rep = analyze(&nl, delay);
            let res = simulate(&nl, delay, &prev, &next);
            for net in nl.nets() {
                let last = res.waveform(net).last().map_or(0, |&(t, _)| t);
                prop_assert!(
                    last <= rep.arrival(net),
                    "net {:?} transitioned at {} after its STA arrival {}",
                    net, last, rep.arrival(net)
                );
            }
        }
    }

    #[test]
    fn sampling_after_settle_equals_final(
        rs in recipes(),
        next_bits in any::<u32>(),
        extra in 0u64..1000,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let prev = vec![false; inputs];
        let next: Vec<bool> = (0..inputs).map(|i| next_bits >> i & 1 == 1).collect();
        let res = simulate(&nl, &UnitDelay, &prev, &next);
        for &net in nl.output("z") {
            prop_assert_eq!(
                res.value_at(net, res.settle_time() + extra),
                res.final_value(net)
            );
            // Time zero shows the previous settled state.
            let before = nl.eval(&prev);
            if res.waveform(net).first().is_none_or(|&(t, _)| t > 0) {
                prop_assert_eq!(res.value_at(net, 0), before[net.index()]);
            }
        }
    }

    #[test]
    fn area_estimate_is_sane(rs in recipes()) {
        let nl = build_random_netlist(5, &rs);
        let rep = area::estimate(&nl, 4);
        prop_assert!(rep.luts <= rep.gates, "cover never exceeds gate count");
        // Bigger LUTs should not cost substantially more (greedy covering
        // admits small anomalies, so allow a little slack).
        let rep6 = area::estimate(&nl, 6);
        prop_assert!(rep6.luts <= rep.luts + 2);
    }

    #[test]
    fn constant_folding_preserves_function(rs in recipes(), bits in any::<u32>()) {
        // Building the same recipes against constant inputs must evaluate to
        // the same outputs as feeding those constants at runtime.
        let inputs = 6;
        let dynamic = build_random_netlist(inputs, &rs);
        let vals: Vec<bool> = (0..inputs).map(|i| bits >> i & 1 == 1).collect();
        let dyn_eval = dynamic.eval(&vals);

        let mut folded = Netlist::new();
        let nets: Vec<NetId> = vals.iter().map(|&v| folded.constant(v)).collect();
        let mut all = nets;
        for &(kind, a, b, c) in &rs {
            let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
            let x = pick(a, &all);
            let y = pick(b, &all);
            let z = pick(c, &all);
            let out = match kind % 8 {
                0 => folded.not(x),
                1 => folded.and(x, y),
                2 => folded.or(x, y),
                3 => folded.xor(x, y),
                4 => folded.nand(x, y),
                5 => folded.nor(x, y),
                6 => folded.xnor(x, y),
                _ => folded.mux(x, y, z),
            };
            all.push(out);
        }
        // Everything folded to constants: no logic gates remain.
        prop_assert_eq!(folded.logic_gate_count(), 0);
        let folded_vals = folded.eval(&[]);
        // Compare the final four outputs (same selection as the builder).
        let dyn_outs: Vec<bool> =
            dynamic.output("z").iter().map(|n| dyn_eval[n.index()]).collect();
        let fold_outs: Vec<bool> =
            all.iter().rev().take(4).map(|n| folded_vals[n.index()]).collect();
        prop_assert_eq!(dyn_outs, fold_outs);
    }
}

/// A randomly selected batch-exact delay model: uniform, the FPGA table,
/// and two skewed per-gate-type tables (including an all-ones corner).
fn delay_model(sel: u8) -> Box<dyn DelayModel> {
    match sel % 4 {
        0 => Box::new(UnitDelay),
        1 => Box::new(FpgaDelay::default()),
        2 => Box::new(FpgaDelay { not: 7, two_input: 120, mux: 35 }),
        _ => Box::new(FpgaDelay { not: 1, two_input: 1, mux: 1 }),
    }
}

fn unpack(bits: u32, shift: u32, width: usize) -> Vec<bool> {
    (0..width).map(|i| bits >> (shift + i as u32) & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free ground truth: every lane's per-net waveform (and settle
    /// time) out of one batch pass is the identical list the event-driven
    /// simulator records for that vector.
    #[test]
    fn batch_lanes_match_event_waveforms(
        rs in recipes(),
        lane_bits in prop::collection::vec(any::<u32>(), 1..=64),
        delay_sel in 0u8..4,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let delay = delay_model(delay_sel);
        let prog = BatchProgram::compile(&nl, delay.as_ref()).unwrap();
        let prev_vecs: Vec<Vec<bool>> =
            lane_bits.iter().map(|&b| unpack(b, 0, inputs)).collect();
        let new_vecs: Vec<Vec<bool>> =
            lane_bits.iter().map(|&b| unpack(b, 8, inputs)).collect();
        let prev = BatchInputs::pack(&prev_vecs).unwrap();
        let new = BatchInputs::pack(&new_vecs).unwrap();
        let res = prog.run(&prev, &new).unwrap();
        for (lane, (p, q)) in prev_vecs.iter().zip(&new_vecs).enumerate() {
            let ev = simulate(&nl, delay.as_ref(), p, q);
            let l = lane as u32;
            for net in nl.nets() {
                prop_assert_eq!(
                    res.lane_waveform(net, l),
                    ev.waveform(net).to_vec(),
                    "net {:?} lane {}", net, lane
                );
                prop_assert_eq!(res.value_at(net, l, 0), ev.value_at(net, 0));
            }
            prop_assert_eq!(res.settle_time(l), ev.settle_time(), "lane {}", lane);
        }
    }

    /// Multi-`Ts` sampling: the whole-grid sweep (ascending fast path and
    /// arbitrary-order fallback alike) returns exactly what the
    /// event-driven simulator's register capture answers per grid point.
    #[test]
    fn batch_ts_sweep_matches_event_sampling(
        rs in recipes(),
        lane_bits in prop::collection::vec(any::<u32>(), 1..=16),
        mut grid in prop::collection::vec(0u64..4_000, 1..12),
        ascending in any::<bool>(),
        delay_sel in 0u8..4,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let delay = delay_model(delay_sel);
        if ascending {
            grid.sort_unstable();
        }
        let prog = BatchProgram::compile(&nl, delay.as_ref()).unwrap();
        let zeros = vec![false; inputs];
        let new_vecs: Vec<Vec<bool>> =
            lane_bits.iter().map(|&b| unpack(b, 0, inputs)).collect();
        let prev = BatchInputs::zeros(inputs, new_vecs.len() as u32).unwrap();
        let new = BatchInputs::pack(&new_vecs).unwrap();
        let res = prog.run(&prev, &new).unwrap();
        let bus = res.bus_waves(nl.output("z")).unwrap();
        let sweep = bus.sweep(&grid);
        for (lane, q) in new_vecs.iter().enumerate() {
            let ev = simulate(&nl, delay.as_ref(), &zeros, q);
            for (ti, &t) in grid.iter().enumerate() {
                let want: Vec<bool> =
                    nl.output("z").iter().map(|&net| ev.value_at(net, t)).collect();
                prop_assert_eq!(
                    sweep.lane_bits(ti, lane as u32),
                    want,
                    "lane {} t {}", lane, t
                );
            }
        }
    }

    /// Per-lane fault divergence: each lane carries its own random fault
    /// plan (stuck-at / transient / delay push at random sites); sampled
    /// values must agree with a faulted event-driven run at every waveform
    /// step time and its neighbours. (Raw step lists may differ in
    /// representation at transient boundaries, so values are compared.)
    #[test]
    fn batch_faulted_lanes_match_event_sampled_values(
        rs in recipes(),
        lanes in prop::collection::vec(
            (
                any::<u32>(),
                prop::collection::vec((any::<u8>(), 0u8..4, 0u64..2_000, 0u64..400), 0..3),
            ),
            1..8,
        ),
        delay_sel in 0u8..4,
    ) {
        let inputs = 6;
        let nl = build_random_netlist(inputs, &rs);
        let delay = delay_model(delay_sel);
        let nets: Vec<NetId> = nl.nets().collect();
        let plans: Vec<FaultPlan> = lanes
            .iter()
            .map(|(_, specs)| {
                let mut plan = FaultPlan::new();
                for &(site_sel, kind, at, amount) in specs {
                    let site = nets[site_sel as usize % nets.len()];
                    plan = match kind % 4 {
                        0 => plan.stuck_at(site, false),
                        1 => plan.stuck_at(site, true),
                        2 => plan.transient(site, at, amount),
                        _ => plan.delay_push(site, amount),
                    };
                }
                plan
            })
            .collect();
        let new_vecs: Vec<Vec<bool>> =
            lanes.iter().map(|&(b, _)| unpack(b, 0, inputs)).collect();

        let prog = BatchProgram::compile(&nl, delay.as_ref()).unwrap();
        let prev = BatchInputs::zeros(inputs, new_vecs.len() as u32).unwrap();
        let new = BatchInputs::pack(&new_vecs).unwrap();
        let fs = BatchFaultSet::compile(&plans, nl.len()).unwrap();
        let res = prog.run_with_faults(&prev, &new, &fs).unwrap();

        let budget = default_event_budget(&nl);
        for (lane, (q, plan)) in new_vecs.iter().zip(&plans).enumerate() {
            let ev =
                simulate_from_zero_with_faults(&nl, delay.as_ref(), q, plan, budget).unwrap();
            let l = lane as u32;
            for net in nl.nets() {
                let mut ts: Vec<u64> = ev.waveform(net).iter().map(|&(t, _)| t).collect();
                ts.extend(res.lane_waveform(net, l).iter().map(|&(t, _)| t));
                ts.push(0);
                ts.push(ev.settle_time().max(res.settle_time(l)) + 1);
                for &t in &ts.clone() {
                    ts.push(t.saturating_sub(1));
                    ts.push(t + 1);
                }
                for t in ts {
                    prop_assert_eq!(
                        res.value_at(net, l, t),
                        ev.value_at(net, t),
                        "net {:?} lane {} t {}", net, lane, t
                    );
                }
            }
        }
    }

    /// Jittered delay models decline batch compilation — the documented
    /// fallback contract callers rely on.
    #[test]
    fn jittered_models_always_decline_batch(rs in recipes(), amp in 1u64..50, seed in any::<u64>()) {
        let nl = build_random_netlist(6, &rs);
        let delay = JitteredDelay::new(UnitDelay, amp, seed);
        prop_assert!(!delay.batch_exact());
        prop_assert!(BatchProgram::compile(&nl, &delay).is_err());
    }
}
