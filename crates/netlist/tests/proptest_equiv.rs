//! Property-based tests of the equivalence checker
//! ([`ola_netlist::equiv`]): on random ≤12-input netlists its verdict
//! always agrees with brute-force exhaustive evaluation, a `Mismatch`
//! always carries a replayable counterexample, and every stage of the
//! staged strategy (structural, BDD, exhaustive, random-batch) upholds
//! both properties when forced to decide on its own.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// `allow-unwrap-in-tests` doesn't reach them; a loud panic is still the
// right failure mode here.
#![allow(clippy::unwrap_used)]

use ola_netlist::sta::lint::prune_dead;
use ola_netlist::{
    check_equiv, check_equiv_with, Counterexample, EquivOptions, EquivVerdict, NetId, Netlist,
};
use proptest::prelude::*;

/// A recipe for one random gate: (kind selector, input selectors).
type GateRecipe = (u8, u8, u8, u8);

/// Builds a random DAG netlist over `inputs` primary inputs; the last
/// four nets form the output bus `z`, matching interfaces across
/// independently generated recipe lists.
fn build_random_netlist(inputs: usize, recipes: &[GateRecipe]) -> Netlist {
    let mut nl = Netlist::new();
    let mut nets: Vec<NetId> = (0..inputs).map(|i| nl.input(&format!("i{i}"))).collect();
    for &(kind, a, b, c) in recipes {
        let pick = |sel: u8, nets: &[NetId]| nets[sel as usize % nets.len()];
        let x = pick(a, &nets);
        let y = pick(b, &nets);
        let z = pick(c, &nets);
        let out = match kind % 8 {
            0 => nl.not(x),
            1 => nl.and(x, y),
            2 => nl.or(x, y),
            3 => nl.xor(x, y),
            4 => nl.nand(x, y),
            5 => nl.nor(x, y),
            6 => nl.xnor(x, y),
            _ => nl.mux(x, y, z),
        };
        nets.push(out);
    }
    let out_slice: Vec<NetId> = nets.iter().rev().take(4).copied().collect();
    nl.set_output("z", out_slice);
    nl
}

fn recipes() -> impl Strategy<Value = Vec<GateRecipe>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()), 4..40)
}

/// Ground truth: enumerate all `2^n` vectors and compare every output
/// bus bit by bit.
fn brute_force_equal(a: &Netlist, b: &Netlist) -> bool {
    let n = a.inputs().len();
    assert!(n <= 12, "brute force is exponential");
    for pat in 0u32..1 << n {
        let ins: Vec<bool> = (0..n).map(|i| pat >> i & 1 == 1).collect();
        let va = a.eval(&ins);
        let vb = b.eval(&ins);
        for (bus, nets) in a.outputs() {
            let other = b.output(bus);
            for (na, nb) in nets.iter().zip(other) {
                if va[na.index()] != vb[nb.index()] {
                    return false;
                }
            }
        }
    }
    true
}

/// Replays a counterexample exactly as its docs promise: evaluate both
/// sides on `inputs` and compare bit `bit` of bus `bus`.
fn assert_replays(cx: &Counterexample, a: &Netlist, b: &Netlist) {
    assert_ne!(cx.left, cx.right, "a counterexample must distinguish");
    let va = a.eval(&cx.inputs);
    let vb = b.eval(&cx.inputs);
    let la = a.output(&cx.bus)[cx.bit];
    let rb = b.output(&cx.bus)[cx.bit];
    assert_eq!(va[la.index()], cx.left, "left side replay");
    assert_eq!(vb[rb.index()], cx.right, "right side replay");
}

/// Option sets that force each fallback stage to decide alone:
/// structural hashing always runs first, then (BDD, exhaustive,
/// random-batch) as configured.
fn forced_stages() -> [EquivOptions; 3] {
    let base = EquivOptions::default();
    [
        base, // full pipeline: BDD gets first shot after structural
        EquivOptions { bdd_node_budget: 0, ..base }, // straight to exhaustive
        EquivOptions { bdd_node_budget: 0, exhaustive_input_limit: 0, ..base }, // random only
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two independently random netlists over the same interface:
    /// whenever the checker returns a *proof* it must agree with brute
    /// force, and a `Mismatch` from any stage must replay. (Random pairs
    /// exercise both verdicts: they almost always differ, while the
    /// occasional coincidence lands on the equivalent side.)
    #[test]
    fn verdicts_agree_with_brute_force(
        ra in recipes(),
        rb in recipes(),
        inputs in 2usize..13,
    ) {
        let a = build_random_netlist(inputs, &ra);
        let b = build_random_netlist(inputs, &rb);
        let truth = brute_force_equal(&a, &b);
        for opts in forced_stages() {
            let verdict = check_equiv_with(&a, &b, &opts).unwrap();
            match &verdict {
                EquivVerdict::Mismatch { counterexample, .. } => {
                    prop_assert!(!truth, "checker found a counterexample on equal functions");
                    assert_replays(counterexample, &a, &b);
                }
                EquivVerdict::Equivalent { .. } => {
                    prop_assert!(truth, "checker proved different functions equal");
                }
                // Sampling can miss a difference; it must only ever
                // hedge, never assert a proof.
                EquivVerdict::ProbablyEquivalent { .. } => {
                    prop_assert!(!verdict.is_proof());
                }
            }
        }
    }

    /// Semantics-preserving transforms are always proven equivalent:
    /// `prune_dead` (structural twin) and a double-negated output cone
    /// (structurally different, so the proof has to come from BDD or
    /// exhaustive evaluation).
    #[test]
    fn equivalent_transforms_always_prove(rs in recipes(), inputs in 2usize..7) {
        let a = build_random_netlist(inputs, &rs);
        let pruned = prune_dead(&a).unwrap();
        let v = check_equiv(&a, &pruned).unwrap();
        prop_assert!(v.is_equivalent() && v.is_proof(), "prune: {v:?}");

        let mut doubled = a.clone();
        let z: Vec<NetId> = doubled.output("z").to_vec();
        let negated: Vec<NetId> = z
            .iter()
            .map(|&bit| {
                let n1 = doubled.not(bit);
                doubled.not(n1)
            })
            .collect();
        doubled.set_output("z", negated);
        let v = check_equiv(&a, &doubled).unwrap();
        prop_assert!(v.is_equivalent() && v.is_proof(), "double negation: {v:?}");
        prop_assert!(brute_force_equal(&a, &doubled));
    }

    /// An inverted output bit is inequivalent on *every* vector, so all
    /// stages — including the probabilistic random batch — must return
    /// `Mismatch` with a replayable counterexample.
    #[test]
    fn inverted_bit_mismatches_under_every_stage(rs in recipes(), inputs in 2usize..7) {
        let a = build_random_netlist(inputs, &rs);
        let mut broken = a.clone();
        let mut z: Vec<NetId> = broken.output("z").to_vec();
        z[0] = broken.not(z[0]);
        broken.set_output("z", z);
        prop_assert!(!brute_force_equal(&a, &broken));
        for opts in forced_stages() {
            let verdict = check_equiv_with(&a, &broken, &opts).unwrap();
            match &verdict {
                EquivVerdict::Mismatch { counterexample, .. } => {
                    assert_replays(counterexample, &a, &broken);
                }
                other => prop_assert!(false, "stage missed an always-on defect: {other:?}"),
            }
        }
    }
}
