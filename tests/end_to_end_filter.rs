//! End-to-end case study smoke test: both filter datapaths, built from
//! netlists up, produce correct settled images and the expected asymmetric
//! degradation when overclocked.

use ola::core::metrics;
use ola::imaging::filter::{
    filter_exact, FilterConfig, OnlineFilter, OverclockedFilter, TraditionalFilter,
};
use ola::imaging::synthetic::Benchmark;
use ola::imaging::Kernel;
use ola::netlist::area;
use std::sync::OnceLock;

fn small_cfg() -> FilterConfig {
    FilterConfig {
        digits: 8,
        kernel: Kernel::gaussian(3, 1.0, 8),
        jitter_amplitude: 12,
        jitter_seed: 77,
    }
}

/// Warm filters are expensive (multiplier waveform memo under jittered
/// delays), so the whole suite shares one instance per design.
fn online() -> &'static OnlineFilter {
    static S: OnceLock<OnlineFilter> = OnceLock::new();
    S.get_or_init(|| OnlineFilter::new(small_cfg()))
}

fn traditional() -> &'static TraditionalFilter {
    static S: OnceLock<TraditionalFilter> = OnceLock::new();
    S.get_or_init(|| TraditionalFilter::new(small_cfg()))
}

#[test]
fn settled_designs_agree_with_each_other_and_the_ideal() {
    let img = Benchmark::SailboatLike.generate(8, 8, 5);
    let cfg = small_cfg();
    let ideal = filter_exact(&img, &cfg.kernel);
    let online = online();
    let trad = traditional();
    let o = online.apply_sweep(&img, &[online.rated_period()]);
    let t = trad.apply_sweep(&img, &[trad.rated_period()]);
    for (name, settled) in [("online", &o.settled_image), ("traditional", &t.settled_image)] {
        for (a, b) in settled.pixels().iter().zip(ideal.pixels()) {
            assert!((i16::from(*a) - i16::from(*b)).abs() <= 8, "{name}: settled {a} vs ideal {b}");
        }
    }
    // The two designs' settled outputs agree up to their quantization.
    let snr = metrics::snr_db(&o.settled, &t.settled).expect("equal-length settled buffers");
    assert!(snr > 35.0, "designs should match closely, SNR {snr}");
}

#[test]
fn overclocked_online_filter_beats_traditional_at_every_depth() {
    let img = Benchmark::LenaLike.generate(8, 8, 6);
    let online = online();
    let trad = traditional();
    let depths = [0.75f64, 0.6];
    let mk = |rated: u64| -> Vec<u64> {
        depths.iter().map(|d| ((rated as f64 * d).round() as u64).max(1)).collect()
    };
    let o = online.apply_sweep(&img, &mk(online.rated_period()));
    let t = trad.apply_sweep(&img, &mk(trad.rated_period()));
    for (i, d) in depths.iter().enumerate() {
        let (om, tm) = (o.runs[i].mre_percent, t.runs[i].mre_percent);
        assert!(om <= tm, "depth {d}: online MRE {om}% must not exceed traditional {tm}%");
    }
    // At the deepest point the traditional design must be visibly broken
    // while online stays usable (tens-of-dB SNR gap, Table-2 shape).
    let gap = o.runs[1].snr_db.min(200.0) - t.runs[1].snr_db;
    assert!(gap > 10.0, "SNR gap {gap} dB too small");
}

#[test]
fn area_overhead_is_in_the_paper_ballpark() {
    // Table 4: online costs about 2× the LUTs of the traditional design.
    // Compare whole datapaths (multiplier + adder tree), as the paper does;
    // the multiplier alone is pricier because our generated selection logic
    // has no hand-mapped equivalent on the traditional side.
    let online = online();
    let trad = traditional();
    let o = area::estimate(&online.multiplier().netlist, 4).luts
        + area::estimate(online.tree_netlist(), 4).luts;
    let t = area::estimate(&trad.multiplier().netlist, 4).luts
        + area::estimate(trad.tree_netlist(), 4).luts;
    let overhead = o as f64 / t as f64;
    assert!(
        overhead > 1.2 && overhead < 4.0,
        "online/traditional LUT ratio {overhead} outside plausible range"
    );
}

#[test]
fn real_like_images_tolerate_more_overclocking_than_noise() {
    // The paper's "real inputs" observation: correlated images produce
    // fewer long chains, so at the same overclock the MRE is smaller.
    let online = online();
    let rated = online.rated_period();
    let ts = [(rated as f64 * 0.7).round() as u64];
    let natural = Benchmark::LenaLike.generate(8, 8, 7);
    let noise = Benchmark::Uniform.generate(8, 8, 7);
    let mre_nat = online.apply_sweep(&natural, &ts).runs[0].mre_percent;
    let mre_noise = online.apply_sweep(&noise, &ts).runs[0].mre_percent;
    assert!(mre_nat <= mre_noise * 1.5 + 1e-9, "natural {mre_nat}% vs noise {mre_noise}%");
}
