//! The Figure-4 verification as an integration test: the analytic model of
//! overclocking error must track the stage-wave Monte-Carlo in *shape* —
//! monotone decay, the same error-free threshold, and high rank agreement.

use ola::arith::online::{Selection, DELTA};
use ola::core::{model, montecarlo, timing, InputModel};

#[test]
fn model_and_simulation_share_the_error_free_threshold() {
    for n in [8usize, 12] {
        let mc = montecarlo::om_monte_carlo(
            n,
            Selection::default(),
            InputModel::UniformDigits,
            2000,
            42,
        );
        // First budget with zero MC error.
        let mc_free =
            mc.curve.mean_abs_error.iter().position(|&e| e == 0.0).expect("settles eventually");
        // First budget with zero model expectation (the simulator spends one
        // extra wave on selection latency, hence the +1 alignment slack).
        let model_free = (0..=n + DELTA)
            .find(|&b| model::expected_error(n, b, 1.0) == 0.0)
            .expect("model must clear");
        let diff = mc_free.abs_diff(model_free);
        assert!(
            diff <= 2,
            "n={n}: error-free budgets disagree: MC {mc_free} vs model {model_free}"
        );
    }
}

#[test]
fn model_tracks_monte_carlo_shape() {
    let n = 8;
    let mc =
        montecarlo::om_monte_carlo(n, Selection::default(), InputModel::UniformDigits, 3000, 7);
    // Compare log-errors over budgets where both are nonzero.
    let mut pairs = Vec::new();
    for b in 1..=(n + DELTA) {
        let sim = mc.curve.mean_abs_error[b];
        let mdl = model::expected_error(n, b, 1.0);
        if sim > 0.0 && mdl > 0.0 {
            pairs.push((mdl.ln(), sim.ln()));
        }
    }
    assert!(pairs.len() >= 4, "need overlapping support");
    // Both decay: Spearman-style check via strict co-monotonicity of ranks.
    let concordant =
        pairs.windows(2).filter(|w| (w[1].0 - w[0].0) * (w[1].1 - w[0].1) > 0.0).count();
    assert!(
        concordant as f64 >= 0.7 * (pairs.len() - 1) as f64,
        "model and MC must co-decay: {pairs:?}"
    );
    // Magnitudes agree within an order-of-magnitude envelope after a single
    // global calibration (the paper, likewise, matches shape not absolutes).
    let offset: f64 = pairs.iter().map(|(m, s)| s - m).sum::<f64>() / pairs.len() as f64;
    for (m, s) in &pairs {
        assert!(
            (s - m - offset).abs() < std::f64::consts::LN_10 * 1.5,
            "point deviates >1.5 decades after calibration: {pairs:?}"
        );
    }
}

#[test]
fn violation_probability_tracks_simulation() {
    let n = 8;
    let mc =
        montecarlo::om_monte_carlo(n, Selection::default(), InputModel::UniformDigits, 3000, 11);
    // The stage-wave simulator spends one extra wave on selection latency
    // (z_j settles one tick after P[j]); compare the model's chain budget
    // b−1 against the simulator's wave budget b.
    for b in 4..=(n + DELTA) {
        let sim = mc.curve.violation_rate[b];
        let independent = model::violation_probability_independent(n, b - 1);
        let union = model::violation_probability_union(n, b - 1);
        // The model brackets reality loosely; insist on agreement of the
        // "is overclocking basically safe here" verdict.
        if independent < 0.01 {
            assert!(sim < 0.1, "b={b}: model says safe, sim {sim}");
        }
        if sim > 0.5 {
            assert!(union > 0.2, "b={b}: sim says dangerous, model {union}");
        }
    }
}

#[test]
fn observed_worst_case_matches_chain_analysis() {
    // The commented-out analysis in the paper: actual worst-case delay is
    // ⌊(N−1)/2⌋+4 stage delays, far below the structural N+δ.
    for n in [8usize, 16] {
        let observed = montecarlo::max_observed_settling(
            n,
            Selection::default(),
            InputModel::UniformDigits,
            3000,
            13,
        );
        let chain_bound = timing::chain_worst_case_delay(n, 1) as usize;
        let structural = timing::structural_delay(n, 1) as usize;
        assert!(observed <= chain_bound + 1, "n={n}: {observed} > {chain_bound}+1");
        assert!(
            chain_bound < structural,
            "the paper's headroom must exist: {chain_bound} vs {structural}"
        );
    }
}
