//! Cross-crate equivalence: the four models of the online multiplier —
//! golden recurrence, bit-true datapath, stage-wave timing model, and the
//! synthesized gate-level netlist — must agree on settled results.

use ola::arith::online::{
    bittrue_mult, online_mult, Selection, SerialMultiplier, StagedMultiplier,
};
use ola::arith::synth::online_multiplier;
use ola::netlist::{simulate_from_zero, JitteredDelay, UnitDelay};
use ola::redundant::{random, Digit, SdNumber, Q};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn operands(n: usize, count: usize, seed: u64) -> Vec<(SdNumber, SdNumber)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (random::uniform_digits(&mut rng, n), random::uniform_digits(&mut rng, n)))
        .collect()
}

#[test]
fn all_models_accurate_to_residual_bound() {
    for n in [4usize, 8, 12] {
        for (x, y) in operands(n, 30, 100 + n as u64) {
            let exact = x.value() * y.value();
            let bound = Q::new(3, 1) >> (n as u32 + 1);
            let golden = online_mult(&x, &y, Selection::default());
            let bt = bittrue_mult(&x, &y, Selection::default());
            let staged =
                StagedMultiplier::new(x.clone(), y.clone(), Selection::default()).settled();
            for (name, v) in
                [("golden", golden.value()), ("bittrue", bt.value()), ("staged", staged.value())]
            {
                assert!((exact - v).abs() <= bound, "{name} n={n}: {} vs {}", v, exact);
            }
            // The staged fixpoint equals the straight-line bit-true run.
            assert_eq!(staged.digits(), &bt.digits[..]);
        }
    }
}

#[test]
fn netlist_settles_to_bittrue_digits_under_any_delay_model() {
    let n = 6;
    let circuit = online_multiplier(n, 3);
    let jitter = JitteredDelay::new(UnitDelay, 35, 17);
    for (x, y) in operands(n, 8, 55) {
        let want = bittrue_mult(&x, &y, Selection::default()).digits;
        let inputs = circuit.encode_inputs(&x, &y);
        for res in [
            simulate_from_zero(&circuit.netlist, &UnitDelay, &inputs),
            simulate_from_zero(&circuit.netlist, &jitter, &inputs),
        ] {
            let zp = res.final_bus(circuit.netlist.output("zp"));
            let zn = res.final_bus(circuit.netlist.output("zn"));
            let got: Vec<Digit> =
                zp.iter().zip(&zn).map(|(&p, &nn)| Digit::from_bits(p, nn)).collect();
            assert_eq!(got, want, "x={x:?} y={y:?}");
        }
    }
}

#[test]
fn serial_and_parallel_agree_across_widths() {
    for n in [1usize, 3, 7, 16] {
        for (x, y) in operands(n, 10, 200 + n as u64) {
            let parallel = online_mult(&x, &y, Selection::Exact);
            let mut serial = SerialMultiplier::new(n, Selection::Exact);
            for i in 1..=n {
                serial.push(x.digit(i), y.digit(i));
            }
            assert_eq!(serial.finish(), parallel);
        }
    }
}

#[test]
fn value_uniform_inputs_settle_faster_than_digit_uniform() {
    // "Real" (canonically encoded) operands generate fewer long chains —
    // the mechanism behind the paper's real-image results.
    let n = 12;
    let mut digit_settle = 0usize;
    let mut value_settle = 0usize;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for _ in 0..150 {
        let xd = random::uniform_digits(&mut rng, n);
        let yd = random::uniform_digits(&mut rng, n);
        digit_settle += StagedMultiplier::new(xd, yd, Selection::default()).settling_ticks();
        let xv = random::uniform_value(&mut rng, n);
        let yv = random::uniform_value(&mut rng, n);
        value_settle += StagedMultiplier::new(xv, yv, Selection::default()).settling_ticks();
    }
    assert!(
        value_settle <= digit_settle,
        "canonical-encoding inputs should not settle slower: {value_settle} vs {digit_settle}"
    );
}
